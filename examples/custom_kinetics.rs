//! Arbitrary rate laws: define a model with free-form flux expressions
//! (the "general-purpose kinetics" extension), get exact symbolic
//! Jacobians, and integrate it with the stiff solver.
//!
//! ```bash
//! cargo run --release --example custom_kinetics
//! ```

use paraspace_core::CustomOdeSystem;
use paraspace_rbm::custom::CustomModel;
use paraspace_rbm::expr::RateExpr;
use paraspace_solvers::{OdeSolver, Radau5, SolverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A substrate-inhibited enzyme (Haldane kinetics) feeding a product
    // that decays — a rate law no mass-action stoichiometry can express:
    //     v(S) = vmax·S / (km + S + S²/ki)
    let mut model = CustomModel::new(&["vmax", "km", "ki", "kdeg"], &[5.0, 0.4, 1.5, 0.3]);
    let s = model.add_species("S", 4.0);
    let p = model.add_species("P", 0.0);
    model.add_reaction("vmax * X0 / (km + X0 + X0^2 / ki)", &[(s, -1.0), (p, 1.0)])?;
    model.add_reaction("kdeg * X1", &[(p, -1.0)])?;

    // Show the machinery: the parsed flux and its exact derivative.
    let flux = RateExpr::parse("vmax * X0 / (km + X0 + X0^2 / ki)", &["vmax", "km", "ki", "kdeg"])?;
    println!("flux:        {flux}");
    println!("d(flux)/dS:  {}", flux.derivative(0));

    let odes = model.compile()?;
    let sys = CustomOdeSystem::new(&odes);
    let times: Vec<f64> = (1..=16).map(|i| i as f64 * 0.75).collect();
    let sol = Radau5::new().solve(
        &sys,
        0.0,
        &model.initial_state(),
        &times,
        &SolverOptions::default(),
    )?;

    println!(
        "\n{:>6} {:>10} {:>10}  (substrate inhibition: v peaks at S = √(km·ki) ≈ 0.77)",
        "t", "S", "P"
    );
    for (t, state) in sol.times.iter().zip(&sol.states) {
        println!("{t:>6.2} {:>10.4} {:>10.4}", state[0], state[1]);
    }
    println!(
        "\nintegrated with {} steps, {} analytic Jacobians, {} LU factorizations",
        sol.stats.steps, sol.stats.jacobian_evals, sol.stats.lu_decompositions
    );
    Ok(())
}
