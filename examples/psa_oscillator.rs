//! Parameter sweep analysis of the autophagy/translation analogue: map
//! the (AMPK*₀, P9) plane to oscillation amplitude and compare with the
//! analytic Hopf boundary.
//!
//! ```bash
//! cargo run --release --example psa_oscillator
//! ```

use paraspace_analysis::oscillation;
use paraspace_analysis::psa::{Axis, Psa2d};
use paraspace_core::FineCoarseEngine;
use paraspace_models::autophagy;
use paraspace_rbm::Parameterization;
use paraspace_solvers::SolverOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced-scale network (same 2-parameter oscillator core).
    let scale = 0.05;
    let model = autophagy::scaled_model(1e3, 1e-7, scale);
    println!("model: {} species, {} reactions", model.n_species(), model.n_reactions());

    let sweep =
        Psa2d::new(Axis::linear("AMPK*0", 0.0, 1e4, 6), Axis::logarithmic("P9", 1e-9, 1e-6, 6))
            .options(SolverOptions { max_steps: 100_000, ..SolverOptions::default() });

    let times: Vec<f64> = (1..=120).map(|i| 20.0 + i as f64 * 0.5).collect();
    let engine = FineCoarseEngine::new();
    let readout = model.species_by_name(autophagy::AMBRA_SPECIES)?.index();

    let result = sweep.run(
        &model,
        |ampk0, p9| {
            let m = autophagy::scaled_model(ampk0, p9, scale);
            Parameterization::new()
                .with_initial_state(m.initial_state())
                .with_rate_constants(m.rate_constants())
        },
        times,
        &engine,
        |sol| oscillation::amplitude(&sol.component(readout)),
    )?;

    println!("\noscillation amplitude over the sweep plane ('.' = quiescent):");
    for (i, row) in result.values.iter().enumerate() {
        let ampk0 = result.axis1.values()[i];
        let cells: String = row
            .iter()
            .zip(result.axis2.values())
            .map(|(&amp, &p9)| {
                let mark = if amp > 1e-2 { 'O' } else { '.' };
                let predicted = autophagy::oscillates(ampk0, p9);
                // Uppercase where the analytic Hopf criterion agrees.
                if predicted == (amp > 1e-2) {
                    mark
                } else {
                    '?'
                }
            })
            .collect();
        println!("  AMPK*0 = {ampk0:8.0}  {cells}");
    }
    println!("\n('O' oscillating, '.' quiescent, '?' disagrees with the analytic boundary)");
    println!(
        "{} simulations, {:.1} ms simulated engine time",
        result.simulations,
        result.simulated_ns / 1e6
    );
    Ok(())
}
