//! Quickstart: build a reaction-based model, run a batch of simulations on
//! the fine+coarse engine, and inspect trajectories and timing.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use paraspace_core::{CpuEngine, CpuSolverKind, FineCoarseEngine, SimulationJob, Simulator};
use paraspace_rbm::{perturbed_batch, Reaction, ReactionBasedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model: an enzyme mechanism E + S ⇌ ES → E + P.
    let mut model = ReactionBasedModel::new();
    let e = model.add_species("E", 0.1);
    let s = model.add_species("S", 1.0);
    let es = model.add_species("ES", 0.0);
    let p = model.add_species("P", 0.0);
    model.add_reaction(Reaction::mass_action(&[(e, 1), (s, 1)], &[(es, 1)], 20.0))?;
    model.add_reaction(Reaction::mass_action(&[(es, 1)], &[(e, 1), (s, 1)], 1.0))?;
    model.add_reaction(Reaction::mass_action(&[(es, 1)], &[(e, 1), (p, 1)], 4.0))?;

    // 2. A batch of 64 perturbed parameterizations (±25% in log space).
    let mut rng = StdRng::seed_from_u64(1);
    let batch = perturbed_batch(&model, 64, &mut rng);

    // 3. A job: sampling times + tolerances (published defaults).
    let time_points: Vec<f64> = (1..=10).map(|i| i as f64 * 0.5).collect();
    let job =
        SimulationJob::builder(&model).time_points(time_points).parameterizations(batch).build()?;

    // 4. Run on the fine+coarse engine and the CPU baseline.
    let gpu = FineCoarseEngine::new().run(&job)?;
    let cpu = CpuEngine::new(CpuSolverKind::Lsoda).run(&job)?;

    println!("batch of {} simulations:", job.batch_size());
    println!("  fine-coarse: {:>12.3} ms simulated", gpu.timing.simulated_total_ns / 1e6);
    println!("  lsoda-cpu:   {:>12.3} ms simulated", cpu.timing.simulated_total_ns / 1e6);
    println!(
        "  batch speedup: {:.1}x",
        cpu.timing.simulated_total_ns / gpu.timing.simulated_total_ns
    );

    // 5. Inspect one trajectory: product accumulates, enzyme is conserved.
    let sol = gpu.outcomes[0].solution.as_ref().map_err(|e| e.to_string())?;
    println!("\nfirst member, P(t):");
    for (t, state) in sol.times.iter().zip(&sol.states) {
        println!("  t = {t:4.1}  P = {:.4}  (E + ES = {:.4})", state[3], state[0] + state[2]);
    }
    Ok(())
}
