//! Sensitivity analysis of the metabolic HK-isoform model: which of the
//! 11 hexokinase species' initial concentrations drive the R5P output?
//! (A reduced-N version of the Table-1 experiment.)
//!
//! ```bash
//! cargo run --release --example sensitivity_hk
//! ```

use paraspace_analysis::sobol::SaltelliPlan;
use paraspace_core::{FineCoarseEngine, SimulationJob, Simulator};
use paraspace_models::metabolic;
use paraspace_rbm::Parameterization;
use paraspace_solvers::SolverOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = metabolic::model();
    let plan = SaltelliPlan::new(metabolic::HK_SPECIES.len(), 32);
    println!(
        "metabolic model: {} species, {} reactions; {} evaluations",
        model.n_species(),
        model.n_reactions(),
        plan.len()
    );

    let bounds = vec![metabolic::HK_SAMPLING_RANGE; 11];
    let points = plan.scaled(&bounds);
    let r5p = model.species_by_name(metabolic::OUTPUT_SPECIES)?.index();
    let opts = SolverOptions { max_steps: 200_000, ..SolverOptions::default() };
    let engine = FineCoarseEngine::new();

    let mut outputs = Vec::with_capacity(points.len());
    for chunk in points.chunks(256) {
        let batch: Vec<Parameterization> = chunk
            .iter()
            .map(|hk| {
                Parameterization::new()
                    .with_initial_state(metabolic::initial_state_with_hk(&model, hk))
            })
            .collect();
        let job = SimulationJob::builder(&model)
            .time_points(vec![metabolic::TIME_WINDOW_HOURS])
            .parameterizations(batch)
            .options(opts.clone())
            .build()?;
        for o in engine.run(&job)?.outcomes {
            outputs.push(match o.solution {
                Ok(sol) => sol.state_at(0)[r5p],
                Err(_) => f64::NAN,
            });
        }
    }
    let mean = {
        let fin: Vec<f64> = outputs.iter().cloned().filter(|v| v.is_finite()).collect();
        fin.iter().sum::<f64>() / fin.len().max(1) as f64
    };
    for v in &mut outputs {
        if !v.is_finite() {
            *v = mean;
        }
    }

    let mut rng = StdRng::seed_from_u64(11);
    let indices = plan.analyze(&outputs, 100, 0.95, &mut rng);
    println!("\n{:16} {:>8} {:>8}", "species", "S1", "ST");
    let mut ranked: Vec<_> = metabolic::HK_SPECIES.iter().zip(&indices).collect();
    ranked.sort_by(|a, b| b.1.st.partial_cmp(&a.1.st).expect("finite"));
    for (name, idx) in ranked {
        println!("{:16} {:>8.3} {:>8.3}", name, idx.s1, idx.st);
    }
    println!("\n(the dead-end complexes hkEGLC*2/hkEPhosi2 should rank on top)");
    Ok(())
}
