//! Model interchange: write a model in the BioSimWare directory layout,
//! read it back, export it as SBML, and re-import the SBML — the
//! conversion-tool workflow shipped with the original simulator.
//!
//! ```bash
//! cargo run --release --example model_io
//! ```

use paraspace_rbm::{biosimware, sbgen::SbGen, sbml};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let model = SbGen::new(10, 14).generate(&mut rng);
    println!("generated a {}x{} synthetic model", model.n_species(), model.n_reactions());

    // BioSimWare round trip.
    let dir = std::env::temp_dir().join("paraspace_example_model");
    biosimware::write_dir(&model, &dir)?;
    biosimware::write_time_points(&[0.5, 1.0, 2.0], &dir)?;
    println!("wrote BioSimWare directory: {}", dir.display());
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!("  {} ({} bytes)", entry.file_name().to_string_lossy(), entry.metadata()?.len());
    }
    let restored = biosimware::read_dir(&dir)?;
    assert_eq!(restored.n_reactions(), model.n_reactions());
    println!("read back: {} species, {} reactions ✓", restored.n_species(), restored.n_reactions());

    // SBML round trip.
    let doc = sbml::to_string(&model);
    println!("\nSBML export: {} bytes; first lines:", doc.len());
    for line in doc.lines().take(6) {
        println!("  {line}");
    }
    let reimported = sbml::from_str(&doc)?;
    assert_eq!(reimported.n_species(), model.n_species());
    println!("SBML re-import: {} species ✓", reimported.n_species());

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
