//! Stochastic ensembles vs the deterministic engine: run an SSA and a
//! tau-leaping ensemble of a gene-expression burst model and compare the
//! ensemble mean with the ODE trajectory.
//!
//! ```bash
//! cargo run --release --example stochastic_ensemble
//! ```

use paraspace_core::{CpuEngine, CpuSolverKind, SimulationJob, Simulator};
use paraspace_rbm::{Reaction, ReactionBasedModel};
use paraspace_stochastic::{DirectMethod, StochasticBatch, TauLeaping};

fn gene_expression() -> Result<ReactionBasedModel, Box<dyn std::error::Error>> {
    // ∅ →(k_tx) mRNA →(k_tl, catalytic) protein; both degrade.
    let mut m = ReactionBasedModel::new();
    let mrna = m.add_species("mRNA", 0.0);
    let prot = m.add_species("protein", 0.0);
    m.add_reaction(Reaction::mass_action(&[], &[(mrna, 1)], 40.0))?;
    m.add_reaction(Reaction::mass_action(&[(mrna, 1)], &[], 2.0))?;
    m.add_reaction(Reaction::mass_action(&[(mrna, 1)], &[(mrna, 1), (prot, 1)], 10.0))?;
    m.add_reaction(Reaction::mass_action(&[(prot, 1)], &[], 1.0))?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = gene_expression()?;
    let times: Vec<f64> = (1..=8).map(|i| i as f64 * 0.5).collect();

    // Deterministic reference.
    let job = SimulationJob::builder(&model).time_points(times.clone()).replicate(1).build()?;
    let ode = CpuEngine::new(CpuSolverKind::Lsoda).run(&job)?;
    let ode_sol = ode.outcomes[0].solution.as_ref().map_err(|e| e.to_string())?;

    // Stochastic ensembles.
    let replicates = 256;
    let ssa =
        StochasticBatch::new(DirectMethod::new()).with_seed(42).run(&model, &times, replicates)?;
    let tau =
        StochasticBatch::new(TauLeaping::new()).with_seed(42).run(&model, &times, replicates)?;

    println!("gene-expression model, {replicates} replicates per ensemble\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>14}",
        "t", "ODE protein", "SSA mean", "tau mean", "SSA Fano(prot)"
    );
    for (i, &t) in times.iter().enumerate() {
        let fano = ssa.stats.variance[i][1] / ssa.stats.mean[i][1].max(1e-12);
        println!(
            "{t:>5.1} {:>12.1} {:>12.1} {:>12.1} {:>14.2}",
            ode_sol.state_at(i)[1],
            ssa.stats.mean[i][1],
            tau.stats.mean[i][1],
            fano
        );
    }
    println!(
        "\nsimulated device time: SSA ensemble {:.2} ms, tau-leaping ensemble {:.2} ms",
        ssa.simulated_ns / 1e6,
        tau.simulated_ns / 1e6
    );
    println!(
        "(the Fano factor > 1 shows translational noise amplification — invisible to the ODE)"
    );
    Ok(())
}
