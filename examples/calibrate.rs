//! Parameter estimation with FST-PSO: recover hidden kinetic constants of
//! a small signalling cascade from its dynamics, running every swarm
//! generation as one batch on the fine+coarse engine.
//!
//! ```bash
//! cargo run --release --example calibrate
//! ```

use paraspace_analysis::fitness::FailedMemberPolicy;
use paraspace_analysis::pe::{estimate, EstimationProblem};
use paraspace_analysis::pso::PsoConfig;
use paraspace_core::{FineCoarseEngine, SimulationJob, Simulator};
use paraspace_rbm::{Reaction, ReactionBasedModel};
use paraspace_solvers::SolverOptions;

fn cascade(k: &[f64; 3]) -> Result<ReactionBasedModel, Box<dyn std::error::Error>> {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.0);
    let c = m.add_species("C", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], k[0]))?;
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(c, 1)], k[1]))?;
    m.add_reaction(Reaction::mass_action(&[(c, 1)], &[(a, 1)], k[2]))?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = [1.2, 0.6, 0.25];
    let model = cascade(&truth)?;
    let times: Vec<f64> = (1..=12).map(|i| i as f64 * 0.5).collect();
    let engine = FineCoarseEngine::new();

    // Target dynamics from the true constants.
    let target_job =
        SimulationJob::builder(&model).time_points(times.clone()).replicate(1).build()?;
    let target = engine.run(&target_job)?.outcomes.remove(0).solution.map_err(|e| e.to_string())?;

    let problem = EstimationProblem {
        model: &model,
        unknown: vec![0, 1, 2],
        log_bounds: vec![(-2.0, 1.0); 3],
        observed: vec![0, 1, 2],
        target,
        time_points: times,
        options: SolverOptions::default(),
        failed_members: FailedMemberPolicy::default(),
    };
    let cfg = PsoConfig { iterations: 60, seed: 5, ..Default::default() };
    println!("calibrating 3 hidden constants with FST-PSO ({} generations)...", cfg.iterations);
    let result = estimate(&problem, &engine, &cfg);

    println!("\n{:>10} {:>10} {:>10}", "constant", "true", "estimated");
    for (i, &t) in truth.iter().enumerate() {
        println!("{:>10} {:>10.3} {:>10.3}", format!("k{}", i + 1), t, result.rate_constants[i]);
    }
    println!(
        "\nbest fitness {:.3e} after {} simulations ({:.1} ms simulated engine time)",
        result.optimization.best_fitness,
        result.simulations,
        result.simulated_ns / 1e6
    );
    Ok(())
}
