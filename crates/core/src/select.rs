//! Engine recommendation: the published comparison-map guidance as code.
//!
//! The evaluation's comparison maps answer "which simulator should I use
//! for an `N × M` model and `S` parallel simulations?". This module encodes
//! the published decision surface so downstream tools can pick an engine
//! without running all four; the map benches *measure* the surface instead
//! and check it has the same shape.

use std::fmt;

/// The four engines of the comparison study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Sequential CPU (LSODA/VODE-class).
    Cpu,
    /// Coarse-grained GPU (cupSODA-class).
    Coarse,
    /// Fine-grained GPU (LASSIE-class).
    Fine,
    /// Fine+coarse GPU (the contribution).
    FineCoarse,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Cpu => "cpu",
            EngineKind::Coarse => "coarse",
            EngineKind::Fine => "fine",
            EngineKind::FineCoarse => "fine-coarse",
        };
        write!(f, "{s}")
    }
}

/// Recommends an engine for an `n_species × n_reactions` model and a batch
/// of `n_simulations`, following the published guidance:
///
/// * single simulation, small model → CPU (break-even near 512 × 512 for
///   symmetric models);
/// * few simulations (< 256) of small models (< 128 species/reactions) →
///   coarse-only, which exploits constant/shared memory there;
/// * single simulation of a very large model → fine-grained;
/// * everything else → the fine+coarse engine.
///
/// # Example
///
/// ```
/// use paraspace_core::{recommend_engine, EngineKind};
///
/// assert_eq!(recommend_engine(16, 16, 1), EngineKind::Cpu);
/// assert_eq!(recommend_engine(64, 64, 128), EngineKind::Coarse);
/// assert_eq!(recommend_engine(256, 256, 1024), EngineKind::FineCoarse);
/// assert_eq!(recommend_engine(1024, 800, 1), EngineKind::Fine);
/// ```
pub fn recommend_engine(n_species: usize, n_reactions: usize, n_simulations: usize) -> EngineKind {
    let small_model = n_species < 128 && n_reactions < 128;
    if n_simulations <= 1 {
        // Single simulation: CPU until the model outgrows it.
        if n_species < 512 || n_reactions < 512 {
            if n_species >= 512 {
                return EngineKind::Fine;
            }
            return EngineKind::Cpu;
        }
        return EngineKind::Fine;
    }
    if small_model && n_simulations < 256 {
        return EngineKind::Coarse;
    }
    EngineKind::FineCoarse
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_simulation_regions() {
        assert_eq!(recommend_engine(8, 8, 1), EngineKind::Cpu);
        assert_eq!(recommend_engine(256, 256, 1), EngineKind::Cpu);
        assert_eq!(recommend_engine(512, 512, 1), EngineKind::Fine);
        assert_eq!(recommend_engine(1024, 1024, 1), EngineKind::Fine);
    }

    #[test]
    fn small_models_few_sims_go_coarse() {
        assert_eq!(recommend_engine(32, 64, 16), EngineKind::Coarse);
        assert_eq!(recommend_engine(64, 64, 255), EngineKind::Coarse);
    }

    #[test]
    fn batch_work_goes_fine_coarse() {
        assert_eq!(recommend_engine(64, 64, 256), EngineKind::FineCoarse);
        assert_eq!(recommend_engine(128, 128, 2), EngineKind::FineCoarse);
        assert_eq!(recommend_engine(800, 800, 2048), EngineKind::FineCoarse);
    }

    #[test]
    fn display_names_match_map_labels() {
        assert_eq!(EngineKind::FineCoarse.to_string(), "fine-coarse");
        assert_eq!(EngineKind::Cpu.to_string(), "cpu");
    }
}
