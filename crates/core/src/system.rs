//! Adapter presenting a compiled RBM (plus one parameterization's rate
//! constants) as an [`OdeSystem`], and its lane-batched counterpart
//! ([`RbmBatchSystem`]) feeding a whole member queue to the lockstep
//! solver.

use paraspace_linalg::{Matrix, SparsityPattern};
use paraspace_rbm::CompiledOdes;
use paraspace_solvers::{BatchOdeSystem, BatchState, OdeSystem, SensOdeSystem};
use std::cell::RefCell;

/// One simulation's ODE system: the shared compiled network plus this
/// member's kinetic constants.
///
/// The right-hand side is allocation-free after construction (an internal
/// flux buffer is reused across calls) and the Jacobian is analytic, both
/// of which the solvers exploit heavily.
///
/// # Example
///
/// ```
/// use paraspace_core::RbmOdeSystem;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_solvers::OdeSystem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let odes = m.compile()?;
/// let sys = RbmOdeSystem::new(&odes, vec![5.0]); // override k = 5
/// let mut d = [0.0];
/// sys.rhs(0.0, &[2.0], &mut d);
/// assert_eq!(d[0], -10.0);
/// # Ok(())
/// # }
/// ```
pub struct RbmOdeSystem<'a> {
    odes: &'a CompiledOdes,
    rate_constants: Vec<f64>,
    flux_buf: RefCell<Vec<f64>>,
}

impl<'a> RbmOdeSystem<'a> {
    /// Binds `odes` to one parameterization's rate constants.
    ///
    /// # Panics
    ///
    /// Panics if `rate_constants.len() != odes.n_reactions()`.
    pub fn new(odes: &'a CompiledOdes, rate_constants: Vec<f64>) -> Self {
        assert_eq!(
            rate_constants.len(),
            odes.n_reactions(),
            "one rate constant per reaction required"
        );
        let m = odes.n_reactions();
        RbmOdeSystem { odes, rate_constants, flux_buf: RefCell::new(vec![0.0; m]) }
    }

    /// The bound rate constants.
    pub fn rate_constants(&self) -> &[f64] {
        &self.rate_constants
    }

    /// The compiled network this system evaluates.
    pub fn odes(&self) -> &CompiledOdes {
        self.odes
    }
}

impl std::fmt::Debug for RbmOdeSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RbmOdeSystem")
            .field("n_species", &self.odes.n_species())
            .field("n_reactions", &self.odes.n_reactions())
            .finish()
    }
}

impl OdeSystem for RbmOdeSystem<'_> {
    fn dim(&self) -> usize {
        self.odes.n_species()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut flux = self.flux_buf.borrow_mut();
        self.odes.rhs_with_buffer(y, &self.rate_constants, &mut flux, dydt);
    }

    fn jacobian(&self, _t: f64, y: &[f64], jac: &mut Matrix) {
        self.odes.jacobian_with(y, &self.rate_constants, jac);
    }

    fn has_analytic_jacobian(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};
    use paraspace_solvers::{Dopri5, OdeSolver, SolverOptions};

    fn decay_dimer_model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 2)], &[(b, 1)], 0.3)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[], 0.1)).unwrap();
        m
    }

    #[test]
    fn rhs_uses_bound_constants() {
        let m = decay_dimer_model();
        let odes = m.compile().unwrap();
        let sys = RbmOdeSystem::new(&odes, vec![1.0, 0.0]);
        let mut d = [0.0, 0.0];
        sys.rhs(0.0, &[2.0, 3.0], &mut d);
        // flux = 1·[A]² = 4: dA = -8, dB = +4 (no B decay: k2 = 0).
        assert_eq!(d[0], -8.0);
        assert_eq!(d[1], 4.0);
    }

    #[test]
    fn analytic_jacobian_is_advertised_and_correct() {
        let m = decay_dimer_model();
        let odes = m.compile().unwrap();
        let sys = RbmOdeSystem::new(&odes, m.rate_constants());
        assert!(sys.has_analytic_jacobian());
        let mut jac = Matrix::zeros(2, 2);
        sys.jacobian(0.0, &[1.5, 0.5], &mut jac);
        // dA/dt = -2·0.3·[A]² → ∂/∂A = -4·0.3·[A] = -1.8.
        assert!((jac[(0, 0)] + 1.8).abs() < 1e-12);
        assert!((jac[(1, 1)] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn integrates_with_solvers() {
        let m = decay_dimer_model();
        let odes = m.compile().unwrap();
        let sys = RbmOdeSystem::new(&odes, m.rate_constants());
        let sol = Dopri5::new()
            .solve(&sys, 0.0, &m.initial_state(), &[5.0], &SolverOptions::default())
            .unwrap();
        // Mass: 2·B-formation consumes 2 A; A + ... monotone decay of A.
        assert!(sol.state_at(0)[0] < 1.0);
        assert!(sol.state_at(0)[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "one rate constant per reaction")]
    fn wrong_constant_count_panics() {
        let m = decay_dimer_model();
        let odes = m.compile().unwrap();
        let _ = RbmOdeSystem::new(&odes, vec![1.0]);
    }
}

/// A member queue of same-network parameterizations presented as a
/// [`BatchOdeSystem`] for the lockstep lane solver.
///
/// The adapter owns the lane-resident rate-constant block (`M × L`,
/// species-major/lane-minor like every SoA buffer) and the shared flux
/// workspace; [`bind_lane`](BatchOdeSystem::bind_lane) scatters one
/// member's constants into a lane column, and the batched right-hand side
/// delegates to [`CompiledOdes::rhs_batch`], which runs the CSR flux +
/// accumulation passes across all lanes per decoded segment.
///
/// Only mass-action networks are supported (the engine checks
/// [`CompiledOdes::supports_lane_batch`] and falls back to the scalar path
/// otherwise).
pub struct RbmBatchSystem<'a> {
    odes: &'a CompiledOdes,
    members: Vec<(&'a [f64], &'a [f64])>, // (x0, k) per queued member
    lanes: usize,
    k_lanes: Vec<f64>, // M × L lane-bound rate constants
    flux: Vec<f64>,    // M × L flux workspace
}

impl<'a> RbmBatchSystem<'a> {
    /// An empty queue integrating `lanes` members at a time.
    ///
    /// # Panics
    ///
    /// Panics if the network mixes kinetics the batched flux pass does not
    /// cover, or if `lanes` is zero.
    pub fn new(odes: &'a CompiledOdes, lanes: usize) -> Self {
        assert!(odes.supports_lane_batch(), "lane batching requires mass-action kinetics");
        assert!(lanes > 0, "lane width must be positive");
        let m = odes.n_reactions();
        RbmBatchSystem {
            odes,
            members: Vec::new(),
            lanes,
            k_lanes: vec![0.0; m * lanes],
            flux: vec![0.0; m * lanes],
        }
    }

    /// Appends one member's `(x0, k)` to the queue.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch with the compiled network.
    pub fn push_member(&mut self, x0: &'a [f64], k: &'a [f64]) {
        assert_eq!(x0.len(), self.odes.n_species(), "initial-state length");
        assert_eq!(k.len(), self.odes.n_reactions(), "rate-constant length");
        self.members.push((x0, k));
    }
}

impl std::fmt::Debug for RbmBatchSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RbmBatchSystem")
            .field("members", &self.members.len())
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl BatchOdeSystem for RbmBatchSystem<'_> {
    fn dim(&self) -> usize {
        self.odes.n_species()
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn members(&self) -> usize {
        self.members.len()
    }

    fn initial_state(&self, member: usize, y0: &mut [f64]) {
        y0.copy_from_slice(self.members[member].0);
    }

    fn bind_lane(&mut self, lane: usize, member: usize) {
        let k = self.members[member].1;
        for (r, &kr) in k.iter().enumerate() {
            self.k_lanes[r * self.lanes + lane] = kr;
        }
    }

    fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
        self.odes.rhs_batch(
            self.lanes,
            y.as_slice(),
            &self.k_lanes,
            &mut self.flux,
            dydt.as_mut_slice(),
        );
    }

    fn supports_jacobian_batch(&self) -> bool {
        // Mass-action networks (the only ones this adapter accepts) have the
        // batched analytic Jacobian; it is exact, so the scalar path's
        // `has_analytic_jacobian` contract carries over lane by lane.
        true
    }

    fn jacobian_batch(&mut self, _t: &[f64], y: &BatchState, jac: &mut [f64]) {
        self.odes.jacobian_batch(self.lanes, y.as_slice(), &self.k_lanes, jac);
    }

    fn jacobian_sparsity(&self) -> Option<paraspace_linalg::SparsityPattern> {
        // Stoichiometry fixes the pattern for every member in the queue
        // (members share the network; only constants differ), and
        // `CompiledOdes::jacobian_batch` zero-fills before accumulating, so
        // the off-pattern-entries-are-exact-zeros contract holds.
        Some(self.odes.jacobian_sparsity())
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};
    use paraspace_solvers::{Dopri5, Dopri5Batch, OdeSolver, SolverOptions, SolverScratch};

    #[test]
    fn lane_group_matches_scalar_dopri5_bitwise() {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        let odes = m.compile().unwrap();

        // Five members with distinct rate constants, three lanes: the
        // lockstep trajectories must be bitwise identical to one-at-a-time
        // scalar DOPRI5 on the equivalent RbmOdeSystem.
        let ks: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0 + 0.25 * i as f64, 0.4]).collect();
        let x0 = [1.0, 0.0];
        let times = [0.5, 1.0, 2.0];
        let opts = SolverOptions::default();

        let mut sys = RbmBatchSystem::new(&odes, 3);
        for k in &ks {
            sys.push_member(&x0, k);
        }
        let mut scratch = SolverScratch::new();
        let (results, report) =
            Dopri5Batch::new().solve_group(&mut sys, 0.0, &times, &opts, &mut scratch);

        assert_eq!(results.len(), 5);
        assert!(report.lockstep_iters > 0);
        for (i, res) in results.iter().enumerate() {
            let batch_sol = res.as_ref().expect("member must integrate");
            let scalar_sys = RbmOdeSystem::new(&odes, ks[i].clone());
            let scalar_sol = Dopri5::new().solve(&scalar_sys, 0.0, &x0, &times, &opts).unwrap();
            assert_eq!(batch_sol.states, scalar_sol.states, "member {i}");
            assert_eq!(batch_sol.stats, scalar_sol.stats, "member {i}");
        }
    }

    #[test]
    fn sens_lane_group_matches_scalar_augmented_dopri5_bitwise() {
        use paraspace_solvers::AugmentedSensSystem;
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        let odes = m.compile().unwrap();
        let which = vec![0usize, 1];
        let n = odes.n_species();
        let p = which.len();

        let ks: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0 + 0.25 * i as f64, 0.4]).collect();
        let x0 = [1.0, 0.0];
        let times = [0.5, 1.0, 2.0];
        let opts = SolverOptions::default();

        let mut sys = RbmSensBatchSystem::new(&odes, which.clone(), 3);
        for k in &ks {
            sys.push_member(&x0, k);
        }
        let mut scratch = SolverScratch::new();
        let (results, _report) =
            Dopri5Batch::new().solve_group(&mut sys, 0.0, &times, &opts, &mut scratch);

        assert_eq!(results.len(), 5);
        for (i, res) in results.iter().enumerate() {
            let batch_aug = res.as_ref().expect("member must integrate");
            let scalar_inner = RbmSensSystem::new(&odes, ks[i].clone(), which.clone());
            let scalar_aug = AugmentedSensSystem::new(&scalar_inner);
            let y0_aug = scalar_aug.augmented_initial_state(&x0);
            let scalar_sol =
                Dopri5::new().solve(&scalar_aug, 0.0, &y0_aug, &times, &opts).unwrap();
            // Lockstep sensitivity lanes must be bitwise the scalar
            // augmented trajectory — state rows and sensitivity rows.
            assert_eq!(batch_aug.states, scalar_sol.states, "member {i}");
            assert_eq!(batch_aug.stats, scalar_sol.stats, "member {i}");
            // And the sensitivity block must be a real derivative: compare
            // column 0 against central differences of the plain state solve.
            let h = 1e-6;
            let mut kp = ks[i].clone();
            kp[0] += h;
            let mut km = ks[i].clone();
            km[0] -= h;
            let up = Dopri5::new()
                .solve(&RbmOdeSystem::new(&odes, kp), 0.0, &x0, &times, &opts)
                .unwrap();
            let um = Dopri5::new()
                .solve(&RbmOdeSystem::new(&odes, km), 0.0, &x0, &times, &opts)
                .unwrap();
            for (s_idx, aug_state) in batch_aug.states.iter().enumerate() {
                for sp in 0..n {
                    let fd = (up.state_at(s_idx)[sp] - um.state_at(s_idx)[sp]) / (2.0 * h);
                    let sens = aug_state[n + sp]; // column 0 of p columns
                    assert!(
                        (sens - fd).abs() < 1e-4,
                        "member {i} sample {s_idx} species {sp}: sens {sens} vs FD {fd}"
                    );
                }
            }
            assert_eq!(aug_len(batch_aug), n * (1 + p));
        }

        fn aug_len(sol: &paraspace_solvers::Solution) -> usize {
            sol.states[0].len()
        }
    }

    #[test]
    #[should_panic(expected = "mass-action")]
    fn non_mass_action_networks_are_rejected() {
        use paraspace_rbm::Kinetics;
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 1.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        let odes = m.compile().unwrap();
        let _ = RbmBatchSystem::new(&odes, 2);
    }
}

/// An [`RbmOdeSystem`] that additionally exposes the analytic parameter
/// Jacobian `∂f/∂k` for a chosen subset of reactions, making it a
/// [`SensOdeSystem`] both the augmented-DOPRI5 and the staggered-RADAU5
/// forward-sensitivity integrators consume.
///
/// Every bundled rate law evaluates `flux = k · g(x)`, so `∂fluxᵣ/∂kᵣ` is
/// the exact unit flux `g(x)` and `∂f/∂kⱼ` a single scaled stoichiometry
/// column (`CompiledOdes::dfdk_with`) — no finite differences anywhere.
///
/// # Example
///
/// ```
/// use paraspace_core::RbmSensSystem;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_solvers::{Radau5Sens, SolverOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 2.0))?;
/// let odes = m.compile()?;
/// let sys = RbmSensSystem::new(&odes, vec![2.0], vec![0]);
/// let sol = Radau5Sens::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// // ∂y/∂k at t=1 for y' = -k y is -t·e^{-kt}.
/// assert!((sol.sens[0][0] + (-2.0f64).exp()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub struct RbmSensSystem<'a> {
    odes: &'a CompiledOdes,
    rate_constants: Vec<f64>,
    which: Vec<usize>,
    flux_buf: RefCell<Vec<f64>>,
}

impl<'a> RbmSensSystem<'a> {
    /// Binds `odes` to one parameterization, carrying sensitivities for
    /// the reactions listed in `which`.
    ///
    /// # Panics
    ///
    /// Panics on a rate-constant length mismatch or an out-of-range
    /// reaction index.
    pub fn new(odes: &'a CompiledOdes, rate_constants: Vec<f64>, which: Vec<usize>) -> Self {
        assert_eq!(
            rate_constants.len(),
            odes.n_reactions(),
            "one rate constant per reaction required"
        );
        for &r in &which {
            assert!(r < odes.n_reactions(), "sensitivity reaction index {r} out of range");
        }
        let m = odes.n_reactions();
        RbmSensSystem { odes, rate_constants, which, flux_buf: RefCell::new(vec![0.0; m]) }
    }

    /// The reactions sensitivities are carried for.
    pub fn which(&self) -> &[usize] {
        &self.which
    }

    /// The bound rate constants.
    pub fn rate_constants(&self) -> &[f64] {
        &self.rate_constants
    }
}

impl std::fmt::Debug for RbmSensSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RbmSensSystem")
            .field("n_species", &self.odes.n_species())
            .field("n_params", &self.which.len())
            .finish()
    }
}

impl OdeSystem for RbmSensSystem<'_> {
    fn dim(&self) -> usize {
        self.odes.n_species()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut flux = self.flux_buf.borrow_mut();
        self.odes.rhs_with_buffer(y, &self.rate_constants, &mut flux, dydt);
    }

    fn jacobian(&self, _t: f64, y: &[f64], jac: &mut Matrix) {
        self.odes.jacobian_with(y, &self.rate_constants, jac);
    }

    fn has_analytic_jacobian(&self) -> bool {
        true
    }
}

impl SensOdeSystem for RbmSensSystem<'_> {
    fn n_params(&self) -> usize {
        self.which.len()
    }

    fn dfdk(&self, _t: f64, y: &[f64], out: &mut [f64]) {
        self.odes.dfdk_with(y, &self.which, out);
    }

    fn jacobian_sparsity(&self) -> Option<SparsityPattern> {
        Some(self.odes.jacobian_sparsity())
    }
}

/// A member queue of same-network parameterizations whose **augmented**
/// systems `[y; s₀; …; s_{p−1}]` integrate through the lockstep SoA lanes:
/// sensitivity columns ride as extra state rows, exactly as the tentpole
/// GPU design (MPGOS-style) batches them.
///
/// The batched right-hand side evaluates, per sweep, the state RHS
/// (`CompiledOdes::rhs_batch` over the first `n` rows, which are
/// contiguous in the SoA layout), the batched analytic Jacobian, and the
/// batched parameter Jacobian (`dfdk_batch`), then contracts
/// `J·sⱼ + ∂f/∂kⱼ` lane-minor over the stoichiometry-fixed sparsity
/// pattern. Per lane the arithmetic and accumulation order are identical
/// to the scalar [`AugmentedSensSystem`](paraspace_solvers::AugmentedSensSystem)
/// over an [`RbmSensSystem`], so lockstep sensitivities are **bitwise
/// equal** to scalar ones and therefore bitwise independent of lane width
/// and thread count.
pub struct RbmSensBatchSystem<'a> {
    odes: &'a CompiledOdes,
    which: Vec<usize>,
    members: Vec<(&'a [f64], &'a [f64])>, // (x0, k) per queued member
    lanes: usize,
    k_lanes: Vec<f64>,  // M × L lane-bound rate constants
    flux: Vec<f64>,     // M × L flux workspace
    jac: Vec<f64>,      // n² × L batched Jacobian workspace
    fk: Vec<f64>,       // p·n × L batched ∂f/∂k workspace
    gflux: Vec<f64>,    // L unit-flux scratch
    sparsity: SparsityPattern,
}

impl<'a> RbmSensBatchSystem<'a> {
    /// An empty queue carrying sensitivities for the reactions in `which`,
    /// integrating `lanes` members at a time.
    ///
    /// # Panics
    ///
    /// Panics if the network mixes kinetics the batched passes do not
    /// cover, if `lanes` is zero, or on an out-of-range reaction index.
    pub fn new(odes: &'a CompiledOdes, which: Vec<usize>, lanes: usize) -> Self {
        assert!(odes.supports_lane_batch(), "lane batching requires mass-action kinetics");
        assert!(lanes > 0, "lane width must be positive");
        for &r in &which {
            assert!(r < odes.n_reactions(), "sensitivity reaction index {r} out of range");
        }
        let n = odes.n_species();
        let m = odes.n_reactions();
        let p = which.len();
        let sparsity = odes.jacobian_sparsity();
        RbmSensBatchSystem {
            odes,
            which,
            members: Vec::new(),
            lanes,
            k_lanes: vec![0.0; m * lanes],
            flux: vec![0.0; m * lanes],
            jac: vec![0.0; n * n * lanes],
            fk: vec![0.0; p * n * lanes],
            gflux: vec![0.0; lanes],
            sparsity,
        }
    }

    /// Appends one member's `(x0, k)` to the queue.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch with the compiled network.
    pub fn push_member(&mut self, x0: &'a [f64], k: &'a [f64]) {
        assert_eq!(x0.len(), self.odes.n_species(), "initial-state length");
        assert_eq!(k.len(), self.odes.n_reactions(), "rate-constant length");
        self.members.push((x0, k));
    }

    /// The state dimension `n` (the augmented [`BatchOdeSystem::dim`] is
    /// `n·(1+p)`).
    pub fn state_dim(&self) -> usize {
        self.odes.n_species()
    }

    /// Number of sensitivity parameters `p`.
    pub fn n_params(&self) -> usize {
        self.which.len()
    }
}

impl std::fmt::Debug for RbmSensBatchSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RbmSensBatchSystem")
            .field("members", &self.members.len())
            .field("lanes", &self.lanes)
            .field("n_params", &self.which.len())
            .finish()
    }
}

impl BatchOdeSystem for RbmSensBatchSystem<'_> {
    fn dim(&self) -> usize {
        self.odes.n_species() * (1 + self.which.len())
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn members(&self) -> usize {
        self.members.len()
    }

    fn initial_state(&self, member: usize, y0: &mut [f64]) {
        let n = self.odes.n_species();
        y0[..n].copy_from_slice(self.members[member].0);
        y0[n..].fill(0.0);
    }

    fn bind_lane(&mut self, lane: usize, member: usize) {
        let k = self.members[member].1;
        for (r, &kr) in k.iter().enumerate() {
            self.k_lanes[r * self.lanes + lane] = kr;
        }
    }

    fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
        let n = self.odes.n_species();
        let p = self.which.len();
        let lanes = self.lanes;
        let y_all = y.as_slice();
        let d_all = dydt.as_mut_slice();
        // The state block occupies the first n rows — contiguous in the
        // species-major SoA layout — so the plain batched kernels apply
        // unchanged to the augmented buffers.
        let (y_state, y_sens) = y_all.split_at(n * lanes);
        let (d_state, d_sens) = d_all.split_at_mut(n * lanes);
        self.odes.rhs_batch(lanes, y_state, &self.k_lanes, &mut self.flux, d_state);
        self.odes.jacobian_batch(lanes, y_state, &self.k_lanes, &mut self.jac);
        self.odes.dfdk_batch(lanes, y_state, &self.which, &mut self.gflux, &mut self.fk);
        // ṡⱼ = J·sⱼ + ∂f/∂kⱼ, contracted over the stoichiometry-fixed
        // pattern: per lane this is the same start value (the forcing) and
        // the same in-order accumulation the scalar augmented system uses,
        // so lane results match scalar bitwise.
        for j in 0..p {
            for i in 0..n {
                let (out_row, fk_row) = (
                    &mut d_sens[(j * n + i) * lanes..(j * n + i + 1) * lanes],
                    &self.fk[(j * n + i) * lanes..(j * n + i + 1) * lanes],
                );
                out_row.copy_from_slice(fk_row);
                for &m in self.sparsity.row(i) {
                    let m = m as usize;
                    let j_row = &self.jac[(i * n + m) * lanes..(i * n + m + 1) * lanes];
                    let s_row = &y_sens[(j * n + m) * lanes..(j * n + m + 1) * lanes];
                    for l in 0..lanes {
                        out_row[l] += j_row[l] * s_row[l];
                    }
                }
            }
        }
    }
}
/// expression rate laws with symbolic Jacobians) as an [`OdeSystem`] —
/// letting every solver and engine in the suite integrate the
/// "general-purpose kinetics" models the original paper lists as future
/// work.
///
/// # Example
///
/// ```
/// use paraspace_core::CustomOdeSystem;
/// use paraspace_rbm::custom::CustomModel;
/// use paraspace_solvers::{OdeSolver, Radau5, SolverOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A stiff saturating decay written as a free-form rate law.
/// let mut m = CustomModel::new(&["vmax", "km"], &[1e4, 0.1]);
/// let s = m.add_species("S", 1.0);
/// m.add_reaction("vmax * X0 / (km + X0)", &[(s, -1.0)])?;
/// let odes = m.compile()?;
/// let sys = CustomOdeSystem::new(&odes);
/// let sol = Radau5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// assert!(sol.state_at(0)[0] >= 0.0);
/// # Ok(())
/// # }
/// ```
pub struct CustomOdeSystem<'a> {
    odes: &'a paraspace_rbm::custom::CompiledCustomOdes,
}

impl<'a> CustomOdeSystem<'a> {
    /// Wraps a compiled custom model.
    pub fn new(odes: &'a paraspace_rbm::custom::CompiledCustomOdes) -> Self {
        CustomOdeSystem { odes }
    }
}

impl std::fmt::Debug for CustomOdeSystem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomOdeSystem").field("n_species", &self.odes.n_species()).finish()
    }
}

impl OdeSystem for CustomOdeSystem<'_> {
    fn dim(&self) -> usize {
        self.odes.n_species()
    }

    fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        self.odes.rhs(y, dydt);
    }

    fn jacobian(&self, _t: f64, y: &[f64], jac: &mut Matrix) {
        self.odes.jacobian(y, jac);
    }

    fn has_analytic_jacobian(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod custom_tests {
    use super::*;
    use paraspace_rbm::custom::CustomModel;
    use paraspace_solvers::{Dopri5, OdeSolver, Radau5, SolverOptions};

    /// The expression-defined Brusselator must integrate identically to the
    /// mass-action one.
    #[test]
    fn expression_brusselator_matches_mass_action() {
        let mut cm = CustomModel::new(&["a", "b"], &[1.0, 3.0]);
        let x = cm.add_species("X", 0.5);
        let y = cm.add_species("Y", 3.5);
        cm.add_reaction("a", &[(x, 1.0)]).unwrap();
        cm.add_reaction("b * X0", &[(x, -1.0), (y, 1.0)]).unwrap();
        cm.add_reaction("X0^2 * X1", &[(x, 1.0), (y, -1.0)]).unwrap();
        cm.add_reaction("X0", &[(x, -1.0)]).unwrap();
        let codes = cm.compile().unwrap();
        let custom = CustomOdeSystem::new(&codes);

        let mut mm = paraspace_rbm::ReactionBasedModel::new();
        let xs = mm.add_species("X", 0.5);
        let ys = mm.add_species("Y", 3.5);
        use paraspace_rbm::Reaction;
        mm.add_reaction(Reaction::mass_action(&[], &[(xs, 1)], 1.0)).unwrap();
        mm.add_reaction(Reaction::mass_action(&[(xs, 1)], &[(ys, 1)], 3.0)).unwrap();
        mm.add_reaction(Reaction::mass_action(&[(xs, 2), (ys, 1)], &[(xs, 3)], 1.0)).unwrap();
        mm.add_reaction(Reaction::mass_action(&[(xs, 1)], &[], 1.0)).unwrap();
        let modes = mm.compile().unwrap();
        let mass = RbmOdeSystem::new(&modes, mm.rate_constants());

        let times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let opts = SolverOptions::default();
        let a = Dopri5::new().solve(&custom, 0.0, &[0.5, 3.5], &times, &opts).unwrap();
        let b = Dopri5::new().solve(&mass, 0.0, &[0.5, 3.5], &times, &opts).unwrap();
        for i in 0..times.len() {
            for (p, q) in a.state_at(i).iter().zip(b.state_at(i)) {
                assert!((p - q).abs() < 1e-4, "t index {i}: {p} vs {q}");
            }
        }
    }

    /// Radau exploits the symbolic Jacobian of a stiff custom model.
    #[test]
    fn radau_on_stiff_custom_model() {
        let mut m = CustomModel::new(&["k"], &[1e5]);
        let s = m.add_species("S", 0.0);
        m.add_reaction("k * (1 - X0)", &[(s, 1.0)]).unwrap();
        let odes = m.compile().unwrap();
        let sys = CustomOdeSystem::new(&odes);
        let sol =
            Radau5::new().solve(&sys, 0.0, &[0.0], &[1.0], &SolverOptions::default()).unwrap();
        assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-6);
        assert!(sol.stats.steps < 200, "stiffness must not force tiny steps");
        assert!(sol.stats.jacobian_evals >= 1);
    }
}
