//! Simulation jobs: model + batch + sampling + tolerances.

use crate::SimError;
use paraspace_rbm::{CompiledOdes, Parameterization, ReactionBasedModel};
use paraspace_solvers::{FaultPlan, Solution, SolverOptions};

/// A batch simulation job: the unit of work every engine consumes.
///
/// Construction runs phase **P1** of the published pipeline: the model is
/// validated and compiled into the flat ODE encoding shared by all batch
/// members.
///
/// # Example
///
/// ```
/// use paraspace_core::SimulationJob;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build()?;
/// assert_eq!(job.batch_size(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimulationJob<'a> {
    model: &'a ReactionBasedModel,
    odes: CompiledOdes,
    batch: Vec<(Vec<f64>, Vec<f64>)>, // resolved (x0, k) per member
    time_points: Vec<f64>,
    options: SolverOptions,
    fault_plan: FaultPlan,
}

impl<'a> SimulationJob<'a> {
    /// Starts building a job for `model`.
    pub fn builder(model: &'a ReactionBasedModel) -> JobBuilder<'a> {
        JobBuilder {
            model,
            parameterizations: Vec::new(),
            time_points: Vec::new(),
            options: SolverOptions::default(),
            fault_plan: FaultPlan::new(),
        }
    }

    /// The model under simulation.
    pub fn model(&self) -> &ReactionBasedModel {
        self.model
    }

    /// The compiled ODE encoding (phase P1 output).
    pub fn odes(&self) -> &CompiledOdes {
        &self.odes
    }

    /// Number of simulations in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch.len()
    }

    /// Resolved `(x0, k)` of batch member `i`.
    pub fn member(&self, i: usize) -> (&[f64], &[f64]) {
        let (x0, k) = &self.batch[i];
        (x0, k)
    }

    /// The sampling time points.
    pub fn time_points(&self) -> &[f64] {
        &self.time_points
    }

    /// Solver tolerances and limits.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The deterministic fault-injection plan (empty for normal jobs).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Serializes one trajectory in the tab-separated dynamics format the
    /// original tool writes (phase P5); engines charge its cost as I/O.
    pub fn serialize_dynamics(&self, solution: &Solution) -> String {
        let mut out = String::with_capacity(solution.len() * (self.odes.n_species() + 1) * 14);
        for (t, state) in solution.times.iter().zip(&solution.states) {
            out.push_str(&format!("{t:e}"));
            for v in state {
                out.push('\t');
                out.push_str(&format!("{v:e}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builder for [`SimulationJob`].
#[derive(Debug)]
pub struct JobBuilder<'a> {
    model: &'a ReactionBasedModel,
    parameterizations: Vec<Parameterization>,
    time_points: Vec<f64>,
    options: SolverOptions,
    fault_plan: FaultPlan,
}

impl<'a> JobBuilder<'a> {
    /// Sets the sampling time points (strictly increasing, all > t = 0).
    pub fn time_points(mut self, times: Vec<f64>) -> Self {
        self.time_points = times;
        self
    }

    /// Adds an explicit batch of parameterizations.
    pub fn parameterizations(mut self, batch: Vec<Parameterization>) -> Self {
        self.parameterizations.extend(batch);
        self
    }

    /// Adds one parameterization.
    pub fn parameterization(mut self, p: Parameterization) -> Self {
        self.parameterizations.push(p);
        self
    }

    /// Fills the batch with `n` copies of the model's baked values (useful
    /// for throughput measurements).
    pub fn replicate(mut self, n: usize) -> Self {
        self.parameterizations.extend((0..n).map(|_| Parameterization::new()));
        self
    }

    /// Overrides the solver options (defaults: the published εa = 10⁻¹²,
    /// εr = 10⁻⁶, 10⁴ steps).
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a deterministic fault-injection plan: engines wrap each
    /// covered member's system in a
    /// [`ChaosSystem`](paraspace_solvers::ChaosSystem) and evict covered
    /// members from lockstep lane groups, so the containment and recovery
    /// machinery can be exercised reproducibly (builder style).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Validates, compiles the ODEs (phase P1) and resolves the batch.
    ///
    /// # Errors
    ///
    /// [`SimError::Model`] on validation/compilation failure;
    /// [`SimError::InvalidJob`] for an empty batch, empty time points, time
    /// points that are non-finite or not strictly increasing (a single
    /// leading `0.0` is allowed; `t = 0` is always sampled as the initial
    /// state), non-finite or non-positive tolerances, or members whose
    /// resolved initial state or rate constants are non-finite.
    pub fn build(self) -> Result<SimulationJob<'a>, SimError> {
        let odes = self.model.compile()?;
        if self.parameterizations.is_empty() {
            return Err(SimError::InvalidJob {
                message: "batch must contain at least one parameterization".into(),
            });
        }
        if self.time_points.is_empty() {
            return Err(SimError::InvalidJob {
                message: "at least one sampling time point required".into(),
            });
        }
        // Strictly increasing, finite, non-negative; an optional leading
        // zero is the only place t = 0 may appear. NaN fails every
        // comparison, so each point is checked for finiteness explicitly —
        // the historical `t <= prev` test let NaN (and a stray 0.0
        // anywhere) slip through to the solvers.
        let mut prev: Option<f64> = None;
        for &t in &self.time_points {
            if !t.is_finite() {
                return Err(SimError::InvalidJob {
                    message: format!("time points must be finite (saw {t})"),
                });
            }
            let ok = match prev {
                None => t >= 0.0,
                Some(p) => t > p,
            };
            if !ok {
                return Err(SimError::InvalidJob {
                    message: format!(
                        "time points must be strictly increasing and non-negative \
                         (saw {t} after {})",
                        prev.map_or("start".to_string(), |p| p.to_string())
                    ),
                });
            }
            prev = Some(t);
        }
        // `!(x > 0)` (rather than `x <= 0`) also rejects NaN tolerances.
        if !(self.options.rel_tol > 0.0
            && self.options.rel_tol.is_finite()
            && self.options.abs_tol > 0.0
            && self.options.abs_tol.is_finite())
        {
            return Err(SimError::InvalidJob {
                message: "tolerances must be positive and finite".into(),
            });
        }
        let batch = self
            .parameterizations
            .iter()
            .map(|p| p.resolve(self.model))
            .collect::<Result<Vec<_>, _>>()?;
        for (i, (x0, k)) in batch.iter().enumerate() {
            if let Some(v) = x0.iter().find(|v| !v.is_finite()) {
                return Err(SimError::InvalidJob {
                    message: format!("member {i} has a non-finite initial state ({v})"),
                });
            }
            if let Some(v) = k.iter().find(|v| !v.is_finite()) {
                return Err(SimError::InvalidJob {
                    message: format!("member {i} has a non-finite rate constant ({v})"),
                });
            }
        }
        Ok(SimulationJob {
            model: self.model,
            odes,
            batch,
            time_points: self.time_points,
            options: self.options,
            fault_plan: self.fault_plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::Reaction;

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
        m
    }

    #[test]
    fn builder_resolves_batch() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![0.5, 1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![9.0]))
            .replicate(2)
            .build()
            .unwrap();
        assert_eq!(job.batch_size(), 3);
        let (x0, k) = job.member(0);
        assert_eq!(x0, &[1.0, 0.0]);
        assert_eq!(k, &[9.0]);
        let (_, k1) = job.member(1);
        assert_eq!(k1, &[2.0]);
    }

    #[test]
    fn empty_batch_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m).time_points(vec![1.0]).build().unwrap_err();
        assert!(matches!(err, SimError::InvalidJob { .. }));
    }

    #[test]
    fn empty_time_points_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m).replicate(1).build().unwrap_err();
        assert!(err.to_string().contains("time point"));
    }

    #[test]
    fn decreasing_time_points_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![2.0, 1.0])
            .replicate(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidJob { .. }));
    }

    #[test]
    fn nan_time_point_rejected() {
        // NaN fails every comparison, so the historical `t <= prev` check
        // let it through to the solvers.
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0, f64::NAN, 2.0])
            .replicate(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        let err = SimulationJob::builder(&m)
            .time_points(vec![f64::INFINITY])
            .replicate(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidJob { .. }));
    }

    #[test]
    fn duplicate_and_stray_zero_time_points_rejected() {
        let m = model();
        // Duplicates are not strictly increasing.
        for times in [vec![1.0, 1.0], vec![0.0, 0.0], vec![1.0, 0.0, 2.0], vec![-1.0]] {
            let err = SimulationJob::builder(&m)
                .time_points(times.clone())
                .replicate(1)
                .build()
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidJob { .. }), "{times:?} must be rejected");
        }
        // A single leading zero is explicitly allowed.
        let job =
            SimulationJob::builder(&m).time_points(vec![0.0, 1.0]).replicate(1).build().unwrap();
        assert_eq!(job.time_points(), &[0.0, 1.0]);
    }

    #[test]
    fn non_finite_tolerances_rejected() {
        let m = model();
        for (rel, abs) in
            [(f64::NAN, 1e-12), (1e-6, f64::NAN), (f64::INFINITY, 1e-12), (0.0, 1e-12)]
        {
            let opts = SolverOptions { rel_tol: rel, abs_tol: abs, ..SolverOptions::default() };
            let err = SimulationJob::builder(&m)
                .time_points(vec![1.0])
                .replicate(1)
                .options(opts)
                .build()
                .unwrap_err();
            assert!(
                err.to_string().contains("tolerances"),
                "rel={rel} abs={abs} must be rejected, got {err}"
            );
        }
    }

    #[test]
    fn non_finite_member_inputs_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![f64::NAN]))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rate constant"), "{err}");
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_initial_state(vec![f64::INFINITY, 0.0]))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("initial state"), "{err}");
    }

    #[test]
    fn fault_plan_rides_on_the_job() {
        use paraspace_solvers::FaultSpec;
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .replicate(4)
            .fault_plan(FaultPlan::new().with_fault(2, FaultSpec::nan_at_time(0.5)))
            .build()
            .unwrap();
        assert!(job.fault_plan().faults_for(2).is_some());
        assert!(job.fault_plan().faults_for(0).is_none());
    }

    #[test]
    fn wrong_parameterization_length_is_model_error() {
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![1.0, 2.0]))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Model(_)));
    }

    #[test]
    fn serialization_is_tab_separated_rows() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let sol = Solution {
            times: vec![0.0, 1.0],
            states: vec![vec![1.0, 0.0], vec![0.5, 0.5]],
            stats: Default::default(),
        };
        let text = job.serialize_dynamics(&sol);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split('\t').count(), 3);
        assert!(lines[1].starts_with("1e0"));
    }
}
