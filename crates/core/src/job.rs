//! Simulation jobs: model + batch + sampling + tolerances.

use crate::SimError;
use paraspace_rbm::{CompiledOdes, Parameterization, ReactionBasedModel};
use paraspace_solvers::{Solution, SolverOptions};

/// A batch simulation job: the unit of work every engine consumes.
///
/// Construction runs phase **P1** of the published pipeline: the model is
/// validated and compiled into the flat ODE encoding shared by all batch
/// members.
///
/// # Example
///
/// ```
/// use paraspace_core::SimulationJob;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build()?;
/// assert_eq!(job.batch_size(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimulationJob<'a> {
    model: &'a ReactionBasedModel,
    odes: CompiledOdes,
    batch: Vec<(Vec<f64>, Vec<f64>)>, // resolved (x0, k) per member
    time_points: Vec<f64>,
    options: SolverOptions,
}

impl<'a> SimulationJob<'a> {
    /// Starts building a job for `model`.
    pub fn builder(model: &'a ReactionBasedModel) -> JobBuilder<'a> {
        JobBuilder {
            model,
            parameterizations: Vec::new(),
            time_points: Vec::new(),
            options: SolverOptions::default(),
        }
    }

    /// The model under simulation.
    pub fn model(&self) -> &ReactionBasedModel {
        self.model
    }

    /// The compiled ODE encoding (phase P1 output).
    pub fn odes(&self) -> &CompiledOdes {
        &self.odes
    }

    /// Number of simulations in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch.len()
    }

    /// Resolved `(x0, k)` of batch member `i`.
    pub fn member(&self, i: usize) -> (&[f64], &[f64]) {
        let (x0, k) = &self.batch[i];
        (x0, k)
    }

    /// The sampling time points.
    pub fn time_points(&self) -> &[f64] {
        &self.time_points
    }

    /// Solver tolerances and limits.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Serializes one trajectory in the tab-separated dynamics format the
    /// original tool writes (phase P5); engines charge its cost as I/O.
    pub fn serialize_dynamics(&self, solution: &Solution) -> String {
        let mut out = String::with_capacity(solution.len() * (self.odes.n_species() + 1) * 14);
        for (t, state) in solution.times.iter().zip(&solution.states) {
            out.push_str(&format!("{t:e}"));
            for v in state {
                out.push('\t');
                out.push_str(&format!("{v:e}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builder for [`SimulationJob`].
#[derive(Debug)]
pub struct JobBuilder<'a> {
    model: &'a ReactionBasedModel,
    parameterizations: Vec<Parameterization>,
    time_points: Vec<f64>,
    options: SolverOptions,
}

impl<'a> JobBuilder<'a> {
    /// Sets the sampling time points (strictly increasing, all > t = 0).
    pub fn time_points(mut self, times: Vec<f64>) -> Self {
        self.time_points = times;
        self
    }

    /// Adds an explicit batch of parameterizations.
    pub fn parameterizations(mut self, batch: Vec<Parameterization>) -> Self {
        self.parameterizations.extend(batch);
        self
    }

    /// Adds one parameterization.
    pub fn parameterization(mut self, p: Parameterization) -> Self {
        self.parameterizations.push(p);
        self
    }

    /// Fills the batch with `n` copies of the model's baked values (useful
    /// for throughput measurements).
    pub fn replicate(mut self, n: usize) -> Self {
        self.parameterizations.extend((0..n).map(|_| Parameterization::new()));
        self
    }

    /// Overrides the solver options (defaults: the published εa = 10⁻¹²,
    /// εr = 10⁻⁶, 10⁴ steps).
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Validates, compiles the ODEs (phase P1) and resolves the batch.
    ///
    /// # Errors
    ///
    /// [`SimError::Model`] on validation/compilation failure;
    /// [`SimError::InvalidJob`] for an empty batch, empty or non-increasing
    /// time points, or non-positive tolerances.
    pub fn build(self) -> Result<SimulationJob<'a>, SimError> {
        let odes = self.model.compile()?;
        if self.parameterizations.is_empty() {
            return Err(SimError::InvalidJob {
                message: "batch must contain at least one parameterization".into(),
            });
        }
        if self.time_points.is_empty() {
            return Err(SimError::InvalidJob {
                message: "at least one sampling time point required".into(),
            });
        }
        let mut prev = 0.0;
        for &t in &self.time_points {
            if t <= prev && t != 0.0 {
                return Err(SimError::InvalidJob {
                    message: format!(
                        "time points must be increasing and non-negative (saw {t} after {prev})"
                    ),
                });
            }
            prev = t;
        }
        if self.options.rel_tol <= 0.0 || self.options.abs_tol <= 0.0 {
            return Err(SimError::InvalidJob { message: "tolerances must be positive".into() });
        }
        let batch = self
            .parameterizations
            .iter()
            .map(|p| p.resolve(self.model))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SimulationJob {
            model: self.model,
            odes,
            batch,
            time_points: self.time_points,
            options: self.options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::Reaction;

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
        m
    }

    #[test]
    fn builder_resolves_batch() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![0.5, 1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![9.0]))
            .replicate(2)
            .build()
            .unwrap();
        assert_eq!(job.batch_size(), 3);
        let (x0, k) = job.member(0);
        assert_eq!(x0, &[1.0, 0.0]);
        assert_eq!(k, &[9.0]);
        let (_, k1) = job.member(1);
        assert_eq!(k1, &[2.0]);
    }

    #[test]
    fn empty_batch_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m).time_points(vec![1.0]).build().unwrap_err();
        assert!(matches!(err, SimError::InvalidJob { .. }));
    }

    #[test]
    fn empty_time_points_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m).replicate(1).build().unwrap_err();
        assert!(err.to_string().contains("time point"));
    }

    #[test]
    fn decreasing_time_points_rejected() {
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![2.0, 1.0])
            .replicate(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidJob { .. }));
    }

    #[test]
    fn wrong_parameterization_length_is_model_error() {
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![1.0, 2.0]))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Model(_)));
    }

    #[test]
    fn serialization_is_tab_separated_rows() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let sol = Solution {
            times: vec![0.0, 1.0],
            states: vec![vec![1.0, 0.0], vec![0.5, 0.5]],
            stats: Default::default(),
        };
        let text = job.serialize_dynamics(&sol);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split('\t').count(), 3);
        assert!(lines[1].starts_with("1e0"));
    }
}
