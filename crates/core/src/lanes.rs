//! Per-model lane-width autotuning for the lockstep engines.
//!
//! The lockstep lane path amortizes host-launch latency and structure
//! decoding `L`-fold, so wider is better — **until** the per-lane working
//! set of the stiff class's Newton machinery stops fitting cache. The
//! dominant term there is the pair of iteration-matrix factorizations
//! (one real + one complex LU per lane): a dense factorization streams
//! `n²` reals and `n²` complex values per lane per refresh, which at
//! `n = 114` and `L = 8` is ~2.3 MB of live factor state — far past L2 —
//! and the measured lane benches show exactly that cliff (the lockstep
//! path drops to ~0.6× scalar RADAU5 on the 114-species metabolic model
//! at width 8 while winning 40–50× on flux-dominated models).
//!
//! [`auto_lane_width`] prices that trade per model instead of hardcoding
//! one width for every network:
//!
//! 1. **Flux-dominated models** (per-step RHS + Jacobian work ≥ LU work)
//!    keep the full width: the LU working set is small where flux work
//!    dominates, and width amortizes both.
//! 2. **LU-dominated models** are width-limited so the *factor storage*
//!    of one lane-group — real + complex values over however many entries
//!    the selected factorization path actually stores (the symbolic
//!    sparse fill pattern when [`SymbolicLu::prefers_sparse`] holds,
//!    dense `n²` otherwise) — stays inside a fixed cache budget.
//!
//! The returned width only ever *narrows* the schedule; it never changes
//! any trajectory (per-member results are bitwise independent of lane
//! width by the lockstep solvers' contract), so tuning is purely a
//! throughput decision and `--lane-width N` remains a safe manual
//! override.

use crate::cost::COMPLEX_LU_AVG_FACTOR;
use paraspace_linalg::{LuFactor, SymbolicLu};
use paraspace_rbm::{CompiledOdes, ReactionBasedModel};

/// Widest lane-group the engines schedule.
pub(crate) const MAX_LANE_WIDTH: usize = 8;

/// Cache budget for one lane-group's live factor values (real + complex),
/// sized to a conservative per-core L2 slice. Crossing it is where the
/// lane benches measured the dense-LU cliff.
const FACTOR_CACHE_BUDGET_BYTES: usize = 256 * 1024;

/// Bytes of factor state per structural entry per lane: one `f64` (real
/// E1 factor) + one `Complex64` (complex E2 factor).
const FACTOR_BYTES_PER_ENTRY: usize = 8 + 16;

/// The lane width the lockstep engines should run `odes` at, from the
/// model's flux-cost-vs-LU-cost ratio and factorization working set.
///
/// Returns a power of two in `1..=8`. `1` means lockstep lanes do not pay
/// for this model — either the batched flux pass cannot cover it (mixed
/// kinetics) or the LU working set swamps the cache at any width (the
/// measured regime where even width-1 lanes trail scalar RADAU5). How `1`
/// is honored is engine-specific: the fine-coarse engine routes stiff
/// members to its scalar RADAU5 P4 path, while the fine engine — whose
/// width-1 semantics is the published RKF45→BDF1 baseline, a different
/// method — floors the *tuned* width at 2 (see
/// `resolve_lane_width`). Deterministic per model — it reads only
/// compiled-model structure, never timings.
///
/// # Example
///
/// ```
/// use paraspace_core::auto_lane_width;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// // Tiny flux-dominated model: full width.
/// assert_eq!(auto_lane_width(&m.compile()?), 8);
/// # Ok(())
/// # }
/// ```
pub fn auto_lane_width(odes: &CompiledOdes) -> usize {
    if !odes.supports_lane_batch() {
        return 1;
    }
    let n = odes.n_species();
    // Per-step work split: one RHS + one Jacobian evaluation against one
    // real + one complex factorization (the same averaging the cost model
    // applies to RADAU5's lumped LU counter).
    let flux_flops = (odes.rhs_flops() + odes.jacobian_flops()) as f64;
    let lu_flops = LuFactor::flops(n) as f64 * (1.0 + COMPLEX_LU_AVG_FACTOR);
    if lu_flops <= flux_flops {
        return MAX_LANE_WIDTH;
    }
    // LU-dominated: bound the lane-group's factor working set by the cache
    // budget, counting the entries the stiff path will actually store.
    let sym = SymbolicLu::analyze(&odes.jacobian_sparsity());
    let entries = if sym.prefers_sparse() { sym.nnz() } else { n * n };
    let bytes_per_lane = entries * FACTOR_BYTES_PER_ENTRY;
    let mut width = MAX_LANE_WIDTH;
    while width > 1 && bytes_per_lane * width > FACTOR_CACHE_BUDGET_BYTES {
        width /= 2;
    }
    width
}

/// Cache budget for one sensitivity lane-group's live augmented working
/// set. The explicit augmented path has no LU cliff; its pressure is the
/// DOPRI5 stage storage (7 k-stages + ~5 state-sized buffers) over the
/// augmented dimension `n·(1+p)` plus the batched Jacobian / ∂f/∂k blocks
/// re-streamed every sweep. Same conservative per-core L2 slice as the
/// stiff tuner's factor budget.
const SENS_CACHE_BUDGET_BYTES: usize = 256 * 1024;

/// The lane width the lockstep *forward-sensitivity* path should run
/// `odes` at when carrying `n_params` sensitivity columns.
///
/// Sensitivity columns widen every lane's working set `(1+p)`-fold: the
/// augmented SoA state is `n·(1+p)` rows, and each right-hand-side sweep
/// additionally streams the `nnz` Jacobian entries and the `p·n` forcing
/// block per lane. This tuner prices that widened set against the same
/// cache budget the stiff tuner uses, narrowing from
/// [`auto_lane_width`]'s answer — never widening past it, and like every
/// tuner in this module it only ever changes throughput, not results
/// (per-member sensitivities are bitwise independent of lane width by the
/// lockstep contract).
///
/// # Example
///
/// ```
/// use paraspace_core::{auto_lane_width, auto_sens_lane_width};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let odes = m.compile()?;
/// // Tiny model, few parameters: sensitivities don't narrow the lanes.
/// assert_eq!(auto_sens_lane_width(&odes, 1), auto_lane_width(&odes));
/// # Ok(())
/// # }
/// ```
pub fn auto_sens_lane_width(odes: &CompiledOdes, n_params: usize) -> usize {
    if !odes.supports_lane_batch() {
        return 1;
    }
    let n = odes.n_species();
    let aug = n * (1 + n_params);
    let nnz = odes.jacobian_sparsity().nnz();
    // Live doubles per lane per sweep: 12 augmented state-sized buffers
    // (DOPRI5's 7 stages + y/y_stage/y_new/err/scale), the Jacobian block,
    // and the forcing block.
    let bytes_per_lane = (12 * aug + nnz + n_params * n) * 8;
    let mut width = auto_lane_width(odes);
    while width > 1 && bytes_per_lane * width > SENS_CACHE_BUDGET_BYTES {
        width /= 2;
    }
    width
}

/// Tau-leaping's published relative-change tolerance, mirrored here so the
/// stochastic tuner prices the leap/SSA mode split the same way the
/// simulator decides it.
const TAU_EPSILON: f64 = 0.03;

/// The Cao bound's SSA-fallback threshold (leaps covering fewer expected
/// events than this run as exact events).
const TAU_SSA_THRESHOLD: f64 = 10.0;

/// The lane width the lockstep *stochastic* path should run `model` at,
/// from a propensity-vs-sampling cost split.
///
/// A tau-leaping tick divides into a vectorizable half — the batched
/// propensity evaluation and Cao tau-selection sweeps, which lanes
/// amortize — and a per-lane sampling tail (Poisson draws, the τ-halving
/// rejection loop, the exact-SSA fallback) that stays scalar no matter
/// the width. Which half dominates is set by the *leap/SSA mode split*:
/// the Cao bound admits leaps covering `≈ ε·x/2` expected events, so
/// models with large populations run leap-dominated ticks (sweep-bound →
/// wide lanes pay) while near-critical populations degenerate into
/// per-event SSA fallbacks (sampling-bound, divergent → wide lanes only
/// add swept-but-idle slots). Unlike the stiff ODE path there is no
/// factor-cache cliff — the SoA count state is `n·L` words — so the tuner
/// prices only that mode split, from the model's initial counts:
///
/// * `ε·x̄/2 ≥ 10` (the SSA threshold): leap-dominated, full width 8;
/// * `ε·x̄/2 ≥ 1`: mixed mode, width 4;
/// * below that: SSA-dominated, width 2;
/// * non-mass-action kinetics: `1` — the falling-factorial propensities
///   are only faithful for mass action, so the batch engine routes these
///   to its scalar path.
///
/// `x̄` is the mean initial count over initially populated species.
/// Deterministic per model, and like [`auto_lane_width`] it only ever
/// narrows the schedule: per-replicate trajectories are bitwise
/// independent of lane width by the lockstep kernel's contract, so
/// `--lane-width N` stays a safe manual override.
///
/// # Example
///
/// ```
/// use paraspace_core::auto_stoch_lane_width;
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 100_000.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// // Large population: leap-dominated, full width.
/// assert_eq!(auto_stoch_lane_width(&m), 8);
/// # Ok(())
/// # }
/// ```
pub fn auto_stoch_lane_width(model: &ReactionBasedModel) -> usize {
    if model.reactions().iter().any(|r| !r.kinetics().is_mass_action()) {
        return 1;
    }
    let counts: Vec<f64> =
        model.initial_state().iter().map(|&x| x.max(0.0).round()).filter(|&x| x > 0.0).collect();
    if counts.is_empty() {
        // Nothing populated: every tick is an SSA-or-source event.
        return 2;
    }
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    let leap_events = TAU_EPSILON * mean / 2.0;
    if leap_events >= TAU_SSA_THRESHOLD {
        MAX_LANE_WIDTH
    } else if leap_events >= 1.0 {
        4
    } else {
        2
    }
}

/// The width a lockstep engine actually runs `job` at: the pinned width if
/// the caller set one, otherwise [`auto_lane_width`] — with the shared
/// fallbacks to the scalar path (`1`) for sub-2 batches and for models the
/// batched flux pass does not cover. Both lockstep engines route through
/// this resolver so `--lane-width auto|N` means the same thing everywhere.
///
/// `scalar_stiff_radau` says whether the engine's width-1 route solves
/// stiff members with scalar RADAU5 (true for the fine-coarse P4 phase).
/// When it does not (the fine engine's width 1 is the published
/// RKF45→BDF1 baseline), an autotuned `1` is floored to `2` so an
/// LU-dominated model narrows the lanes instead of silently switching
/// stiff members to a first-order method. An explicitly pinned `1` is
/// honored as the documented baseline semantics either way.
pub(crate) fn resolve_lane_width(
    pinned: Option<usize>,
    job: &crate::SimulationJob,
    engine: &str,
    scalar_stiff_radau: bool,
) -> usize {
    if job.batch_size() < 2 {
        return 1;
    }
    if !job.odes().supports_lane_batch() {
        if pinned.is_none_or(|w| w > 1)
            && std::env::var("PARASPACE_DEBUG").map(|v| v == "1").unwrap_or(false)
        {
            eprintln!(
                "{engine}: model mixes kinetics the lane-batched flux pass does not cover; \
                 using the scalar path"
            );
        }
        return 1;
    }
    match pinned {
        Some(w) => w.max(1),
        None => {
            let tuned = auto_lane_width(job.odes());
            if tuned == 1 && !scalar_stiff_radau {
                2
            } else {
                tuned
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn chain_model(n_species: usize, reactions_per_species: usize) -> CompiledOdes {
        let mut m = ReactionBasedModel::new();
        let ids: Vec<_> = (0..n_species).map(|i| m.add_species(format!("S{i}"), 1.0)).collect();
        for s in 0..n_species.saturating_sub(1) {
            for _ in 0..reactions_per_species {
                m.add_reaction(Reaction::mass_action(&[(ids[s], 1)], &[(ids[s + 1], 1)], 1.0))
                    .unwrap();
            }
        }
        m.compile().unwrap()
    }

    #[test]
    fn small_models_keep_full_width() {
        // The determinism suite's 2-species stiff rows must be unaffected.
        assert_eq!(auto_lane_width(&chain_model(2, 1)), MAX_LANE_WIDTH);
    }

    #[test]
    fn reaction_dense_models_keep_full_width() {
        // Many reactions per species: flux work dominates the LU.
        assert_eq!(auto_lane_width(&chain_model(12, 40)), MAX_LANE_WIDTH);
    }

    #[test]
    fn large_sparse_chains_narrow() {
        // One reaction per species at n = 114: LU-dominated, and even the
        // sparse working set cannot justify width 8's cache pressure...
        let w = auto_lane_width(&chain_model(114, 1));
        assert!(w < MAX_LANE_WIDTH, "got {w}");
        assert!(w >= 1);
        // ...but the choice is deterministic.
        assert_eq!(w, auto_lane_width(&chain_model(114, 1)));
    }

    #[test]
    fn autotuned_width_one_is_engine_aware() {
        // A 114-species single chain is LU-dominated past the cache budget
        // at every width, so the tuner answers 1...
        let mut m = ReactionBasedModel::new();
        let ids: Vec<_> = (0..114).map(|i| m.add_species(format!("S{i}"), 1.0)).collect();
        for s in 0..113 {
            m.add_reaction(Reaction::mass_action(&[(ids[s], 1)], &[(ids[s + 1], 1)], 1.0)).unwrap();
        }
        assert_eq!(auto_lane_width(&m.compile().unwrap()), 1);
        let job =
            crate::SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build().unwrap();
        // ...which fine-coarse honors (its width-1 stiff route is scalar
        // RADAU5) while the fine engine floors to 2 (its width-1 route is
        // the RKF45→BDF1 baseline, a different method).
        assert_eq!(resolve_lane_width(None, &job, "fine-coarse", true), 1);
        assert_eq!(resolve_lane_width(None, &job, "fine", false), 2);
        // A pinned 1 always selects the engine's documented scalar path.
        assert_eq!(resolve_lane_width(Some(1), &job, "fine", false), 1);
        assert_eq!(resolve_lane_width(Some(1), &job, "fine-coarse", true), 1);
    }

    #[test]
    fn sens_width_narrows_with_parameter_count() {
        // A mid-size chain: full width unburdened, but carrying many
        // sensitivity columns must narrow the lanes...
        let odes = chain_model(40, 3);
        let plain = auto_sens_lane_width(&odes, 0);
        let heavy = auto_sens_lane_width(&odes, 64);
        assert!(heavy < plain, "p=64 must narrow: {heavy} vs {plain}");
        // ...never below 1, never above the plain tuner's answer.
        assert!(heavy >= 1);
        assert!(auto_sens_lane_width(&odes, 4) <= auto_lane_width(&odes));
        // Deterministic.
        assert_eq!(auto_sens_lane_width(&odes, 64), auto_sens_lane_width(&odes, 64));
    }

    #[test]
    fn sens_width_is_scalar_for_non_mass_action_kinetics() {
        use paraspace_rbm::Kinetics;
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 1.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        assert_eq!(auto_sens_lane_width(&m.compile().unwrap(), 1), 1);
    }

    #[test]
    fn stoch_width_follows_the_leap_ssa_mode_split() {
        let decay = |x0: f64| {
            let mut m = ReactionBasedModel::new();
            let a = m.add_species("A", x0);
            m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0)).unwrap();
            m
        };
        // ε·x̄/2 = 1500: leap-dominated, sweeps amortize across full lanes.
        assert_eq!(auto_stoch_lane_width(&decay(100_000.0)), MAX_LANE_WIDTH);
        // ε·x̄/2 = 1.5: mixed leap/SSA ticks.
        assert_eq!(auto_stoch_lane_width(&decay(100.0)), 4);
        // ε·x̄/2 = 0.15: pure SSA fallback, per-lane sampling dominates.
        assert_eq!(auto_stoch_lane_width(&decay(10.0)), 2);
        // Deterministic.
        assert_eq!(auto_stoch_lane_width(&decay(100.0)), auto_stoch_lane_width(&decay(100.0)));
    }

    #[test]
    fn stoch_width_is_scalar_for_non_mass_action_kinetics() {
        use paraspace_rbm::Kinetics;
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 100_000.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        assert_eq!(auto_stoch_lane_width(&m), 1);
        // An unpopulated model still gets a (narrow) lane schedule.
        let mut empty = ReactionBasedModel::new();
        let a = empty.add_species("A", 0.0);
        empty.add_reaction(Reaction::mass_action(&[], &[(a, 1)], 3.0)).unwrap();
        assert_eq!(auto_stoch_lane_width(&empty), 2);
    }

    #[test]
    fn non_mass_action_models_are_scalar() {
        use paraspace_rbm::Kinetics;
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 1.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        assert_eq!(auto_lane_width(&m.compile().unwrap()), 1);
    }

    #[test]
    fn width_is_a_power_of_two_in_range() {
        for (n, r) in [(2, 1), (12, 3), (40, 1), (114, 1), (200, 1)] {
            let w = auto_lane_width(&chain_model(n, r));
            assert!((1..=MAX_LANE_WIDTH).contains(&w) && w.is_power_of_two(), "n={n} w={w}");
        }
    }
}
