//! Work estimation: converting solver statistics into flop and byte counts
//! the hardware models (virtual GPU, calibrated CPU) can price.

use paraspace_linalg::LuFactor;
use paraspace_rbm::CompiledOdes;
use paraspace_solvers::StepStats;

/// Average flop multiplier of a complex LU relative to a real one; the
/// RADAU5 counters lump one real + one complex decomposition as 2, so the
/// average factor per counted decomposition is (1 + 4)/2.
pub(crate) const COMPLEX_LU_AVG_FACTOR: f64 = 2.5;
/// Step-control overhead per attempted step, in flops per state component
/// (error norms, scale vectors, controller arithmetic).
const STEP_CONTROL_FLOPS_PER_DIM: u64 = 12;
/// Bytes per floating-point value.
const F64: u64 = 8;

/// Estimated computational work of one simulation.
///
/// # Example
///
/// ```
/// use paraspace_core::WorkEstimate;
///
/// let w = WorkEstimate { flops: 1_000, state_bytes: 64, structure_bytes: 128, output_bytes: 32 };
/// assert_eq!(w.total_bytes(), 224);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkEstimate {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes of state traffic (read/write of `y`, stages, Nordsieck/cont
    /// arrays).
    pub state_bytes: u64,
    /// Bytes of model-structure traffic (stoichiometry encoding, kinetic
    /// constants) — the traffic that constant memory absorbs when it fits.
    pub structure_bytes: u64,
    /// Bytes written as sampled output.
    pub output_bytes: u64,
}

impl WorkEstimate {
    /// All memory traffic combined.
    pub fn total_bytes(&self) -> u64 {
        self.state_bytes + self.structure_bytes + self.output_bytes
    }

    /// Component-wise sum.
    pub fn absorb(&mut self, other: &WorkEstimate) {
        self.flops += other.flops;
        self.state_bytes += other.state_bytes;
        self.structure_bytes += other.structure_bytes;
        self.output_bytes += other.output_bytes;
    }

    /// Estimates the work of one simulation from its solver counters.
    ///
    /// `n_samples` prices the dense-output evaluations and result writes.
    pub fn from_stats(odes: &CompiledOdes, stats: &StepStats, n_samples: usize) -> WorkEstimate {
        let n = odes.n_species() as u64;
        let rhs = stats.rhs_evals as u64 * odes.rhs_flops();
        let jac = stats.jacobian_evals as u64 * odes.jacobian_flops();
        let lu = (stats.lu_decompositions as f64
            * COMPLEX_LU_AVG_FACTOR
            * LuFactor::flops(odes.n_species()) as f64) as u64;
        let solves = (stats.linear_solves as f64
            * COMPLEX_LU_AVG_FACTOR
            * LuFactor::solve_flops(odes.n_species()) as f64) as u64;
        let control = stats.steps as u64 * STEP_CONTROL_FLOPS_PER_DIM * n;
        let interp = n_samples as u64 * 8 * n; // dense-output polynomial

        // State traffic: each RHS evaluation reads y and writes dy/dt plus
        // the reaction-flux intermediate.
        let m = odes.n_reactions() as u64;
        let state_bytes = stats.rhs_evals as u64 * (2 * n + m) * F64
            + stats.steps as u64 * 6 * n * F64
            + stats.lu_decompositions as u64 * 2 * n * n * F64
            + stats.linear_solves as u64 * n * n * F64;
        // Structure traffic: per RHS evaluation the flat encoding is
        // streamed once (reaction reactant lists + per-species terms +
        // constants).
        let structure_per_eval = (m + 2 * odes.n_terms() as u64 + m) * F64;
        let structure_bytes = stats.rhs_evals as u64 * structure_per_eval;
        let output_bytes = n_samples as u64 * (n + 1) * F64;

        WorkEstimate {
            flops: rhs + jac + lu + solves + control + interp,
            state_bytes,
            structure_bytes,
            output_bytes,
        }
    }
}

/// A calibrated sequential-CPU cost model, so CPU baselines are priced on
/// the *published* workstation (Intel i7-2600, 3.4 GHz) instead of on
/// whatever machine runs this reproduction.
///
/// The model is a two-term roofline: `time = flops/throughput +
/// bytes/bandwidth`, deliberately simple and documented.
///
/// # Example
///
/// ```
/// use paraspace_core::{CpuCostModel, WorkEstimate};
///
/// let cpu = CpuCostModel::i7_2600();
/// let w = WorkEstimate { flops: 4_000_000, state_bytes: 0, structure_bytes: 0, output_bytes: 0 };
/// let t = cpu.time_ns(&w);
/// assert!(t > 0.0 && t < 4_000_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Sustained scalar flops per nanosecond.
    pub flops_per_ns: f64,
    /// Sustained DRAM bandwidth in bytes per nanosecond (GB/s) — charged
    /// for output writes.
    pub bytes_per_ns: f64,
    /// Sustained cache bandwidth (L2/L3) in bytes per nanosecond — charged
    /// for the state and model-structure working sets, which fit the CPU's
    /// last-level cache for all evaluated model sizes (the same caching
    /// courtesy the virtual GPU's `CachedGlobal` space extends to the
    /// device engines).
    pub cached_bytes_per_ns: f64,
    /// Fixed per-simulation overhead (solver setup, allocation) in ns.
    pub per_sim_overhead_ns: f64,
}

impl CpuCostModel {
    /// The published workstation's CPU: Intel Core i7-2600 (Sandy Bridge,
    /// 3.4 GHz). Sustained scalar FP throughput ≈ 2 ops/cycle.
    pub fn i7_2600() -> Self {
        CpuCostModel {
            flops_per_ns: 6.8,
            bytes_per_ns: 18.0,
            cached_bytes_per_ns: 60.0,
            per_sim_overhead_ns: 40_000.0,
        }
    }

    /// Prices a work estimate in nanoseconds (additive roofline).
    pub fn time_ns(&self, work: &WorkEstimate) -> f64 {
        work.flops as f64 / self.flops_per_ns
            + (work.state_bytes + work.structure_bytes) as f64 / self.cached_bytes_per_ns
            + work.output_bytes as f64 / self.bytes_per_ns
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel::i7_2600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn small_odes() -> CompiledOdes {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.compile().unwrap()
    }

    #[test]
    fn work_scales_with_rhs_evaluations() {
        let odes = small_odes();
        let cheap = StepStats { rhs_evals: 10, steps: 2, ..Default::default() };
        let pricey = StepStats { rhs_evals: 1000, steps: 200, ..Default::default() };
        let w1 = WorkEstimate::from_stats(&odes, &cheap, 5);
        let w2 = WorkEstimate::from_stats(&odes, &pricey, 5);
        assert!(w2.flops > 50 * w1.flops / 2);
        assert!(w2.state_bytes > w1.state_bytes);
    }

    #[test]
    fn implicit_machinery_dominates_when_present() {
        let odes = small_odes();
        let explicit = StepStats { rhs_evals: 100, steps: 20, ..Default::default() };
        let implicit = StepStats {
            rhs_evals: 100,
            steps: 20,
            jacobian_evals: 10,
            lu_decompositions: 40,
            linear_solves: 60,
            ..Default::default()
        };
        let we = WorkEstimate::from_stats(&odes, &explicit, 5);
        let wi = WorkEstimate::from_stats(&odes, &implicit, 5);
        assert!(wi.flops > we.flops);
    }

    #[test]
    fn absorb_sums_components() {
        let mut a = WorkEstimate { flops: 1, state_bytes: 2, structure_bytes: 3, output_bytes: 4 };
        a.absorb(&WorkEstimate {
            flops: 10,
            state_bytes: 20,
            structure_bytes: 30,
            output_bytes: 40,
        });
        assert_eq!(
            a,
            WorkEstimate { flops: 11, state_bytes: 22, structure_bytes: 33, output_bytes: 44 }
        );
    }

    #[test]
    fn cpu_model_prices_flops_and_bytes() {
        let cpu = CpuCostModel::i7_2600();
        let flops_only = WorkEstimate { flops: 6_800, ..Default::default() };
        assert!((cpu.time_ns(&flops_only) - 1000.0).abs() < 1e-9);
        let cached = WorkEstimate { state_bytes: 60_000, ..Default::default() };
        assert!((cpu.time_ns(&cached) - 1000.0).abs() < 1e-9);
        let output = WorkEstimate { output_bytes: 18_000, ..Default::default() };
        assert!((cpu.time_ns(&output) - 1000.0).abs() < 1e-9);
    }
}
