//! Member-level fault containment and the deterministic retry ladder.
//!
//! Parameter-space batches meet hostile members: panicking right-hand
//! sides, states that leave the finite range, parameterizations that a
//! solver's default tolerances cannot handle. This module keeps those
//! members from sinking the batch:
//!
//! * every solve attempt runs under `catch_unwind`, so a panic becomes a
//!   per-member [`SolverError::Internal`] outcome instead of an abort;
//! * failed members climb a configurable [`RecoveryPolicy`] ladder —
//!   explicit→implicit reroute, then tolerance-relaxation retries with
//!   step-budget escalation — generalizing the engines' historical
//!   single stiffness reroute;
//! * every attempt's work counters are absorbed into the member's stats,
//!   so retries are billed on the engines' modeled timelines.
//!
//! The ladder is fully deterministic: the attempt sequence depends only on
//! the member's inputs and the policy, never on thread scheduling, so a
//! batch containing retried members stays bitwise identical at any worker
//! count.

use crate::engines::{outcome_and_stats, solve_member_pooled_opts};
use crate::SimulationJob;
use paraspace_exec::{payload_message, CancelToken, Cancelled, Executor};
use paraspace_solvers::{
    OdeSolver, Solution, SolveFailure, SolverError, SolverOptions, SolverScratch, StepStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How engines respond to failed batch members.
///
/// The default reproduces the engines' historical behavior exactly — one
/// stiffness-shaped reroute to the implicit fallback, nothing else — so
/// existing results stay bitwise identical unless a caller opts into more.
///
/// # Example
///
/// ```
/// use paraspace_core::RecoveryPolicy;
///
/// let policy = RecoveryPolicy { max_relaxations: 2, ..RecoveryPolicy::default() };
/// assert!(policy.reroute);
/// assert_eq!(policy.relax_factor, 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retry a stiffness-shaped explicit-solver failure on the engine's
    /// implicit fallback (the published P3 → P4 reroute).
    pub reroute: bool,
    /// Maximum tolerance-relaxation retries after the reroute (0 disables
    /// the relaxation rungs of the ladder).
    pub max_relaxations: usize,
    /// Factor both tolerances are multiplied by per relaxation.
    pub relax_factor: f64,
    /// Relative tolerance is never relaxed beyond this.
    pub rel_tol_cap: f64,
    /// Absolute tolerance is never relaxed beyond this.
    pub abs_tol_cap: f64,
    /// Per-member total-step budget applied when the job itself sets none
    /// (see [`SolverOptions::step_budget`]); `None` leaves members
    /// unbounded. A deterministic stand-in for a wall-clock deadline: no
    /// member can consume more than this many attempted steps per attempt.
    pub step_budget: Option<usize>,
    /// Factor the step budget grows by per relaxation retry, so a relaxed
    /// attempt is not starved by the budget that killed the original.
    pub budget_escalation: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            reroute: true,
            max_relaxations: 0,
            relax_factor: 10.0,
            rel_tol_cap: 1e-2,
            abs_tol_cap: 1e-6,
            step_budget: None,
            budget_escalation: 2,
        }
    }
}

impl RecoveryPolicy {
    /// The solver options a member's first attempt runs under: the job's
    /// own options, with the policy's step budget filled in when the job
    /// does not set one.
    pub(crate) fn base_options(&self, job: &SimulationJob) -> SolverOptions {
        let mut opts = job.options().clone();
        if opts.step_budget.is_none() {
            opts.step_budget = self.step_budget;
        }
        opts
    }
}

/// What the recovery ladder did for one member.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Solve attempts performed (1 = the primary attempt only).
    pub attempts: usize,
    /// Tolerance-relaxation retries performed.
    pub relaxations: usize,
    /// Whether the member was rerouted to the implicit fallback.
    pub rerouted: bool,
    /// Whether a retry (reroute or relaxation) produced the final success.
    pub recovered: bool,
    /// Whether any attempt panicked and was contained.
    pub panicked: bool,
}

/// A member's final result after containment and recovery.
#[derive(Debug)]
pub struct RecoveredSolve {
    /// The final solution or error.
    pub solution: Result<Solution, SolverError>,
    /// Work counters absorbed across **all** attempts, so engines bill
    /// retries on their modeled timelines.
    pub stats: StepStats,
    /// Name of the solver that produced the final result.
    pub solver: &'static str,
    /// What the ladder did.
    pub log: RecoveryLog,
}

/// Errors the relaxation rungs may retry: everything except a contained
/// panic (deterministic — it would just panic again) and malformed inputs
/// (tolerances are not the problem).
fn relax_eligible(e: &SolverError) -> bool {
    !matches!(e, SolverError::Internal { .. } | SolverError::InvalidInput { .. })
}

/// One solve attempt under panic containment: a panicking RHS (or solver
/// bug) becomes a [`SolverError::Internal`] failure for this member only.
///
/// The worker's [`SolverScratch`] is safe to reuse after a contained panic:
/// every solver rewrites its buffers through `ensure()` before reading
/// them, so no attempt observes a previous attempt's torn state.
pub(crate) fn contained_attempt(
    job: &SimulationJob,
    i: usize,
    solver: &dyn OdeSolver,
    options: &SolverOptions,
    scratch: &mut SolverScratch,
) -> Result<Solution, SolveFailure> {
    catch_unwind(AssertUnwindSafe(|| solve_member_pooled_opts(job, i, solver, options, scratch)))
        .unwrap_or_else(|payload| {
            Err(SolveFailure {
                error: SolverError::Internal { message: payload_message(payload.as_ref()) },
                stats: StepStats::default(),
            })
        })
}

/// Runs the full recovery ladder for member `i`: primary attempt, then
/// (per `policy`) one reroute to `fallback`, then tolerance-relaxation
/// retries with step-budget escalation.
pub(crate) fn solve_member_recovered(
    job: &SimulationJob,
    i: usize,
    primary: (&dyn OdeSolver, &'static str),
    fallback: Option<(&dyn OdeSolver, &'static str)>,
    reroutable: fn(&SolverError) -> bool,
    policy: &RecoveryPolicy,
    scratch: &mut SolverScratch,
) -> RecoveredSolve {
    let opts = policy.base_options(job);
    let first = contained_attempt(job, i, primary.0, &opts, scratch);
    continue_ladder(job, i, first, primary.1, primary, fallback, reroutable, policy, opts, scratch)
}

/// Continues the ladder after an already-performed first attempt.
///
/// Engines whose first attempt ran elsewhere (the lane-batched lockstep
/// solver) enter here with that attempt's outcome; `retry` is the solver
/// relaxation retries use when the member was not rerouted. The caller is
/// responsible for having billed the first attempt's work — `first`'s
/// stats are absorbed into the returned [`RecoveredSolve::stats`], so pass
/// them zeroed if they were already billed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn continue_ladder(
    job: &SimulationJob,
    i: usize,
    first: Result<Solution, SolveFailure>,
    first_name: &'static str,
    retry: (&dyn OdeSolver, &'static str),
    fallback: Option<(&dyn OdeSolver, &'static str)>,
    reroutable: fn(&SolverError) -> bool,
    policy: &RecoveryPolicy,
    mut opts: SolverOptions,
    scratch: &mut SolverScratch,
) -> RecoveredSolve {
    let mut log = RecoveryLog { attempts: 1, ..RecoveryLog::default() };
    let mut stats = StepStats::default();
    let mut solver_name = first_name;

    let (mut current, first_stats) = outcome_and_stats(first);
    stats.absorb(&first_stats);
    log.panicked |= matches!(current, Err(SolverError::Internal { .. }));

    // Rung 1: the historical explicit → implicit reroute.
    if policy.reroute {
        if let (Err(e), Some((fb, fb_name))) = (&current, fallback) {
            if reroutable(e) {
                log.attempts += 1;
                log.rerouted = true;
                solver_name = fb_name;
                let (r, s) = outcome_and_stats(contained_attempt(job, i, fb, &opts, scratch));
                stats.absorb(&s);
                log.panicked |= matches!(r, Err(SolverError::Internal { .. }));
                current = r;
            }
        }
    }

    // Rungs 2..: relax tolerances ×factor (capped) and escalate the step
    // budget, retrying the solver the member last ran on.
    while log.relaxations < policy.max_relaxations {
        let Err(e) = &current else { break };
        if !relax_eligible(e) {
            break;
        }
        let rel = (opts.rel_tol * policy.relax_factor).min(policy.rel_tol_cap).max(opts.rel_tol);
        let abs = (opts.abs_tol * policy.relax_factor).min(policy.abs_tol_cap).max(opts.abs_tol);
        let budget = opts.step_budget.map(|b| b.saturating_mul(policy.budget_escalation.max(1)));
        if rel == opts.rel_tol && abs == opts.abs_tol && budget == opts.step_budget {
            break; // caps reached — a retry would repeat the same failure
        }
        opts.rel_tol = rel;
        opts.abs_tol = abs;
        opts.step_budget = budget;
        log.relaxations += 1;
        log.attempts += 1;
        let (solver, name) =
            if log.rerouted { fallback.expect("rerouted implies fallback") } else { retry };
        solver_name = name;
        let (r, s) = outcome_and_stats(contained_attempt(job, i, solver, &opts, scratch));
        stats.absorb(&s);
        log.panicked |= matches!(r, Err(SolverError::Internal { .. }));
        current = r;
    }

    log.recovered = current.is_ok() && log.attempts > 1;
    RecoveredSolve { solution: current, stats, solver: solver_name, log }
}

/// Runs the recovery ladder for `members` on the executor's worker pool,
/// returning results **in `members` order**, or `Err(Cancelled)` if
/// `cancel` tripped before every member completed (in-flight members
/// drain; partial results are discarded).
///
/// Member-level containment inside [`solve_member_recovered`] normally
/// keeps panics from reaching the executor; `try_map_with_cancel`
/// backstops the remainder (a panic in the ladder itself), converting an
/// executor-level [`paraspace_exec::ItemPanic`] into an `Internal` outcome
/// for that member instead of resuming the unwind.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_members_recovered(
    executor: &Executor,
    job: &SimulationJob,
    members: &[usize],
    primary: (&dyn OdeSolver, &'static str),
    fallback: Option<(&dyn OdeSolver, &'static str)>,
    reroutable: fn(&SolverError) -> bool,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<Vec<RecoveredSolve>, Cancelled> {
    Ok(executor
        .try_map_with_cancel(members.len(), cancel, SolverScratch::new, |scratch, idx| {
            solve_member_recovered(
                job,
                members[idx],
                primary,
                fallback,
                reroutable,
                policy,
                scratch,
            )
        })?
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|fault| RecoveredSolve {
                solution: Err(SolverError::Internal { message: fault.message }),
                stats: StepStats::default(),
                solver: primary.1,
                log: RecoveryLog { attempts: 1, panicked: true, ..RecoveryLog::default() },
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};
    use paraspace_solvers::{FaultPlan, FaultSpec, Lsoda, Rkf45};

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        m
    }

    #[test]
    fn default_policy_is_the_historical_single_reroute() {
        let p = RecoveryPolicy::default();
        assert!(p.reroute);
        assert_eq!(p.max_relaxations, 0);
        assert_eq!(p.step_budget, None);
    }

    #[test]
    fn clean_member_solves_in_one_attempt() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let rkf = Rkf45::new();
        let mut scratch = SolverScratch::new();
        let rs = solve_member_recovered(
            &job,
            0,
            (&rkf, "rkf45"),
            None,
            |_| false,
            &RecoveryPolicy::default(),
            &mut scratch,
        );
        assert!(rs.solution.is_ok());
        assert_eq!(rs.solver, "rkf45");
        assert_eq!(rs.log, RecoveryLog { attempts: 1, ..RecoveryLog::default() });
    }

    #[test]
    fn injected_panic_is_contained_as_internal() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .replicate(1)
            .fault_plan(FaultPlan::new().with_fault(0, FaultSpec::panic_at_time(0.5)))
            .build()
            .unwrap();
        let lsoda = Lsoda::new();
        let mut scratch = SolverScratch::new();
        let rs = solve_member_recovered(
            &job,
            0,
            (&lsoda, "lsoda"),
            None,
            |_| false,
            &RecoveryPolicy::default(),
            &mut scratch,
        );
        let err = rs.solution.unwrap_err();
        assert!(matches!(&err, SolverError::Internal { message } if message.contains("chaos")));
        assert!(rs.log.panicked);
        // The scratch pool survives the contained panic and solves a clean
        // member afterwards.
        let clean = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let rs2 = solve_member_recovered(
            &clean,
            0,
            (&lsoda, "lsoda"),
            None,
            |_| false,
            &RecoveryPolicy::default(),
            &mut scratch,
        );
        assert!(rs2.solution.is_ok());
    }

    #[test]
    fn relaxation_recovers_a_member_that_fails_default_tolerances() {
        let m = model();
        // LSODA needs ~56 steps to t = 4 at the default tolerances and ~35
        // once they are relaxed 100×; a 40-step cap separates the two.
        let opts = SolverOptions { max_steps: 40, ..SolverOptions::default() };
        let job = SimulationJob::builder(&m)
            .time_points(vec![4.0])
            .replicate(1)
            .options(opts)
            .build()
            .unwrap();
        let lsoda = Lsoda::new();
        let mut scratch = SolverScratch::new();

        let strict = solve_member_recovered(
            &job,
            0,
            (&lsoda, "lsoda"),
            None,
            |_| false,
            &RecoveryPolicy::default(),
            &mut scratch,
        );
        assert!(strict.solution.is_err(), "member must fail at default tolerances");

        let policy = RecoveryPolicy { max_relaxations: 3, ..RecoveryPolicy::default() };
        let relaxed = solve_member_recovered(
            &job,
            0,
            (&lsoda, "lsoda"),
            None,
            |_| false,
            &policy,
            &mut scratch,
        );
        assert!(
            relaxed.solution.is_ok(),
            "relaxed tolerances must recover: {:?}",
            relaxed.solution
        );
        assert!(relaxed.log.recovered);
        assert!(relaxed.log.relaxations >= 1);
        assert!(
            relaxed.stats.steps > strict.stats.steps,
            "retries must be billed on top of the failed attempt"
        );
    }

    #[test]
    fn relaxation_never_retries_a_contained_panic() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .replicate(1)
            .fault_plan(FaultPlan::new().with_fault(0, FaultSpec::panic_at_time(0.1)))
            .build()
            .unwrap();
        let lsoda = Lsoda::new();
        let mut scratch = SolverScratch::new();
        let policy = RecoveryPolicy { max_relaxations: 5, ..RecoveryPolicy::default() };
        let rs = solve_member_recovered(
            &job,
            0,
            (&lsoda, "lsoda"),
            None,
            |_| false,
            &policy,
            &mut scratch,
        );
        assert!(matches!(rs.solution, Err(SolverError::Internal { .. })));
        assert_eq!(rs.log.attempts, 1, "a deterministic panic must not be retried");
        assert_eq!(rs.log.relaxations, 0);
    }

    #[test]
    fn ladder_is_deterministic_across_repeats() {
        let m = model();
        let opts = SolverOptions { max_steps: 40, ..SolverOptions::default() };
        let job = SimulationJob::builder(&m)
            .time_points(vec![4.0])
            .replicate(1)
            .options(opts)
            .build()
            .unwrap();
        let lsoda = Lsoda::new();
        let policy = RecoveryPolicy { max_relaxations: 2, ..RecoveryPolicy::default() };
        let mut s1 = SolverScratch::new();
        let mut s2 = SolverScratch::new();
        let a =
            solve_member_recovered(&job, 0, (&lsoda, "lsoda"), None, |_| false, &policy, &mut s1);
        let b =
            solve_member_recovered(&job, 0, (&lsoda, "lsoda"), None, |_| false, &policy, &mut s2);
        assert_eq!(a.log, b.log);
        assert_eq!(a.solution.as_ref().unwrap().states, b.solution.as_ref().unwrap().states);
        assert_eq!(a.stats, b.stats);
    }
}
