//! Engine-level error type.

use paraspace_rbm::RbmError;
use paraspace_solvers::SolverError;
use std::error::Error;
use std::fmt;

/// Failures reported by the batch engines.
///
/// Per-simulation solver failures are *not* errors at this level — they are
/// recorded in [`crate::SimOutcome`] so one divergent parameterization does
/// not sink a 2048-member batch. `SimError` covers job-level problems.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The model failed validation or compilation.
    Model(RbmError),
    /// A job-level input was malformed (e.g. empty batch, bad tolerances).
    InvalidJob {
        /// Description of the problem.
        message: String,
    },
    /// A solver failure at a stage with no fallback (used by engines that
    /// must produce a single reference trajectory).
    Solver(SolverError),
    /// The batch was cooperatively cancelled before completion (SIGINT,
    /// checkpoint shutdown); partial results were discarded. Because
    /// batches are deterministic and idempotent, the caller can simply
    /// re-run the batch later — durable campaign drivers re-execute
    /// uncommitted shards on resume.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::InvalidJob { message } => write!(f, "invalid job: {message}"),
            SimError::Solver(e) => write!(f, "solver error: {e}"),
            SimError::Cancelled => write!(f, "batch cancelled before completion"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Solver(e) => Some(e),
            SimError::InvalidJob { .. } | SimError::Cancelled => None,
        }
    }
}

impl From<paraspace_exec::Cancelled> for SimError {
    fn from(_: paraspace_exec::Cancelled) -> Self {
        SimError::Cancelled
    }
}

impl From<RbmError> for SimError {
    fn from(e: RbmError) -> Self {
        SimError::Model(e)
    }
}

impl From<SolverError> for SimError {
    fn from(e: SolverError) -> Self {
        SimError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: SimError = RbmError::EmptyModel.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("model error"));
        let e: SimError = SolverError::StepSizeUnderflow { t: 1.0 }.into();
        assert!(e.to_string().contains("solver error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
