//! The coarse-grained-only engine (cupSODA-class baseline).
//!
//! One device thread runs one complete LSODA integration; no fine-grained
//! parallelism and no dynamic parallelism. Its strength is the memory
//! hierarchy: when the flat ODE encoding fits in **constant memory** and
//! the per-simulation state fits in **shared memory**, small models enjoy
//! on-chip latencies — which is why the published comparison maps give
//! small-model/many-simulation cells to this engine. Large models overflow
//! to global memory (and eventually do not fit at all), which is why it
//! disappears from the large-model cells.

use crate::engines::{
    output_bytes, BatchHealth, BatchResult, BatchTiming, SimOutcome, Simulator, IO_BYTES_PER_NS,
};
use crate::recovery::{solve_members_recovered, RecoveryPolicy};
use crate::{SimError, SimulationJob, WorkEstimate};
use paraspace_exec::{CancelToken, Executor};
use paraspace_solvers::{Lsoda, OdeSolver};
use paraspace_vgpu::{Device, DeviceConfig, KernelLaunch, MemorySpace, ThreadWork};
use std::time::Instant;

/// Constant-memory capacity (bytes) — CUDA's fixed 64 KiB.
const CONSTANT_MEM_BYTES: u64 = 64 * 1024;
/// Per-state-variable shared-memory footprint (the current state vector).
const SHARED_BYTES_PER_SPECIES: usize = 8;
/// Host↔device transfer throughput in bytes/ns.
const PCIE_BYTES_PER_NS: f64 = 8.0;

/// The coarse-only engine.
///
/// # Example
///
/// ```
/// use paraspace_core::{CoarseEngine, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(16).build()?;
/// let r = CoarseEngine::new().run(&job)?;
/// assert_eq!(r.success_count(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoarseEngine {
    device_config: DeviceConfig,
    threads_per_block: usize,
    /// When `false`, forces all traffic to global memory (ablation A4).
    use_memory_hierarchy: bool,
    executor: Executor,
    recovery: RecoveryPolicy,
    cancel: CancelToken,
}

impl Default for CoarseEngine {
    fn default() -> Self {
        CoarseEngine::new()
    }
}

impl CoarseEngine {
    /// An engine on the published GPU.
    pub fn new() -> Self {
        CoarseEngine {
            device_config: DeviceConfig::titan_x(),
            threads_per_block: 32,
            use_memory_hierarchy: true,
            executor: Executor::sequential(),
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::new(),
        }
    }

    /// Sets the host worker-thread count used to run the batch numerics
    /// (builder style): `1` is the sequential path, `0` means one worker
    /// per available core. The result is bitwise identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = Executor::new(threads);
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }

    /// Overrides the failed-member recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a cooperative cancellation token (builder style). When the
    /// token trips mid-batch, in-flight members drain, [`Simulator::run`]
    /// returns [`SimError::Cancelled`], and partial results are discarded.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Disables constant/shared-memory placement (everything global) —
    /// the memory-hierarchy ablation.
    pub fn without_memory_hierarchy(mut self) -> Self {
        self.use_memory_hierarchy = false;
        self
    }

    /// Whether the model's encoding fits the constant-memory budget.
    pub fn constants_fit(&self, job: &SimulationJob) -> bool {
        let encoding_bytes = job.odes().n_terms() as u64 * 12 + job.odes().n_reactions() as u64 * 8;
        encoding_bytes <= CONSTANT_MEM_BYTES
    }

    /// Whether per-simulation state fits the shared-memory budget at the
    /// configured block size.
    pub fn shared_fits(&self, job: &SimulationJob) -> bool {
        let per_block = self.threads_per_block * job.odes().n_species() * SHARED_BYTES_PER_SPECIES;
        per_block <= self.device_config.shared_mem_per_sm / 2
    }
}

impl Simulator for CoarseEngine {
    fn name(&self) -> &'static str {
        "coarse"
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let device = Device::new(self.device_config.clone());
        let n = job.odes().n_species();
        let m = job.odes().n_reactions();
        let batch = job.batch_size();
        let solver = Lsoda::new();

        let h2d_bytes =
            (job.odes().n_terms() as u64 * 12 + m as u64 * 8) + batch as u64 * (n + m) as u64 * 8;
        device.record_host_phase("io::h2d", h2d_bytes as f64 / PCIE_BYTES_PER_NS);

        let constants_in_cmem = self.use_memory_hierarchy && self.constants_fit(job);
        let state_in_shared = self.use_memory_hierarchy && self.shared_fits(job);

        let mut outcomes = Vec::with_capacity(batch);
        let mut thread_work = Vec::with_capacity(batch);
        let mut health = BatchHealth::default();
        // Solves run on the worker pool; the per-member memory placement and
        // work accounting below folds in member order on this thread. Each
        // member runs under panic containment and the recovery ladder; a
        // retry's steps land in the same device thread's work, so retries
        // are billed inside the coarse kernel.
        let members: Vec<usize> = (0..batch).collect();
        let results = solve_members_recovered(
            &self.executor,
            job,
            &members,
            (&solver, solver.name()),
            None,
            |_| false,
            &self.recovery,
            &self.cancel,
        )?;
        for rs in results {
            let (solution, stats) = (rs.solution, rs.stats);
            health.observe(&solution, &rs.log);
            let work = WorkEstimate::from_stats(job.odes(), &stats, job.time_points().len());
            // The state vector's share of state traffic can live in shared
            // memory; Nordsieck history and scratch stay global.
            let state_vector_bytes = stats.rhs_evals as u64 * n as u64 * 8;
            let shared_bytes =
                if state_in_shared { state_vector_bytes.min(work.state_bytes) } else { 0 };
            let spill_state = work.state_bytes - shared_bytes;
            // With the hierarchy enabled, overflow traffic still enjoys the
            // L2; the ablation strips every on-chip level at once.
            let structure_space = if constants_in_cmem {
                MemorySpace::Constant
            } else if self.use_memory_hierarchy {
                MemorySpace::CachedGlobal
            } else {
                MemorySpace::Global
            };
            let state_space = if self.use_memory_hierarchy {
                MemorySpace::CachedGlobal
            } else {
                MemorySpace::Global
            };
            thread_work.push(
                ThreadWork::new()
                    .with_flops(work.flops)
                    .with_read(structure_space, work.structure_bytes)
                    .with_read(MemorySpace::Shared, shared_bytes)
                    .with_read(state_space, spill_state)
                    .with_global_write(work.output_bytes),
            );
            outcomes.push(SimOutcome {
                solution,
                stiff: false,
                rerouted: false,
                solver: rs.solver,
                log: rs.log,
            });
        }

        let tpb = self.threads_per_block;
        let blocks = batch.div_ceil(tpb);
        thread_work.resize(blocks * tpb, ThreadWork::new());
        let shared_per_block = if state_in_shared { tpb * n * SHARED_BYTES_PER_SPECIES } else { 0 };
        device.launch(
            &KernelLaunch::per_thread("integrate::coarse_lsoda", blocks, tpb, thread_work)
                .with_registers(48)
                .with_shared_mem(shared_per_block),
        );
        // cupSODA re-launches the kernel once per sampling interval.
        device.record_host_phase(
            "integrate::interval_launches",
            (job.time_points().len().saturating_sub(1)) as f64
                * self.device_config.kernel_launch_ns,
        );

        let out_bytes = output_bytes(job, &outcomes);
        device.record_host_phase("io::d2h", out_bytes as f64 / PCIE_BYTES_PER_NS);
        device.record_host_phase("io::write", out_bytes as f64 / IO_BYTES_PER_NS);

        let timeline = device.timeline();
        Ok(BatchResult {
            engine: self.name(),
            outcomes,
            timing: BatchTiming {
                host_wall: start.elapsed(),
                simulated_total_ns: timeline.total_ns(),
                simulated_integration_ns: timeline.time_tagged_ns("integrate"),
                simulated_io_ns: timeline.time_tagged_ns("io"),
            },
            lanes: None,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FineCoarseEngine;
    use paraspace_rbm::sbgen::SbGen;
    use paraspace_rbm::{perturbed_batch, Reaction, ReactionBasedModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        m
    }

    #[test]
    fn small_model_uses_on_chip_memory() {
        let m = tiny_model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build().unwrap();
        let e = CoarseEngine::new();
        assert!(e.constants_fit(&job));
        assert!(e.shared_fits(&job));
        let r = e.run(&job).unwrap();
        assert_eq!(r.success_count(), 8);
    }

    #[test]
    fn large_model_overflows_constant_memory() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = SbGen::new(400, 2200).generate(&mut rng);
        let job = SimulationJob::builder(&m).time_points(vec![0.01]).replicate(1).build().unwrap();
        let e = CoarseEngine::new();
        assert!(!e.constants_fit(&job), "2200-reaction encoding must exceed 64 KiB");
        assert!(!e.shared_fits(&job), "400-species state × 32 threads must exceed shared memory");
    }

    #[test]
    fn memory_hierarchy_ablation_slows_small_models() {
        let m = tiny_model();
        let mut rng = StdRng::seed_from_u64(4);
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0, 2.0])
            .parameterizations(perturbed_batch(&m, 128, &mut rng))
            .build()
            .unwrap();
        let with_mem = CoarseEngine::new().run(&job).unwrap();
        let without = CoarseEngine::new().without_memory_hierarchy().run(&job).unwrap();
        assert!(
            without.timing.simulated_integration_ns > with_mem.timing.simulated_integration_ns,
            "global-only ({}) must be slower than constant/shared ({})",
            without.timing.simulated_integration_ns,
            with_mem.timing.simulated_integration_ns
        );
    }

    #[test]
    fn trajectories_agree_with_fine_coarse_engine() {
        let m = tiny_model();
        let job =
            SimulationJob::builder(&m).time_points(vec![0.5, 1.0]).replicate(2).build().unwrap();
        let a = CoarseEngine::new().run(&job).unwrap();
        let b = FineCoarseEngine::new().run(&job).unwrap();
        let sa = a.outcomes[0].solution.as_ref().unwrap();
        let sb = b.outcomes[0].solution.as_ref().unwrap();
        for (x, y) in sa.state_at(1).iter().zip(sb.state_at(1)) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn interval_launch_overhead_scales_with_samples() {
        let m = tiny_model();
        let few = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(4).build().unwrap();
        let many = SimulationJob::builder(&m)
            .time_points((1..=200).map(|i| i as f64 * 0.01).collect())
            .replicate(4)
            .build()
            .unwrap();
        let rf = CoarseEngine::new().run(&few).unwrap();
        let rm = CoarseEngine::new().run(&many).unwrap();
        assert!(rm.timing.simulated_total_ns > rf.timing.simulated_total_ns);
    }
}
