//! The sequential CPU baselines (LSODA / VODE).

use crate::engines::{
    output_bytes, BatchHealth, BatchResult, BatchTiming, SimOutcome, Simulator, IO_BYTES_PER_NS,
};
use crate::recovery::{solve_members_recovered, RecoveryPolicy};
use crate::{CpuCostModel, SimError, SimulationJob, WorkEstimate};
use paraspace_exec::{CancelToken, Executor};
use paraspace_solvers::{Lsoda, OdeSolver, Vode};
use std::time::Instant;

/// Which multistep CPU solver the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuSolverKind {
    /// Dynamic Adams↔BDF switching (the "LSODA" column of the tables).
    Lsoda,
    /// Up-front method selection (the "VODE" column).
    Vode,
}

/// The CPU baseline engine: one simulation after another on a single core,
/// priced on the published workstation's CPU model.
///
/// # Example
///
/// ```
/// use paraspace_core::{CpuEngine, CpuSolverKind, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(2).build()?;
/// let r = CpuEngine::new(CpuSolverKind::Lsoda).run(&job)?;
/// assert_eq!(r.success_count(), 2);
/// assert!(r.timing.simulated_integration_ns > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CpuEngine {
    kind: CpuSolverKind,
    cost_model: CpuCostModel,
    executor: Executor,
    recovery: RecoveryPolicy,
    cancel: CancelToken,
}

impl CpuEngine {
    /// An engine with the published workstation's cost model.
    pub fn new(kind: CpuSolverKind) -> Self {
        CpuEngine {
            kind,
            cost_model: CpuCostModel::default(),
            executor: Executor::sequential(),
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::new(),
        }
    }

    /// Sets the host worker-thread count used to run the batch numerics
    /// (builder style): `1` is the sequential path, `0` means one worker
    /// per available core. The result is bitwise identical at any setting.
    /// (The *modeled* CPU stays single-core — this only accelerates the
    /// host-side reproduction of its numerics.)
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = Executor::new(threads);
        self
    }

    /// Overrides the CPU cost model (builder style).
    pub fn with_cost_model(mut self, cost_model: CpuCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Overrides the failed-member recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a cooperative cancellation token (builder style). When the
    /// token trips mid-batch, in-flight members drain, [`Simulator::run`]
    /// returns [`SimError::Cancelled`], and partial results are discarded
    /// — re-running the batch later reproduces it bitwise.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The solver family in use.
    pub fn kind(&self) -> CpuSolverKind {
        self.kind
    }
}

impl Simulator for CpuEngine {
    fn name(&self) -> &'static str {
        match self.kind {
            CpuSolverKind::Lsoda => "lsoda-cpu",
            CpuSolverKind::Vode => "vode-cpu",
        }
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let lsoda = Lsoda::new();
        let vode = Vode::new();
        let solver: &dyn OdeSolver = match self.kind {
            CpuSolverKind::Lsoda => &lsoda,
            CpuSolverKind::Vode => &vode,
        };

        let mut outcomes = Vec::with_capacity(job.batch_size());
        let mut work = WorkEstimate::default();
        let mut health = BatchHealth::default();
        // Solves run on the worker pool; the f64 work accumulation folds in
        // member order on this thread, keeping totals bitwise stable. Each
        // member runs under panic containment and the recovery ladder (the
        // CPU baseline has no implicit fallback to reroute to, so only the
        // relaxation rungs apply).
        let members: Vec<usize> = (0..job.batch_size()).collect();
        for rs in solve_members_recovered(
            &self.executor,
            job,
            &members,
            (solver, solver.name()),
            None,
            |_| false,
            &self.recovery,
            &self.cancel,
        )? {
            work.absorb(&WorkEstimate::from_stats(job.odes(), &rs.stats, job.time_points().len()));
            health.observe(&rs.solution, &rs.log);
            outcomes.push(SimOutcome {
                solution: rs.solution,
                stiff: false,
                rerouted: false,
                solver: rs.solver,
                log: rs.log,
            });
        }

        let integration_ns = self.cost_model.time_ns(&work)
            + job.batch_size() as f64 * self.cost_model.per_sim_overhead_ns;
        let io_ns = output_bytes(job, &outcomes) as f64 / IO_BYTES_PER_NS;
        Ok(BatchResult {
            engine: self.name(),
            outcomes,
            timing: BatchTiming {
                host_wall: start.elapsed(),
                simulated_total_ns: integration_ns + io_ns,
                simulated_integration_ns: integration_ns,
                simulated_io_ns: io_ns,
            },
            lanes: None,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{perturbed_batch, Reaction, ReactionBasedModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.1);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 0.8)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.3)).unwrap();
        m
    }

    #[test]
    fn batch_runs_and_times_scale_with_size() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let small = SimulationJob::builder(&m)
            .time_points(vec![1.0, 2.0])
            .parameterizations(perturbed_batch(&m, 2, &mut rng))
            .build()
            .unwrap();
        let large = SimulationJob::builder(&m)
            .time_points(vec![1.0, 2.0])
            .parameterizations(perturbed_batch(&m, 32, &mut rng))
            .build()
            .unwrap();
        let engine = CpuEngine::new(CpuSolverKind::Lsoda);
        let rs = engine.run(&small).unwrap();
        let rl = engine.run(&large).unwrap();
        assert_eq!(rs.success_count(), 2);
        assert_eq!(rl.success_count(), 32);
        // Sequential CPU: simulated time grows roughly linearly.
        assert!(
            rl.timing.simulated_total_ns > 8.0 * rs.timing.simulated_total_ns,
            "{} vs {}",
            rl.timing.simulated_total_ns,
            rs.timing.simulated_total_ns
        );
    }

    #[test]
    fn vode_and_lsoda_agree_on_trajectories() {
        let m = model();
        let job =
            SimulationJob::builder(&m).time_points(vec![0.5, 1.5]).replicate(1).build().unwrap();
        let a = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        let b = CpuEngine::new(CpuSolverKind::Vode).run(&job).unwrap();
        let sa = a.outcomes[0].solution.as_ref().unwrap();
        let sb = b.outcomes[0].solution.as_ref().unwrap();
        for (x, y) in sa.state_at(1).iter().zip(sb.state_at(1)) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn io_time_is_separated_from_integration() {
        let m = model();
        let times: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        let job = SimulationJob::builder(&m).time_points(times).replicate(4).build().unwrap();
        let r = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        assert!(r.timing.simulated_io_ns > 0.0);
        assert!(
            (r.timing.simulated_total_ns
                - r.timing.simulated_integration_ns
                - r.timing.simulated_io_ns)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn divergent_member_does_not_sink_batch() {
        // Member 2 has an explosive parameterization (finite-time blowup is
        // impossible in mass action with ≤2 products, so use a huge rate
        // that exhausts the step budget instead).
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 1.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(a, 2)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[], 1.0)).unwrap();
        let job = SimulationJob::builder(&m)
            .time_points(vec![50.0])
            .parameterization(
                paraspace_rbm::Parameterization::new().with_rate_constants(vec![30.0, 1.0]),
            )
            .parameterization(
                paraspace_rbm::Parameterization::new().with_rate_constants(vec![0.1, 1.0]),
            )
            .build()
            .unwrap();
        let r = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        // The exploding member overflows; the tame one succeeds.
        assert!(r.outcomes[0].solution.is_err(), "exponential blow-up should fail");
        assert!(r.outcomes[1].solution.is_ok());
    }

    #[test]
    fn aggregate_stats_sum_members() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(3).build().unwrap();
        let r = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        let agg = r.aggregate_stats();
        let per: usize = r.solutions().map(|s| s.stats.rhs_evals).sum();
        assert_eq!(agg.rhs_evals, per);
        assert!(agg.steps > 0);
    }
}
