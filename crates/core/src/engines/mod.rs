//! The simulation engines and their shared result types.

mod auto;
mod coarse;
mod cpu;
mod fine;
mod fine_coarse;

pub use auto::AutoEngine;
pub use coarse::CoarseEngine;
pub use cpu::{CpuEngine, CpuSolverKind};
pub use fine::FineEngine;
pub use fine_coarse::FineCoarseEngine;

use crate::recovery::RecoveryLog;
use crate::{SimError, SimulationJob};
use paraspace_solvers::{
    ChaosSystem, Solution, SolveFailure, SolverError, SolverOptions, SolverScratch, StepStats,
};
use paraspace_vgpu::LaneAccounting;
use std::fmt;
use std::time::Duration;

/// Host-side I/O throughput used to price output serialization (bytes/ns);
/// ~500 MB/s, a mid-range value for the formatted-text dynamics files the
/// original tool writes.
pub(crate) const IO_BYTES_PER_NS: f64 = 0.5;

/// A batch simulation engine.
///
/// All engines produce bit-identical trajectories for the same job (they
/// share the solver implementations); they differ in *how the work is
/// scheduled on their modeled hardware*, which is what the timing fields
/// of [`BatchResult`] expose.
pub trait Simulator {
    /// Engine name as used in the published comparison maps.
    fn name(&self) -> &'static str;

    /// Runs the whole batch.
    ///
    /// # Errors
    ///
    /// Job-level failures only ([`SimError`]); per-simulation solver
    /// failures are recorded in the corresponding [`SimOutcome`].
    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError>;
}

/// Outcome of one batch member.
#[derive(Debug)]
pub struct SimOutcome {
    /// The sampled trajectory, or the solver failure.
    pub solution: Result<Solution, SolverError>,
    /// Phase-P2 classification (where the engine performs one).
    pub stiff: bool,
    /// Whether the member failed on the explicit path and was re-routed to
    /// the implicit solver (phase P3 → P4).
    pub rerouted: bool,
    /// Name of the solver that produced the final result.
    pub solver: &'static str,
    /// What the recovery ladder did for this member (attempt count,
    /// reroutes, tolerance relaxations, contained panics) — the per-member
    /// record post-mortems need without a rerun.
    pub log: RecoveryLog,
}

/// The two clocks and their integration/I-O split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchTiming {
    /// Real wall time spent by this process executing the batch.
    pub host_wall: Duration,
    /// Modeled time on the engine's hardware: everything (the published
    /// "simulation time").
    pub simulated_total_ns: f64,
    /// Modeled time of the numerical integration only (the published
    /// "integration time").
    pub simulated_integration_ns: f64,
    /// Modeled time of input staging and output writing.
    pub simulated_io_ns: f64,
}

/// Failed members counted by [`SolverError`] variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCounts {
    /// [`SolverError::MaxStepsExceeded`] failures.
    pub max_steps_exceeded: usize,
    /// [`SolverError::StepSizeUnderflow`] failures.
    pub step_size_underflow: usize,
    /// [`SolverError::NonlinearSolveFailed`] failures.
    pub nonlinear_solve_failed: usize,
    /// [`SolverError::SingularIterationMatrix`] failures.
    pub singular_iteration_matrix: usize,
    /// [`SolverError::NonFiniteState`] failures.
    pub non_finite_state: usize,
    /// [`SolverError::StiffnessDetected`] failures (terminal, i.e. not
    /// cured by a reroute).
    pub stiffness_detected: usize,
    /// [`SolverError::StepBudgetExhausted`] failures.
    pub step_budget_exhausted: usize,
    /// [`SolverError::InvalidInput`] failures.
    pub invalid_input: usize,
    /// [`SolverError::Internal`] failures (contained panics).
    pub internal: usize,
    /// Failures of variants this build does not know by name.
    pub other: usize,
}

/// The short taxonomy label used for a [`SolverError`] in health lines,
/// failure tallies, and CLI `.err` post-mortems — the same vocabulary
/// [`BatchHealth`]'s `Display` prints, so logs and aggregates correlate.
#[must_use]
pub fn taxonomy(e: &SolverError) -> &'static str {
    match e {
        SolverError::MaxStepsExceeded { .. } => "max-steps",
        SolverError::StepSizeUnderflow { .. } => "underflow",
        SolverError::NonlinearSolveFailed { .. } => "nonlinear",
        SolverError::SingularIterationMatrix { .. } => "singular",
        SolverError::NonFiniteState { .. } => "non-finite",
        SolverError::StiffnessDetected { .. } => "stiff",
        SolverError::StepBudgetExhausted { .. } => "budget",
        SolverError::InvalidInput { .. } => "invalid",
        SolverError::Internal { .. } => "internal",
        _ => "other",
    }
}

impl FailureCounts {
    fn record(&mut self, e: &SolverError) {
        match e {
            SolverError::MaxStepsExceeded { .. } => self.max_steps_exceeded += 1,
            SolverError::StepSizeUnderflow { .. } => self.step_size_underflow += 1,
            SolverError::NonlinearSolveFailed { .. } => self.nonlinear_solve_failed += 1,
            SolverError::SingularIterationMatrix { .. } => self.singular_iteration_matrix += 1,
            SolverError::NonFiniteState { .. } => self.non_finite_state += 1,
            SolverError::StiffnessDetected { .. } => self.stiffness_detected += 1,
            SolverError::StepBudgetExhausted { .. } => self.step_budget_exhausted += 1,
            SolverError::InvalidInput { .. } => self.invalid_input += 1,
            SolverError::Internal { .. } => self.internal += 1,
            _ => self.other += 1,
        }
    }

    fn absorb(&mut self, other: &FailureCounts) {
        self.max_steps_exceeded += other.max_steps_exceeded;
        self.step_size_underflow += other.step_size_underflow;
        self.nonlinear_solve_failed += other.nonlinear_solve_failed;
        self.singular_iteration_matrix += other.singular_iteration_matrix;
        self.non_finite_state += other.non_finite_state;
        self.stiffness_detected += other.stiffness_detected;
        self.step_budget_exhausted += other.step_budget_exhausted;
        self.invalid_input += other.invalid_input;
        self.internal += other.internal;
        self.other += other.other;
    }

    /// Total failed members.
    pub fn total(&self) -> usize {
        self.max_steps_exceeded
            + self.step_size_underflow
            + self.nonlinear_solve_failed
            + self.singular_iteration_matrix
            + self.non_finite_state
            + self.stiffness_detected
            + self.step_budget_exhausted
            + self.invalid_input
            + self.internal
            + self.other
    }
}

/// Aggregate fault/recovery accounting for one batch run.
///
/// Built on the calling thread in member-index order from per-member
/// recovery logs, so it is bitwise identical at any worker-thread count
/// and lane width — chaos tests assert equality on the whole struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchHealth {
    /// Batch members observed.
    pub members: usize,
    /// Members whose final outcome is a trajectory.
    pub succeeded: usize,
    /// Terminal failures by taxonomy.
    pub failed: FailureCounts,
    /// Total retry attempts beyond each member's first (reroutes and
    /// relaxations both count).
    pub retries_attempted: usize,
    /// Members whose final success came from a retry.
    pub retries_succeeded: usize,
    /// Members rerouted from the explicit to the implicit solver.
    pub reroutes: usize,
    /// Tolerance-relaxation retries performed across the batch.
    pub relaxations: usize,
    /// Fault-planned members evicted from lockstep lane groups and solved
    /// scalar (lane path only).
    pub evicted_lanes: usize,
    /// Panics contained to a single member's outcome.
    pub panics_contained: usize,
}

impl BatchHealth {
    /// Folds one member's final solution and recovery log into the tally.
    pub(crate) fn observe(&mut self, solution: &Result<Solution, SolverError>, log: &RecoveryLog) {
        self.members += 1;
        match solution {
            Ok(_) => self.succeeded += 1,
            Err(e) => self.failed.record(e),
        }
        self.retries_attempted += log.attempts.saturating_sub(1);
        if log.recovered {
            self.retries_succeeded += 1;
        }
        if log.rerouted {
            self.reroutes += 1;
        }
        self.relaxations += log.relaxations;
        if log.panicked {
            self.panics_contained += 1;
        }
    }

    /// Folds a partial tally (one lane-group's health) into this one.
    pub(crate) fn absorb(&mut self, other: &BatchHealth) {
        self.members += other.members;
        self.succeeded += other.succeeded;
        self.failed.absorb(&other.failed);
        self.retries_attempted += other.retries_attempted;
        self.retries_succeeded += other.retries_succeeded;
        self.reroutes += other.reroutes;
        self.relaxations += other.relaxations;
        self.evicted_lanes += other.evicted_lanes;
        self.panics_contained += other.panics_contained;
    }
}

impl fmt::Display for BatchHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ok", self.succeeded, self.members)?;
        let fc = &self.failed;
        if fc.total() > 0 {
            let mut parts = Vec::new();
            for (count, label) in [
                (fc.max_steps_exceeded, "max-steps"),
                (fc.step_size_underflow, "underflow"),
                (fc.nonlinear_solve_failed, "nonlinear"),
                (fc.singular_iteration_matrix, "singular"),
                (fc.non_finite_state, "non-finite"),
                (fc.stiffness_detected, "stiff"),
                (fc.step_budget_exhausted, "budget"),
                (fc.invalid_input, "invalid"),
                (fc.internal, "internal"),
                (fc.other, "other"),
            ] {
                if count > 0 {
                    parts.push(format!("{count} {label}"));
                }
            }
            write!(f, ", {} failed ({})", fc.total(), parts.join(", "))?;
        }
        if self.retries_attempted > 0 {
            write!(f, "; retries {}/{} recovered", self.retries_succeeded, self.retries_attempted)?;
        }
        if self.reroutes > 0 {
            write!(f, "; {} rerouted", self.reroutes)?;
        }
        if self.relaxations > 0 {
            write!(f, "; {} relaxations", self.relaxations)?;
        }
        if self.evicted_lanes > 0 {
            write!(f, "; {} lane evictions", self.evicted_lanes)?;
        }
        if self.panics_contained > 0 {
            write!(f, "; {} panics contained", self.panics_contained)?;
        }
        Ok(())
    }
}

/// The result of running a batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Engine that produced this result.
    pub engine: &'static str,
    /// One outcome per batch member, in order.
    pub outcomes: Vec<SimOutcome>,
    /// Timing on both clocks.
    pub timing: BatchTiming,
    /// Lane occupancy/divergence accounting, for engines that ran the
    /// lane-batched lockstep path (`None` for scalar execution).
    pub lanes: Option<LaneAccounting>,
    /// Fault and recovery accounting for the whole batch.
    pub health: BatchHealth,
}

impl BatchResult {
    /// Number of members that produced a trajectory.
    pub fn success_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.solution.is_ok()).count()
    }

    /// Iterates over the successful trajectories.
    pub fn solutions(&self) -> impl Iterator<Item = &Solution> {
        self.outcomes.iter().filter_map(|o| o.solution.as_ref().ok())
    }

    /// Aggregated solver counters across the batch.
    pub fn aggregate_stats(&self) -> StepStats {
        let mut total = StepStats::default();
        for o in &self.outcomes {
            if let Ok(s) = &o.solution {
                total.absorb(&s.stats);
            }
        }
        total
    }
}

/// Runs `solver` on member `i` of `job` under the given solver options,
/// drawing working storage from a worker-owned scratch pool (shared by all
/// engines). Explicit options let retry ladders relax tolerances or
/// escalate step budgets per attempt.
///
/// If the job's fault plan targets member `i`, its RHS is wrapped in a
/// [`ChaosSystem`] — each attempt gets a fresh wrapper, so a retried member
/// deterministically re-experiences its injected faults.
pub(crate) fn solve_member_pooled_opts(
    job: &SimulationJob,
    i: usize,
    solver: &dyn paraspace_solvers::OdeSolver,
    options: &SolverOptions,
    scratch: &mut SolverScratch,
) -> Result<Solution, SolveFailure> {
    let (x0, k) = job.member(i);
    let sys = crate::RbmOdeSystem::new(job.odes(), k.to_vec());
    match job.fault_plan().faults_for(i) {
        Some(faults) => {
            let sys = ChaosSystem::new(sys, faults.to_vec());
            solver.solve_pooled(&sys, 0.0, x0, job.time_points(), options, scratch)
        }
        None => solver.solve_pooled(&sys, 0.0, x0, job.time_points(), options, scratch),
    }
}

/// Splits a member result into the caller-facing outcome and the work the
/// run consumed on the engine's hardware — failed members are billed for
/// the steps they actually burned before giving up.
pub(crate) fn outcome_and_stats(
    result: Result<Solution, SolveFailure>,
) -> (Result<Solution, SolverError>, StepStats) {
    match result {
        Ok(sol) => {
            let stats = sol.stats;
            (Ok(sol), stats)
        }
        Err(failure) => (Err(failure.error), failure.stats),
    }
}

/// Serializes all successful outputs, returning total bytes (the P5 cost
/// driver).
pub(crate) fn output_bytes(job: &SimulationJob, outcomes: &[SimOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|o| o.solution.as_ref().ok())
        .map(|s| job.serialize_dynamics(s).len() as u64)
        .sum()
}
