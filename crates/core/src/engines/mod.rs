//! The simulation engines and their shared result types.

mod auto;
mod coarse;
mod cpu;
mod fine;
mod fine_coarse;

pub use auto::AutoEngine;
pub use coarse::CoarseEngine;
pub use cpu::{CpuEngine, CpuSolverKind};
pub use fine::FineEngine;
pub use fine_coarse::FineCoarseEngine;

use crate::{SimError, SimulationJob};
use paraspace_exec::Executor;
use paraspace_solvers::{Solution, SolveFailure, SolverError, SolverScratch, StepStats};
use paraspace_vgpu::LaneAccounting;
use std::time::Duration;

/// Host-side I/O throughput used to price output serialization (bytes/ns);
/// ~500 MB/s, a mid-range value for the formatted-text dynamics files the
/// original tool writes.
pub(crate) const IO_BYTES_PER_NS: f64 = 0.5;

/// A batch simulation engine.
///
/// All engines produce bit-identical trajectories for the same job (they
/// share the solver implementations); they differ in *how the work is
/// scheduled on their modeled hardware*, which is what the timing fields
/// of [`BatchResult`] expose.
pub trait Simulator {
    /// Engine name as used in the published comparison maps.
    fn name(&self) -> &'static str;

    /// Runs the whole batch.
    ///
    /// # Errors
    ///
    /// Job-level failures only ([`SimError`]); per-simulation solver
    /// failures are recorded in the corresponding [`SimOutcome`].
    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError>;
}

/// Outcome of one batch member.
#[derive(Debug)]
pub struct SimOutcome {
    /// The sampled trajectory, or the solver failure.
    pub solution: Result<Solution, SolverError>,
    /// Phase-P2 classification (where the engine performs one).
    pub stiff: bool,
    /// Whether the member failed on the explicit path and was re-routed to
    /// the implicit solver (phase P3 → P4).
    pub rerouted: bool,
    /// Name of the solver that produced the final result.
    pub solver: &'static str,
}

/// The two clocks and their integration/I-O split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchTiming {
    /// Real wall time spent by this process executing the batch.
    pub host_wall: Duration,
    /// Modeled time on the engine's hardware: everything (the published
    /// "simulation time").
    pub simulated_total_ns: f64,
    /// Modeled time of the numerical integration only (the published
    /// "integration time").
    pub simulated_integration_ns: f64,
    /// Modeled time of input staging and output writing.
    pub simulated_io_ns: f64,
}

/// The result of running a batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Engine that produced this result.
    pub engine: &'static str,
    /// One outcome per batch member, in order.
    pub outcomes: Vec<SimOutcome>,
    /// Timing on both clocks.
    pub timing: BatchTiming,
    /// Lane occupancy/divergence accounting, for engines that ran the
    /// lane-batched lockstep path (`None` for scalar execution).
    pub lanes: Option<LaneAccounting>,
}

impl BatchResult {
    /// Number of members that produced a trajectory.
    pub fn success_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.solution.is_ok()).count()
    }

    /// Iterates over the successful trajectories.
    pub fn solutions(&self) -> impl Iterator<Item = &Solution> {
        self.outcomes.iter().filter_map(|o| o.solution.as_ref().ok())
    }

    /// Aggregated solver counters across the batch.
    pub fn aggregate_stats(&self) -> StepStats {
        let mut total = StepStats::default();
        for o in &self.outcomes {
            if let Ok(s) = &o.solution {
                total.absorb(&s.stats);
            }
        }
        total
    }
}

/// Runs `solver` on member `i` of `job`, drawing working storage from a
/// worker-owned scratch pool (shared by all engines).
pub(crate) fn solve_member_pooled(
    job: &SimulationJob,
    i: usize,
    solver: &dyn paraspace_solvers::OdeSolver,
    scratch: &mut SolverScratch,
) -> Result<Solution, SolveFailure> {
    let (x0, k) = job.member(i);
    let sys = crate::RbmOdeSystem::new(job.odes(), k.to_vec());
    solver.solve_pooled(&sys, 0.0, x0, job.time_points(), job.options(), scratch)
}

/// Solves `members` of `job` on the executor's worker pool and returns the
/// per-member results **in `members` order**.
///
/// Each worker owns one [`SolverScratch`], so steady-state integration
/// allocates nothing per step regardless of how members are distributed.
/// Workers do nothing but the numerics: every order-sensitive reduction
/// (timeline accounting, f64 accumulation) stays with the caller, which
/// folds this vector in index order — making the batch result bitwise
/// identical at any thread count.
pub(crate) fn solve_members(
    executor: &Executor,
    job: &SimulationJob,
    solver: &dyn paraspace_solvers::OdeSolver,
    members: &[usize],
) -> Vec<Result<Solution, SolveFailure>> {
    executor.map_with(members.len(), SolverScratch::new, |scratch, idx| {
        solve_member_pooled(job, members[idx], solver, scratch)
    })
}

/// Splits a member result into the caller-facing outcome and the work the
/// run consumed on the engine's hardware — failed members are billed for
/// the steps they actually burned before giving up.
pub(crate) fn outcome_and_stats(
    result: Result<Solution, SolveFailure>,
) -> (Result<Solution, SolverError>, StepStats) {
    match result {
        Ok(sol) => {
            let stats = sol.stats;
            (Ok(sol), stats)
        }
        Err(failure) => (Err(failure.error), failure.stats),
    }
}

/// Serializes all successful outputs, returning total bytes (the P5 cost
/// driver).
pub(crate) fn output_bytes(job: &SimulationJob, outcomes: &[SimOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|o| o.solution.as_ref().ok())
        .map(|s| job.serialize_dynamics(s).len() as u64)
        .sum()
}
