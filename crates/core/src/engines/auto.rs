//! The auto-selecting engine: the published comparison-map guidance as a
//! drop-in simulator.
//!
//! The original tool is pitched as a "black box": the user should not need
//! to know which granularity wins for their workload. [`AutoEngine`] applies
//! [`crate::recommend_engine`] to the job's dimensions and dispatches to
//! the winning engine, recording which one ran.

use crate::engines::{BatchResult, Simulator};
use crate::recovery::RecoveryPolicy;
use crate::{
    recommend_engine, CoarseEngine, CpuEngine, CpuSolverKind, EngineKind, FineCoarseEngine,
    FineEngine, SimError, SimulationJob,
};
use paraspace_exec::CancelToken;

/// A simulator that picks the recommended engine per job.
///
/// # Example
///
/// ```
/// use paraspace_core::{AutoEngine, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
///
/// let engine = AutoEngine::new();
/// // A single simulation of a tiny model routes to the CPU...
/// let single = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build()?;
/// assert_eq!(engine.run(&single)?.engine, "lsoda-cpu");
/// // ...while a large batch routes to a GPU engine.
/// let batch = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(300).build()?;
/// assert_eq!(engine.run(&batch)?.engine, "fine-coarse");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AutoEngine {
    threads: usize,
    recovery: RecoveryPolicy,
    cancel: CancelToken,
}

impl Default for AutoEngine {
    fn default() -> Self {
        AutoEngine::new()
    }
}

impl AutoEngine {
    /// Creates the auto-selecting engine with default sub-engines.
    pub fn new() -> Self {
        AutoEngine { threads: 1, recovery: RecoveryPolicy::default(), cancel: CancelToken::new() }
    }

    /// Sets the host worker-thread count forwarded to whichever engine the
    /// job dispatches to (builder style): `1` is sequential, `0` means one
    /// worker per available core.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the failed-member recovery policy forwarded to whichever engine
    /// the job dispatches to (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a cooperative cancellation token forwarded to whichever
    /// engine the job dispatches to (builder style).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The engine kind this job would dispatch to.
    pub fn selection(&self, job: &SimulationJob) -> EngineKind {
        recommend_engine(job.odes().n_species(), job.odes().n_reactions(), job.batch_size())
    }
}

impl Simulator for AutoEngine {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        match self.selection(job) {
            EngineKind::Cpu => CpuEngine::new(CpuSolverKind::Lsoda)
                .with_threads(self.threads)
                .with_recovery(self.recovery)
                .with_cancel(self.cancel.clone())
                .run(job),
            EngineKind::Coarse => CoarseEngine::new()
                .with_threads(self.threads)
                .with_recovery(self.recovery)
                .with_cancel(self.cancel.clone())
                .run(job),
            EngineKind::Fine => FineEngine::new()
                .with_threads(self.threads)
                .with_recovery(self.recovery)
                .with_cancel(self.cancel.clone())
                .run(job),
            EngineKind::FineCoarse => FineCoarseEngine::new()
                .with_threads(self.threads)
                .with_recovery(self.recovery)
                .with_cancel(self.cancel.clone())
                .run(job),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::sbgen::SbGen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_follows_the_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = SbGen::new(8, 8).generate(&mut rng);
        let engine = AutoEngine::new();

        let single =
            SimulationJob::builder(&small).time_points(vec![1.0]).replicate(1).build().unwrap();
        assert_eq!(engine.selection(&single), EngineKind::Cpu);

        let mid =
            SimulationJob::builder(&small).time_points(vec![1.0]).replicate(64).build().unwrap();
        assert_eq!(engine.selection(&mid), EngineKind::Coarse);

        let big =
            SimulationJob::builder(&small).time_points(vec![1.0]).replicate(512).build().unwrap();
        assert_eq!(engine.selection(&big), EngineKind::FineCoarse);
    }

    #[test]
    fn dispatch_produces_correct_trajectories() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SbGen::new(6, 8).generate(&mut rng);
        let job =
            SimulationJob::builder(&model).time_points(vec![0.5]).replicate(8).build().unwrap();
        let auto = AutoEngine::new().run(&job).unwrap();
        let reference = FineCoarseEngine::new().run(&job).unwrap();
        assert_eq!(auto.success_count(), 8);
        let a = auto.outcomes[0].solution.as_ref().unwrap();
        let b = reference.outcomes[0].solution.as_ref().unwrap();
        for (x, y) in a.state_at(0).iter().zip(b.state_at(0)) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
