//! The fine- **and** coarse-grained engine: the paper's contribution.
//!
//! Coarse grain: every device thread owns one simulation of the batch.
//! Fine grain: at every solver step the owning thread uses dynamic
//! parallelism to launch child grids that spread the ODE work (stage
//! evaluations, Newton transforms, LU solves) across one thread per
//! species/matrix row. The published pipeline:
//!
//! * **P1** (host): flat ODE encoding + host→device transfer,
//! * **P2** (device): dominant-eigenvalue stiffness triage, threshold 500,
//! * **P3** (device): DOPRI5 batch over the non-stiff members,
//! * **P4** (device): RADAU5 batch over stiff members *and* P3 failures,
//! * **P5** (host): output collection and writing.
//!
//! The numerics run bit-exact on the host; the device model receives the
//! *measured* per-simulation work. Parent threads carry their own
//! simulation's step count (so batch heterogeneity becomes warp divergence
//! on the device), child grids carry the per-round ODE work, and each child
//! round pays the dynamic-parallelism launch overhead — which is what caps
//! useful batch sizes near 2048.

use crate::engines::{
    outcome_and_stats, output_bytes, BatchHealth, BatchResult, BatchTiming, SimOutcome, Simulator,
    IO_BYTES_PER_NS,
};
use crate::recovery::{contained_attempt, continue_ladder, RecoveryLog, RecoveryPolicy};
use crate::{classify_batch_with_threshold, RbmBatchSystem, SimError, SimulationJob, WorkEstimate};
use paraspace_exec::{CancelToken, Cancelled, Executor};
use paraspace_solvers::{
    Dopri5, OdeSolver, Radau5, Radau5Batch, SolveFailure, SolverError, SolverScratch, StepStats,
};
use paraspace_vgpu::{
    ChildLaunch, Device, DeviceConfig, DpModel, KernelLaunch, LaneGroupStats, MemorySpace,
    ThreadWork,
};
use std::time::Instant;

/// Host↔device transfer throughput in bytes/ns (PCIe 3.0-class ≈ 8 GB/s).
const PCIE_BYTES_PER_NS: f64 = 8.0;
/// Parent-thread control-flow flops per solver step (loop bookkeeping,
/// step-size control on the coarse thread).
const PARENT_FLOPS_PER_STEP: u64 = 30;

/// The fine+coarse engine.
///
/// # Example
///
/// ```
/// use paraspace_core::{FineCoarseEngine, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build()?;
/// let r = FineCoarseEngine::new().run(&job)?;
/// assert_eq!(r.success_count(), 8);
/// assert!(r.timing.simulated_integration_ns > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FineCoarseEngine {
    device_config: DeviceConfig,
    dp_model: DpModel,
    threads_per_block: usize,
    stiffness_threshold: f64,
    executor: Executor,
    lane_width: Option<usize>,
    recovery: RecoveryPolicy,
    cancel: CancelToken,
}

impl Default for FineCoarseEngine {
    fn default() -> Self {
        FineCoarseEngine::new()
    }
}

impl FineCoarseEngine {
    /// An engine on the published GPU (simulated Titan X).
    pub fn new() -> Self {
        FineCoarseEngine {
            device_config: DeviceConfig::titan_x(),
            dp_model: DpModel::default(),
            threads_per_block: 32,
            stiffness_threshold: crate::STIFFNESS_THRESHOLD,
            executor: Executor::sequential(),
            lane_width: None,
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::new(),
        }
    }

    /// Pins the P4 lockstep lane width (builder style): `1` forces the
    /// scalar P4 path, larger values run lockstep RADAU5 lane-groups of
    /// that width. Without this, the engine autotunes the width per model
    /// ([`crate::auto_lane_width`]) through the same resolver as
    /// [`crate::FineEngine`]. Per-member results are bitwise identical at
    /// any width (it only shapes the modeled kernel and the LU working
    /// set).
    pub fn with_lane_width(mut self, width: usize) -> Self {
        self.lane_width = Some(width.max(1));
        self
    }

    /// Sets the host worker-thread count used to run the batch numerics
    /// (builder style): `1` is the sequential path, `0` means one worker
    /// per available core. The result is bitwise identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = Executor::new(threads);
        self
    }

    /// Overrides the phase-P2 stiffness threshold (builder style; swept by
    /// the stiffness-threshold ablation).
    pub fn with_stiffness_threshold(mut self, threshold: f64) -> Self {
        self.stiffness_threshold = threshold;
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }

    /// Overrides the dynamic-parallelism model (builder style; used by the
    /// DP ablation).
    pub fn with_dp_model(mut self, dp: DpModel) -> Self {
        self.dp_model = dp;
        self
    }

    /// Overrides the failed-member recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a cooperative cancellation token (builder style). When the
    /// token trips mid-batch, in-flight members drain, [`Simulator::run`]
    /// returns [`SimError::Cancelled`], and partial results are discarded.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Runs one solver phase (P3 or P4) over `members`, filling `slots`,
    /// and returns the members that failed with a re-routable error (or
    /// `Err(Cancelled)` if the token tripped before the phase completed).
    #[allow(clippy::too_many_arguments)]
    fn run_phase(
        &self,
        job: &SimulationJob,
        device: &Device,
        phase_name: &str,
        solver: &dyn OdeSolver,
        members: &[usize],
        slots: &mut [Option<(Result<paraspace_solvers::Solution, SolverError>, &'static str)>],
        logs: &mut [RecoveryLog],
        reroutable: bool,
    ) -> Result<Vec<usize>, Cancelled> {
        if members.is_empty() {
            return Ok(Vec::new());
        }
        let n = job.odes().n_species();
        let mut failed = Vec::new();
        let mut parent_work: Vec<ThreadWork> = Vec::with_capacity(members.len());
        let mut phase_work = WorkEstimate::default();
        let mut total_rounds: u64 = 0;
        let mut total_steps_max: u64 = 0;

        // Workers solve members into index-ordered slots; everything below
        // the solve — timeline accounting, work accumulation, re-route
        // decisions — folds on this thread in member order, so the batch
        // result is bitwise identical at any thread count. Each attempt
        // runs under panic containment: a panicking member becomes an
        // `Internal` failure (never re-routable — it would panic again on
        // the other solver too) instead of tearing down the phase.
        let opts = self.recovery.base_options(job);
        let results = self.executor.try_map_with_cancel(
            members.len(),
            &self.cancel,
            SolverScratch::new,
            |scratch, idx| contained_attempt(job, members[idx], solver, &opts, scratch),
        )?;
        for (idx, result) in results.into_iter().enumerate() {
            let i = members[idx];
            // contained_attempt already catches member panics, so an
            // executor-level fault is a bug in the attempt plumbing itself.
            let result = result.unwrap_or_else(|fault| panic!("{fault}"));
            // Failed members are billed for the work they actually did
            // before failing (SolveFailure carries the partial counters).
            let (solution, stats) = outcome_and_stats(result);
            logs[i].attempts += 1;
            logs[i].panicked |= matches!(solution, Err(SolverError::Internal { .. }));
            let rounds = launch_rounds(&stats);
            total_rounds += rounds;
            total_steps_max = total_steps_max.max(stats.steps as u64);
            parent_work.push(
                ThreadWork::new()
                    .with_flops(stats.steps as u64 * PARENT_FLOPS_PER_STEP)
                    .with_syncs(stats.steps as u64),
            );
            phase_work.absorb(&WorkEstimate::from_stats(
                job.odes(),
                &stats,
                job.time_points().len(),
            ));

            match solution {
                Ok(s) => slots[i] = Some((Ok(s), solver.name())),
                Err(e) if reroutable && is_reroutable(&e) => failed.push(i),
                Err(e) => slots[i] = Some((Err(e), solver.name())),
            }
        }

        // Parent grid: one thread per member (padded to full blocks).
        let tpb = self.threads_per_block;
        let blocks = members.len().div_ceil(tpb);
        let mut padded = parent_work;
        padded.resize(blocks * tpb, ThreadWork::new());

        // Child grid: the per-round ODE work spread across species threads.
        let child_tpb = n.clamp(1, 128);
        let child_blocks = n.div_ceil(child_tpb).max(1);
        let child_threads_total = (child_tpb * child_blocks * members.len()) as u64;
        let rounds_avg = (total_rounds / members.len() as u64).max(1);
        let per_thread_flops = phase_work.flops / child_threads_total.max(1) / rounds_avg.max(1);
        let per_thread_bytes = (phase_work.state_bytes + phase_work.structure_bytes)
            / child_threads_total.max(1)
            / rounds_avg.max(1);

        let launch =
            KernelLaunch::per_thread(format!("integrate::{phase_name}"), blocks, tpb, padded)
                .with_registers(64)
                .with_child(ChildLaunch {
                    blocks: child_blocks,
                    threads_per_block: child_tpb,
                    // State and structure working sets are shared/reused across
                    // the batch's concurrent child grids, so they live in the
                    // L2-hot cached-global space; output writes stay DRAM-bound.
                    work: ThreadWork::new()
                        .with_flops(per_thread_flops.max(1))
                        .with_read(MemorySpace::CachedGlobal, per_thread_bytes.max(1))
                        .with_global_write(
                            phase_work.output_bytes
                                / child_threads_total.max(1)
                                / rounds_avg.max(1),
                        ),
                    repeats: rounds_avg,
                });
        device.launch(&launch);
        Ok(failed)
    }

    /// The lane-batched P4: all of `members` integrate as lockstep RADAU5
    /// lane-groups ([`Radau5Batch`] over the SoA adapter) instead of one
    /// scalar solve per stiff member. Each parent thread now carries a
    /// whole lane-group, and one child round per lockstep tick serves all
    /// `L` lanes — the per-tick dynamic-parallelism overhead is amortized
    /// `L`-fold, which is exactly where the scalar P4 lost its budget on
    /// stiff-heavy batches. Results are bitwise identical to scalar
    /// [`Radau5`] per member.
    #[allow(clippy::too_many_arguments)]
    fn run_p4_lanes(
        &self,
        job: &SimulationJob,
        device: &Device,
        members: &[usize],
        width: usize,
        slots: &mut [Option<(Result<paraspace_solvers::Solution, SolverError>, &'static str)>],
        logs: &mut [RecoveryLog],
    ) {
        let n = job.odes().n_species();
        let mut sys = RbmBatchSystem::new(job.odes(), width);
        for &i in members {
            let (x0, k) = job.member(i);
            sys.push_member(x0, k);
        }
        let mut scratch = SolverScratch::new();
        let (results, report) = Radau5Batch::new().solve_group(
            &mut sys,
            0.0,
            job.time_points(),
            job.options(),
            &mut scratch,
        );

        let mut lane_stats = StepStats::default();
        for r in &results {
            match r {
                Ok(s) => lane_stats.absorb(&s.stats),
                Err(f) => lane_stats.absorb(&f.stats),
            }
        }
        let phase_work = WorkEstimate::from_stats(job.odes(), &lane_stats, job.time_points().len());
        let group_stats = LaneGroupStats {
            width: report.width,
            lockstep_iters: report.lockstep_iters,
            lane_steps: report.lane_steps,
        };

        // Parent grid: one thread per lane-group worth of members; child
        // grid: species × lanes threads, one round per lockstep tick, flops
        // inflated by the divergence factor (masked lanes burn issue slots).
        let tpb = self.threads_per_block;
        let blocks = members.len().div_ceil(width).div_ceil(tpb).max(1);
        let parent = ThreadWork::new()
            .with_flops(report.lockstep_iters * PARENT_FLOPS_PER_STEP)
            .with_syncs(report.lockstep_iters);
        let child_threads = (n * width).max(1);
        let child_tpb = child_threads.clamp(1, 128);
        let child_blocks = child_threads.div_ceil(child_tpb).max(1);
        let child_threads_total = (child_tpb * child_blocks) as u64;
        let rounds = report.lockstep_iters.max(1);
        let flops = ((phase_work.flops as f64 * group_stats.divergence_factor()) as u64).max(1);
        let launch = KernelLaunch::uniform("integrate::p4_radau_lanes", blocks, tpb, parent)
            .with_registers(64)
            .with_child(ChildLaunch {
                blocks: child_blocks,
                threads_per_block: child_tpb,
                work: ThreadWork::new()
                    .with_flops((flops / child_threads_total / rounds).max(1))
                    .with_read(
                        MemorySpace::CachedGlobal,
                        ((phase_work.state_bytes + phase_work.structure_bytes)
                            / child_threads_total
                            / rounds)
                            .max(1),
                    )
                    .with_global_write(phase_work.output_bytes / child_threads_total / rounds),
                repeats: rounds,
            });
        device.launch(&launch);

        for (idx, r) in results.into_iter().enumerate() {
            let i = members[idx];
            logs[i].attempts += 1;
            let (solution, _stats) = outcome_and_stats(r);
            logs[i].panicked |= matches!(solution, Err(SolverError::Internal { .. }));
            slots[i] = Some((solution, "radau5-lanes"));
        }
    }
}

/// How many child-grid launch rounds one simulation's integration issued:
/// one per stage/RHS evaluation, one per linear solve, one per
/// factorization, one per step-control round.
fn launch_rounds(stats: &StepStats) -> u64 {
    (stats.rhs_evals + stats.linear_solves + stats.lu_decompositions + stats.steps).max(1) as u64
}

/// P3 failures that re-route to RADAU5 rather than being terminal.
fn is_reroutable(e: &SolverError) -> bool {
    matches!(
        e,
        SolverError::StiffnessDetected { .. }
            | SolverError::MaxStepsExceeded { .. }
            | SolverError::StepSizeUnderflow { .. }
            | SolverError::NonlinearSolveFailed { .. }
    )
}

impl Simulator for FineCoarseEngine {
    fn name(&self) -> &'static str {
        "fine-coarse"
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let device = Device::with_dp_model(self.device_config.clone(), self.dp_model.clone());
        let n = job.odes().n_species();
        let m = job.odes().n_reactions();
        let batch = job.batch_size();

        // P1: encoding upload (structures + per-member x0, k).
        let h2d_bytes = (job.odes().n_terms() as u64 * 12 + m as u64 * 8) // encoding
            + batch as u64 * (n + m) as u64 * 8;
        device.record_host_phase("io::p1_h2d", h2d_bytes as f64 / PCIE_BYTES_PER_NS);

        // P2: stiffness triage on the device.
        let classes = classify_batch_with_threshold(job, self.stiffness_threshold);
        let p2_work = ThreadWork::new()
            .with_flops(job.odes().jacobian_flops() + 50 * 2 * (n * n) as u64)
            .with_global_read((job.odes().n_terms() as u64 * 12) + (n * n) as u64 * 8);
        let p2_blocks = batch.div_ceil(self.threads_per_block);
        device.launch(
            &KernelLaunch::uniform(
                "setup::p2_stiffness",
                p2_blocks,
                self.threads_per_block,
                p2_work,
            )
            .with_registers(64),
        );

        // P3: DOPRI5 over non-stiff members; collect re-routes.
        let mut slots: Vec<
            Option<(Result<paraspace_solvers::Solution, SolverError>, &'static str)>,
        > = (0..batch).map(|_| None).collect();
        let mut logs = vec![RecoveryLog::default(); batch];
        let nonstiff: Vec<usize> = (0..batch).filter(|&i| !classes[i].stiff).collect();
        let stiff: Vec<usize> = (0..batch).filter(|&i| classes[i].stiff).collect();
        let dopri5 = Dopri5::new();
        let radau5 = Radau5::new();
        let rerouted = self.run_phase(
            job,
            &device,
            "p3_dopri5",
            &dopri5,
            &nonstiff,
            &mut slots,
            &mut logs,
            self.recovery.reroute,
        )?;

        // P4: RADAU5 over stiff + re-routed members.
        let mut p4_members = stiff;
        p4_members.extend(rerouted.iter().copied());
        let rerouted_set: Vec<bool> = {
            let mut v = vec![false; batch];
            for &i in &rerouted {
                v[i] = true;
                logs[i].rerouted = true;
            }
            v
        };
        // Mass-action batches with two or more clean stiff members run P4
        // as lockstep RADAU5 lane-groups; fault-planned members stay on the
        // scalar path so an injected panic (and its per-call fault
        // ordinals) cannot touch a whole group. The width comes from the
        // same per-model resolver as the fine engine's lane path.
        let (p4_lane, p4_scalar): (Vec<usize>, Vec<usize>) =
            p4_members.iter().copied().partition(|&i| job.fault_plan().faults_for(i).is_none());
        let p4_width = crate::lanes::resolve_lane_width(self.lane_width, job, "fine-coarse", true);
        if p4_width > 1 && p4_lane.len() >= 2 {
            self.run_p4_lanes(job, &device, &p4_lane, p4_width, &mut slots, &mut logs);
            self.run_phase(
                job,
                &device,
                "p4_radau5",
                &radau5,
                &p4_scalar,
                &mut slots,
                &mut logs,
                false,
            )?;
        } else {
            self.run_phase(
                job,
                &device,
                "p4_radau5",
                &radau5,
                &p4_members,
                &mut slots,
                &mut logs,
                false,
            )?;
        }

        // Relaxation pass: members still failing after P4 climb the
        // tolerance-relaxation rungs of the ladder on the solver that last
        // ran them (sequential, member order — the pass is rare and must
        // stay deterministic). Their P3/P4 work is already billed above, so
        // the ladder starts from a zero-stats copy of the failure and only
        // genuine retries bill launch rounds.
        if self.recovery.max_relaxations > 0 {
            let mut scratch = SolverScratch::new();
            for i in 0..batch {
                let Some((Err(_), _)) = slots[i].as_ref() else { continue };
                let (first_err, first_name) = slots[i].take().expect("slot checked above");
                let on_radau = classes[i].stiff || rerouted_set[i];
                let retry: (&dyn OdeSolver, &'static str) =
                    if on_radau { (&radau5, "radau5") } else { (&dopri5, "dopri5") };
                let first =
                    first_err.map_err(|e| SolveFailure { error: e, stats: StepStats::default() });
                let rs = continue_ladder(
                    job,
                    i,
                    first,
                    first_name,
                    retry,
                    None,
                    |_| false,
                    &self.recovery,
                    self.recovery.base_options(job),
                    &mut scratch,
                );
                if rs.log.attempts > 1 {
                    device.record_host_phase(
                        "integrate::relax_retries",
                        launch_rounds(&rs.stats) as f64 * self.device_config.kernel_launch_ns,
                    );
                }
                logs[i].attempts += rs.log.attempts - 1;
                logs[i].relaxations += rs.log.relaxations;
                logs[i].panicked |= rs.log.panicked;
                slots[i] = Some((rs.solution, rs.solver));
            }
        }

        // Assemble outcomes.
        let mut health = BatchHealth::default();
        let outcomes: Vec<SimOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let (solution, solver) = slot.expect("every member handled by P3 or P4");
                logs[i].recovered = solution.is_ok() && logs[i].attempts > 1;
                health.observe(&solution, &logs[i]);
                SimOutcome {
                    solution,
                    stiff: classes[i].stiff,
                    rerouted: rerouted_set[i],
                    solver,
                    log: std::mem::take(&mut logs[i]),
                }
            })
            .collect();

        // P5: device→host transfer plus output writing.
        let out_bytes = output_bytes(job, &outcomes);
        device.record_host_phase("io::p5_d2h", out_bytes as f64 / PCIE_BYTES_PER_NS);
        device.record_host_phase("io::p5_write", out_bytes as f64 / IO_BYTES_PER_NS);

        let timeline = device.timeline();
        Ok(BatchResult {
            engine: self.name(),
            outcomes,
            timing: BatchTiming {
                host_wall: start.elapsed(),
                simulated_total_ns: timeline.total_ns(),
                simulated_integration_ns: timeline.time_tagged_ns("integrate"),
                simulated_io_ns: timeline.time_tagged_ns("io"),
            },
            lanes: None,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuEngine, CpuSolverKind};
    use paraspace_rbm::{perturbed_batch, Parameterization, Reaction, ReactionBasedModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reversible_model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.5)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.5)).unwrap();
        m
    }

    #[test]
    fn trajectories_match_cpu_engine() {
        let m = reversible_model();
        let mut rng = StdRng::seed_from_u64(9);
        let batch = perturbed_batch(&m, 6, &mut rng);
        let job = SimulationJob::builder(&m)
            .time_points(vec![0.5, 1.0, 2.0])
            .parameterizations(batch)
            .build()
            .unwrap();
        let gpu = FineCoarseEngine::new().run(&job).unwrap();
        let cpu = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        assert_eq!(gpu.success_count(), 6);
        for (og, oc) in gpu.outcomes.iter().zip(&cpu.outcomes) {
            let sg = og.solution.as_ref().unwrap();
            let sc = oc.solution.as_ref().unwrap();
            for (a, b) in sg.state_at(2).iter().zip(sc.state_at(2)) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn stiff_members_take_the_radau_path() {
        let m = reversible_model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![1.5, 0.5]))
            .parameterization(Parameterization::new().with_rate_constants(vec![1e5, 1e5]))
            .build()
            .unwrap();
        let r = FineCoarseEngine::new().run(&job).unwrap();
        assert!(!r.outcomes[0].stiff);
        assert!(r.outcomes[1].stiff);
        assert_eq!(r.outcomes[1].solver, "radau5");
        assert_eq!(r.outcomes[0].solver, "dopri5");
        // The stiff member still reaches the right equilibrium A/(A+B) = ½.
        let s = r.outcomes[1].solution.as_ref().unwrap();
        assert!((s.state_at(0)[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn stiff_crowds_run_p4_in_lockstep_lanes() {
        use paraspace_solvers::SolverScratch;
        let m = reversible_model();
        let mut b = SimulationJob::builder(&m).time_points(vec![0.5, 1.0]);
        for i in 0..5 {
            b = b.parameterization(
                Parameterization::new()
                    .with_rate_constants(vec![1e5 + 5e3 * i as f64, 2e5 + 1e4 * i as f64]),
            );
        }
        let job = b.build().unwrap();
        let r = FineCoarseEngine::new().run(&job).unwrap();
        let mut scratch = SolverScratch::new();
        for i in 0..job.batch_size() {
            assert!(r.outcomes[i].stiff);
            assert_eq!(r.outcomes[i].solver, "radau5-lanes");
            // Bitwise identical to the scalar RADAU5 twin.
            let (x0, k) = job.member(i);
            let sys = crate::RbmOdeSystem::new(job.odes(), k.to_vec());
            let reference = Radau5::new()
                .solve_pooled(&sys, 0.0, x0, job.time_points(), job.options(), &mut scratch)
                .unwrap();
            assert_eq!(
                r.outcomes[i].solution.as_ref().unwrap().states,
                reference.states,
                "member {i}"
            );
        }
    }

    #[test]
    fn batch_throughput_beats_cpu_on_large_batches() {
        // The headline claim, in miniature: on a batch of simulations the
        // simulated GPU total is far below the simulated sequential CPU
        // total.
        let m = reversible_model();
        let mut rng = StdRng::seed_from_u64(10);
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0, 2.0])
            .parameterizations(perturbed_batch(&m, 256, &mut rng))
            .build()
            .unwrap();
        let gpu = FineCoarseEngine::new().run(&job).unwrap();
        let cpu = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
        let speedup = cpu.timing.simulated_integration_ns / gpu.timing.simulated_integration_ns;
        assert!(speedup > 3.0, "expected a clear batch win, got {speedup:.2}x");
    }

    #[test]
    fn io_and_integration_are_split() {
        let m = reversible_model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(4).build().unwrap();
        let r = FineCoarseEngine::new().run(&job).unwrap();
        assert!(r.timing.simulated_io_ns > 0.0);
        assert!(r.timing.simulated_integration_ns > 0.0);
        assert!(r.timing.simulated_total_ns >= r.timing.simulated_integration_ns);
    }

    #[test]
    fn reroute_marks_members() {
        // A member that is non-stiff at t0 but becomes unmanageable for
        // DOPRI5: tiny step budget forces MaxStepsExceeded → re-route.
        let m = reversible_model();
        // Absurdly small step budget to force a P3 failure.
        let opts = paraspace_solvers::SolverOptions { max_steps: 8, ..Default::default() };
        let job = SimulationJob::builder(&m)
            .time_points(vec![5.0])
            .replicate(1)
            .options(opts)
            .build()
            .unwrap();
        let r = FineCoarseEngine::new().run(&job).unwrap();
        // Either DOPRI5 made it in 8 steps, or the member was re-routed.
        let o = &r.outcomes[0];
        if o.rerouted {
            assert_eq!(o.solver, "radau5");
        }
    }
}
