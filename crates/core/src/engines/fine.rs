//! The fine-grained-only engine (LASSIE-class baseline).
//!
//! Simulations run one at a time; within each, the ODE dimension is spread
//! across device threads, with kernels launched from the **host** at every
//! solver step (no dynamic parallelism). The method pair mirrors the
//! published baseline: RKF45 while the problem behaves, first-order BDF
//! once it does not. This design shines on a *single very large* model —
//! and collapses when many simulations are requested, because simulations
//! serialize and every step pays host-launch latency: exactly the regions
//! the comparison maps assign to it.

use crate::engines::{
    outcome_and_stats, output_bytes, solve_member_pooled, BatchResult, BatchTiming, SimOutcome,
    Simulator, IO_BYTES_PER_NS,
};
use crate::{SimError, SimulationJob, WorkEstimate};
use paraspace_exec::Executor;
use paraspace_solvers::{Bdf, OdeSolver, Rkf45, SolverError, SolverScratch};
use paraspace_vgpu::{
    Device, DeviceConfig, DpModel, KernelLaunch, MemorySpace, ThreadWork, TimelineShard,
};
use std::time::Instant;

/// Host-launched kernels per solver step (stage evaluations + reduction).
const KERNELS_PER_STEP: u64 = 8;
/// Host↔device transfer throughput in bytes/ns.
const PCIE_BYTES_PER_NS: f64 = 8.0;

/// The fine-only engine.
///
/// # Example
///
/// ```
/// use paraspace_core::{FineEngine, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(2).build()?;
/// let r = FineEngine::new().run(&job)?;
/// assert_eq!(r.success_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FineEngine {
    device_config: DeviceConfig,
    executor: Executor,
}

impl Default for FineEngine {
    fn default() -> Self {
        FineEngine::new()
    }
}

impl FineEngine {
    /// An engine on the published GPU.
    pub fn new() -> Self {
        FineEngine { device_config: DeviceConfig::titan_x(), executor: Executor::sequential() }
    }

    /// Sets the host worker-thread count used to run the batch numerics
    /// (builder style): `1` is the sequential path, `0` means one worker
    /// per available core. The result is bitwise identical at any setting
    /// (the *modeled* device still serializes simulations — that is the
    /// published weakness this engine exists to exhibit).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = Executor::new(threads);
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }
}

impl Simulator for FineEngine {
    fn name(&self) -> &'static str {
        "fine"
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let device = Device::new(self.device_config.clone());
        let n = job.odes().n_species();
        let m = job.odes().n_reactions();
        let rkf = Rkf45::new();
        let bdf1 = Bdf::with_max_order(1);

        let h2d = (job.odes().n_terms() as u64 * 12 + m as u64 * 8) + (n + m) as u64 * 8;
        device.record_host_phase("io::h2d", h2d as f64 * job.batch_size() as f64 / PCIE_BYTES_PER_NS);

        // Each worker solves its simulations and prices them into a private
        // per-member timeline shard; the device absorbs the shards in
        // simulation-index order, reproducing the sequential timeline (and
        // its serialize-everything weakness) bitwise at any thread count.
        let dp = DpModel::default();
        let results = self.executor.map_with(job.batch_size(), SolverScratch::new, |scratch, i| {
            // Non-stiff attempt first; switch to BDF1 on a stiffness-shaped
            // failure (the published switching pair).
            let mut solver_used: &'static str = rkf.name();
            let (mut solution, mut stats) =
                outcome_and_stats(solve_member_pooled(job, i, &rkf, scratch));
            if let Err(e) = &solution {
                if matches!(
                    e,
                    SolverError::MaxStepsExceeded { .. }
                        | SolverError::StepSizeUnderflow { .. }
                        | SolverError::StiffnessDetected { .. }
                ) {
                    // The failed non-stiff attempt's work is still billed,
                    // then the stiff solver re-runs the member.
                    solver_used = "bdf1";
                    let (retry, retry_stats) =
                        outcome_and_stats(solve_member_pooled(job, i, &bdf1, scratch));
                    solution = retry;
                    stats.absorb(&retry_stats);
                }
            }
            let work = WorkEstimate::from_stats(job.odes(), &stats, job.time_points().len());

            // One simulation = one fine-grained grid: species across
            // threads, repeated per step from the host.
            let tpb = n.clamp(1, 128);
            let blocks = n.div_ceil(tpb).max(1);
            let threads_total = (tpb * blocks) as u64;
            let per_thread = ThreadWork::new()
                .with_flops((work.flops / threads_total).max(1))
                .with_read(
                    MemorySpace::CachedGlobal,
                    ((work.state_bytes + work.structure_bytes) / threads_total).max(1),
                )
                .with_global_write((work.output_bytes / threads_total).max(1));
            let mut shard = TimelineShard::new();
            shard.launch(
                &self.device_config,
                &dp,
                &KernelLaunch::uniform(format!("integrate::fine_sim{i}"), blocks, tpb, per_thread)
                    .with_registers(48),
            );
            // Host-side launch latency for every remaining kernel of every
            // step (the single launch above already charged one).
            let launches = (stats.steps as u64 * KERNELS_PER_STEP).saturating_sub(1);
            shard.record_host_phase(
                "integrate::step_launches",
                launches as f64 * self.device_config.kernel_launch_ns,
            );

            (solution, solver_used, shard)
        });

        let mut outcomes = Vec::with_capacity(job.batch_size());
        for (solution, solver_used, shard) in results {
            device.absorb_shard(shard);
            outcomes.push(SimOutcome { solution, stiff: false, rerouted: false, solver: solver_used });
        }

        let out_bytes = output_bytes(job, &outcomes);
        device.record_host_phase("io::d2h", out_bytes as f64 / PCIE_BYTES_PER_NS);
        device.record_host_phase("io::write", out_bytes as f64 / IO_BYTES_PER_NS);

        let timeline = device.timeline();
        Ok(BatchResult {
            engine: self.name(),
            outcomes,
            timing: BatchTiming {
                host_wall: start.elapsed(),
                simulated_total_ns: timeline.total_ns(),
                simulated_integration_ns: timeline.time_tagged_ns("integrate"),
                simulated_io_ns: timeline.time_tagged_ns("io"),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FineCoarseEngine;
    use paraspace_rbm::{Parameterization, Reaction, ReactionBasedModel};

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        m
    }

    #[test]
    fn single_simulation_succeeds_and_matches() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let fine = FineEngine::new().run(&job).unwrap();
        let fc = FineCoarseEngine::new().run(&job).unwrap();
        let a = fine.outcomes[0].solution.as_ref().unwrap();
        let b = fc.outcomes[0].solution.as_ref().unwrap();
        for (x, y) in a.state_at(0).iter().zip(b.state_at(0)) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn stiff_member_switches_to_bdf1() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![5e5, 5e5]))
            .build()
            .unwrap();
        let r = FineEngine::new().run(&job).unwrap();
        assert_eq!(r.outcomes[0].solver, "bdf1");
        assert!(r.outcomes[0].solution.is_ok());
    }

    #[test]
    fn serialization_across_simulations_hurts_batches() {
        // Per-simulation simulated time must grow ~linearly with batch size
        // (no coarse-grained parallelism) — the published weakness.
        let m = model();
        let job1 = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let job8 = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build().unwrap();
        let r1 = FineEngine::new().run(&job1).unwrap();
        let r8 = FineEngine::new().run(&job8).unwrap();
        assert!(
            r8.timing.simulated_total_ns > 6.0 * r1.timing.simulated_total_ns,
            "{} vs {}",
            r8.timing.simulated_total_ns,
            r1.timing.simulated_total_ns
        );
    }

    #[test]
    fn loses_to_fine_coarse_on_batches() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(64).build().unwrap();
        let fine = FineEngine::new().run(&job).unwrap();
        let fc = FineCoarseEngine::new().run(&job).unwrap();
        assert!(
            fine.timing.simulated_integration_ns > fc.timing.simulated_integration_ns,
            "fine {} must lose to fine+coarse {}",
            fine.timing.simulated_integration_ns,
            fc.timing.simulated_integration_ns
        );
    }
}
