//! The fine-grained engine (LASSIE-class baseline) and its lane-batched
//! execution path.
//!
//! **Scalar path** (the published baseline): simulations run one at a
//! time; within each, the ODE dimension is spread across device threads,
//! with kernels launched from the **host** at every solver step (no
//! dynamic parallelism). The method pair mirrors the published baseline:
//! RKF45 while the problem behaves, first-order BDF once it does not.
//! This design shines on a *single very large* model — and collapses when
//! many simulations are requested, because simulations serialize and
//! every step pays host-launch latency: exactly the regions the
//! comparison maps assign to it.
//!
//! **Lane path** (auto-selected for mass-action batches): members are
//! packed into lane-groups and integrated `L` at a time by the lockstep
//! [`Dopri5Batch`] solver over the SoA [`RbmBatchSystem`] adapter. One
//! lockstep sweep evaluates the CSR flux/accumulation passes for all `L`
//! lanes per decoded segment, so the per-step host-launch latency and the
//! structure decoding are amortized `L`-fold. Step size, error control,
//! and acceptance stay **per lane** (masked divergence instead of a group
//! barrier), and the vgpu device records the resulting lane occupancy.
//! Per-member trajectories are bitwise independent of the lane width and
//! the worker-thread count.
//!
//! Stiffness triage no longer demotes members to scalar solves: members
//! whose Jacobian diagonal at `t = 0` crosses the published threshold form
//! a **second lane-group class** integrated by the lockstep
//! [`Radau5Batch`] kernel — batched simplified-Newton over one real and
//! one complex lane-batched LU per lane, with the scalar RADAU5
//! Jacobian-/factorization-reuse policy applied per lane. Stiff members
//! thus get the same `L`-fold host-launch amortization as non-stiff ones,
//! and their trajectories are bitwise identical to scalar [`Radau5`]
//! solves at any width.

use crate::engines::{
    output_bytes, BatchHealth, BatchResult, BatchTiming, SimOutcome, Simulator, IO_BYTES_PER_NS,
};
use crate::recovery::{continue_ladder, solve_member_recovered, RecoveryPolicy};
use crate::{RbmBatchSystem, SimError, SimulationJob, WorkEstimate, STIFFNESS_THRESHOLD};
use paraspace_exec::{CancelToken, Executor};
use paraspace_solvers::{
    Bdf, Dopri5, Dopri5Batch, LaneReport, Radau5, Radau5Batch, Rkf45, SolveFailure, SolverError,
    SolverScratch, StepStats,
};
use paraspace_vgpu::{
    Device, DeviceConfig, DpModel, KernelLaunch, LaneGroupStats, MemorySpace, ThreadWork,
    TimelineShard,
};
use std::time::Instant;

/// Host-launched kernels per solver step (stage evaluations + reduction).
const KERNELS_PER_STEP: u64 = 8;
/// Host↔device transfer throughput in bytes/ns.
const PCIE_BYTES_PER_NS: f64 = 8.0;
/// Members queued per lane slot: a group of width `L` services up to
/// `4·L` members via lane compaction, so early finishers hand their lane
/// to a pending member instead of idling it.
const MEMBERS_PER_LANE: usize = 4;

/// The fine-grained engine.
///
/// # Example
///
/// ```
/// use paraspace_core::{FineEngine, SimulationJob, Simulator};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(2).build()?;
/// let r = FineEngine::new().run(&job)?;
/// assert_eq!(r.success_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FineEngine {
    device_config: DeviceConfig,
    executor: Executor,
    lane_width: Option<usize>,
    recovery: RecoveryPolicy,
    cancel: CancelToken,
}

impl Default for FineEngine {
    fn default() -> Self {
        FineEngine::new()
    }
}

impl FineEngine {
    /// An engine on the published GPU, auto-selecting the lane width.
    pub fn new() -> Self {
        FineEngine {
            device_config: DeviceConfig::titan_x(),
            executor: Executor::sequential(),
            lane_width: None,
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::new(),
        }
    }

    /// Sets the host worker-thread count used to run the batch numerics
    /// (builder style): `1` is the sequential path, `0` means one worker
    /// per available core. The result is bitwise identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = Executor::new(threads);
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }

    /// Overrides the failed-member recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a cooperative cancellation token (builder style). When the
    /// token trips mid-batch, in-flight members (or lane-groups) drain,
    /// [`Simulator::run`] returns [`SimError::Cancelled`], and partial
    /// results are discarded.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Pins the lane width (builder style): `1` forces the scalar
    /// published-baseline path, larger values run lockstep lane-groups of
    /// that width. Without this, the engine autotunes the width per model
    /// from its flux-vs-LU cost split ([`crate::auto_lane_width`]) for
    /// mass-action batches of two or more members, scalar otherwise.
    /// Per-member results are bitwise identical at any width.
    pub fn with_lane_width(mut self, width: usize) -> Self {
        self.lane_width = Some(width.max(1));
        self
    }

    /// The lane width this job actually runs at (`1` = scalar path).
    ///
    /// Falls back to scalar — emitting a note when `PARASPACE_DEBUG=1` —
    /// when the model mixes kinetics the batched flux pass does not cover,
    /// rather than asserting deep inside the lane path.
    fn resolved_lane_width(&self, job: &SimulationJob) -> usize {
        crate::lanes::resolve_lane_width(self.lane_width, job, "fine", false)
    }

    /// The published scalar baseline: one simulation at a time, species
    /// across threads, host launches at every step.
    fn run_scalar(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let device = Device::new(self.device_config.clone());
        let n = job.odes().n_species();
        let m = job.odes().n_reactions();
        let rkf = Rkf45::new();
        let bdf1 = Bdf::with_max_order(1);

        device.record_host_phase(
            "io::h2d",
            h2d_bytes(job) as f64 * job.batch_size() as f64 / PCIE_BYTES_PER_NS,
        );
        let _ = m;

        // Each worker solves its simulations and prices them into a private
        // per-member timeline shard; the device absorbs the shards in
        // simulation-index order, reproducing the sequential timeline (and
        // its serialize-everything weakness) bitwise at any thread count.
        let dp = DpModel::default();
        let results = self.executor.try_map_with_cancel(
            job.batch_size(),
            &self.cancel,
            SolverScratch::new,
            |scratch, i| {
                // Non-stiff attempt first; the recovery ladder reroutes a
                // stiffness-shaped failure to BDF1 (the published switching
                // pair), then climbs any configured relaxation rungs. Every
                // attempt's work lands in the member's stats, so retries are
                // billed on the modeled timeline.
                let rs = solve_member_recovered(
                    job,
                    i,
                    (&rkf, "rkf45"),
                    Some((&bdf1, "bdf1")),
                    reroutable,
                    &self.recovery,
                    scratch,
                );
                let mut shard = TimelineShard::new();
                self.bill_scalar_member(&mut shard, job, i, &rs.stats, &dp, n);
                (rs, shard)
            },
        )?;

        let mut outcomes = Vec::with_capacity(job.batch_size());
        let mut health = BatchHealth::default();
        for result in results {
            // The ladder contains member panics; an executor-level fault
            // would be a bug in the ladder itself, so resume it like the
            // historical map_with did.
            let (rs, shard) = result.unwrap_or_else(|fault| panic!("{fault}"));
            device.absorb_shard(shard);
            health.observe(&rs.solution, &rs.log);
            outcomes.push(SimOutcome {
                solution: rs.solution,
                stiff: false,
                rerouted: rs.log.rerouted,
                solver: rs.solver,
                log: rs.log,
            });
        }

        self.finish(job, device, outcomes, start, None, health)
    }

    /// The lane-batched path: lockstep DOPRI5 over lane-groups, with
    /// masked per-lane step control and lane compaction.
    fn run_lanes(&self, job: &SimulationJob, width: usize) -> Result<BatchResult, SimError> {
        let start = Instant::now();
        let device = Device::new(self.device_config.clone());
        let batch = job.batch_size();

        device
            .record_host_phase("io::h2d", h2d_bytes(job) as f64 * batch as f64 / PCIE_BYTES_PER_NS);

        // Lane-groups — not single members — are the unit of work the
        // executor's workers self-schedule; each group's shard is absorbed
        // in group order, so the timeline (and every trajectory) is bitwise
        // identical at any worker count.
        let dp = DpModel::default();
        let group_capacity = width * MEMBERS_PER_LANE;
        let n_groups = batch.div_ceil(group_capacity);
        let groups = self.executor.try_map_with_cancel(
            n_groups,
            &self.cancel,
            SolverScratch::new,
            |scratch, g| {
                let lo = g * group_capacity;
                let hi = ((g + 1) * group_capacity).min(batch);
                self.solve_lane_group(job, g, lo, hi, width, scratch, &dp)
            },
        )?;

        let mut outcomes = Vec::with_capacity(batch);
        let mut health = BatchHealth::default();
        for group in groups {
            let (group_outcomes, report, stiff_report, shard, group_health) =
                group.unwrap_or_else(|fault| panic!("{fault}"));
            device.record_lane_group(&LaneGroupStats {
                width: report.width,
                lockstep_iters: report.lockstep_iters,
                lane_steps: report.lane_steps,
            });
            if let Some(sr) = stiff_report {
                device.record_lane_group(&LaneGroupStats {
                    width: sr.width,
                    lockstep_iters: sr.lockstep_iters,
                    lane_steps: sr.lane_steps,
                });
            }
            device.absorb_shard(shard);
            health.absorb(&group_health);
            outcomes.extend(group_outcomes);
        }

        let lanes = Some(device.lane_accounting());
        self.finish(job, device, outcomes, start, lanes, health)
    }

    /// Solves members `lo..hi` as one lane-group of width `width`:
    /// Jacobian-diagonal triage into **two lockstep classes** — non-stiff
    /// members integrate under [`Dopri5Batch`], stiff members under
    /// [`Radau5Batch`] — plus the group's device billing, all on a
    /// worker-private shard.
    ///
    /// Fault-planned members are **evicted** from both lockstep classes at
    /// assembly and solved scalar under panic containment: a lane that
    /// panics mid-sweep would otherwise tear down its whole group, and a
    /// faulted lane's injected call ordinals would shift with lane packing.
    /// Eviction keeps both the blast radius and the fault schedule
    /// per-member.
    #[allow(clippy::too_many_arguments)]
    fn solve_lane_group(
        &self,
        job: &SimulationJob,
        g: usize,
        lo: usize,
        hi: usize,
        width: usize,
        scratch: &mut SolverScratch,
        dp: &DpModel,
    ) -> (Vec<SimOutcome>, LaneReport, Option<LaneReport>, TimelineShard, BatchHealth) {
        let odes = job.odes();
        let n = odes.n_species();
        let bdf1 = Bdf::with_max_order(1);
        let dopri5 = Dopri5::new();
        let radau5 = Radau5::new();
        let count = hi - lo;
        let mut health = BatchHealth::default();

        // P2-style triage on the analytic Jacobian diagonal at t = 0:
        // members whose fastest local decay already exceeds the published
        // threshold route to the stiff lockstep class (lane-batched RADAU5)
        // instead of the explicit one, so one stiff member cannot drag a
        // DOPRI5 group through tiny steps — and a crowd of stiff members no
        // longer serializes into scalar solves.
        let mut stiff = vec![false; count];
        let mut evicted = vec![false; count];
        let mut diag = vec![0.0; n];
        for (slot, i) in (lo..hi).enumerate() {
            let (x0, k) = job.member(i);
            odes.jacobian_diag_batch(1, x0, k, &mut diag);
            let fastest = diag.iter().fold(0.0f64, |a, &d| a.max(d.abs()));
            stiff[slot] = fastest >= STIFFNESS_THRESHOLD;
            evicted[slot] = job.fault_plan().faults_for(i).is_some();
        }

        let lane_members: Vec<usize> =
            (lo..hi).filter(|&i| !stiff[i - lo] && !evicted[i - lo]).collect();
        let stiff_members: Vec<usize> =
            (lo..hi).filter(|&i| stiff[i - lo] && !evicted[i - lo]).collect();
        let mut report = LaneReport { width, ..LaneReport::default() };
        let mut lane_results = Vec::new();
        if !lane_members.is_empty() {
            let mut sys = RbmBatchSystem::new(odes, width);
            for &i in &lane_members {
                let (x0, k) = job.member(i);
                sys.push_member(x0, k);
            }
            let (res, rep) = Dopri5Batch::new().solve_group(
                &mut sys,
                0.0,
                job.time_points(),
                job.options(),
                scratch,
            );
            lane_results = res;
            report = rep;
        }

        let mut stiff_report = None;
        let mut stiff_results = Vec::new();
        if !stiff_members.is_empty() {
            let mut sys = RbmBatchSystem::new(odes, width);
            for &i in &stiff_members {
                let (x0, k) = job.member(i);
                sys.push_member(x0, k);
            }
            let (res, rep) = Radau5Batch::new().solve_group(
                &mut sys,
                0.0,
                job.time_points(),
                job.options(),
                scratch,
            );
            stiff_results = res;
            stiff_report = Some(rep);
        }

        let mut shard = TimelineShard::new();

        // Bill the lockstep work as one wide kernel: n species × L lanes
        // across threads, flops inflated by the divergence factor (masked
        // lanes burn issue slots), and host launch latency once per
        // lockstep sweep — not once per member step, which is the whole
        // point of the lane path.
        if !lane_members.is_empty() {
            let mut lane_stats = StepStats::default();
            for r in &lane_results {
                match r {
                    Ok(s) => lane_stats.absorb(&s.stats),
                    Err(f) => lane_stats.absorb(&f.stats),
                }
            }
            let work = WorkEstimate::from_stats(odes, &lane_stats, job.time_points().len());
            let group_stats = LaneGroupStats {
                width: report.width,
                lockstep_iters: report.lockstep_iters,
                lane_steps: report.lane_steps,
            };
            let threads = (n * width).max(1);
            let tpb = threads.clamp(1, 128);
            let blocks = threads.div_ceil(tpb).max(1);
            let threads_total = (tpb * blocks) as u64;
            let flops = ((work.flops as f64 * group_stats.divergence_factor()) as u64).max(1);
            let per_thread = ThreadWork::new()
                .with_flops((flops / threads_total).max(1))
                .with_read(
                    MemorySpace::CachedGlobal,
                    ((work.state_bytes + work.structure_bytes) / threads_total).max(1),
                )
                .with_global_write((work.output_bytes / threads_total).max(1));
            shard.launch(
                &self.device_config,
                dp,
                &KernelLaunch::uniform(
                    format!("integrate::lane_group{g}"),
                    blocks,
                    tpb,
                    per_thread,
                )
                .with_registers(48),
            );
            let launches = (report.lockstep_iters * KERNELS_PER_STEP).saturating_sub(1);
            shard.record_host_phase(
                "integrate::step_launches",
                launches as f64 * self.device_config.kernel_launch_ns,
            );
        }

        // The stiff class is billed the same way: one wide kernel for the
        // whole lockstep RADAU5 group (its Newton sweeps and batched LU
        // solves all happen inside one launch per lockstep tick), plus host
        // launch latency once per tick — where the pre-lane design paid
        // per-member, per-step launches for every stiff member.
        if let Some(sr) = &stiff_report {
            let mut lane_stats = StepStats::default();
            for r in &stiff_results {
                match r {
                    Ok(s) => lane_stats.absorb(&s.stats),
                    Err(f) => lane_stats.absorb(&f.stats),
                }
            }
            let work = WorkEstimate::from_stats(odes, &lane_stats, job.time_points().len());
            let group_stats = LaneGroupStats {
                width: sr.width,
                lockstep_iters: sr.lockstep_iters,
                lane_steps: sr.lane_steps,
            };
            let threads = (n * width).max(1);
            let tpb = threads.clamp(1, 128);
            let blocks = threads.div_ceil(tpb).max(1);
            let threads_total = (tpb * blocks) as u64;
            let flops = ((work.flops as f64 * group_stats.divergence_factor()) as u64).max(1);
            let per_thread = ThreadWork::new()
                .with_flops((flops / threads_total).max(1))
                .with_read(
                    MemorySpace::CachedGlobal,
                    ((work.state_bytes + work.structure_bytes) / threads_total).max(1),
                )
                .with_global_write((work.output_bytes / threads_total).max(1));
            shard.launch(
                &self.device_config,
                dp,
                &KernelLaunch::uniform(
                    format!("integrate::radau_lane_group{g}"),
                    blocks,
                    tpb,
                    per_thread,
                )
                .with_registers(48),
            );
            let launches = (sr.lockstep_iters * KERNELS_PER_STEP).saturating_sub(1);
            shard.record_host_phase(
                "integrate::step_launches",
                launches as f64 * self.device_config.kernel_launch_ns,
            );
        }

        // Merge lane results with the scalar-solved members in member
        // order; evicted and rerouted members are billed like the scalar
        // baseline (their own per-member kernel + per-step launches).
        let mut outcomes = Vec::with_capacity(count);
        let mut lane_iter = lane_results.into_iter();
        let mut stiff_iter = stiff_results.into_iter();
        for (slot, i) in (lo..hi).enumerate() {
            if evicted[slot] {
                // Stiff evicted members go straight to scalar RADAU5 (the
                // bitwise twin of their would-be lane), so a fault plan
                // never changes which method a member runs under.
                let rs = if stiff[slot] {
                    solve_member_recovered(
                        job,
                        i,
                        (&radau5, "radau5"),
                        None,
                        |_| false,
                        &self.recovery,
                        scratch,
                    )
                } else {
                    solve_member_recovered(
                        job,
                        i,
                        (&dopri5, "dopri5"),
                        Some((&bdf1, "bdf1")),
                        reroutable,
                        &self.recovery,
                        scratch,
                    )
                };
                self.bill_scalar_member(&mut shard, job, i, &rs.stats, dp, n);
                health.evicted_lanes += 1;
                health.observe(&rs.solution, &rs.log);
                outcomes.push(SimOutcome {
                    solution: rs.solution,
                    stiff: stiff[slot],
                    rerouted: rs.log.rerouted,
                    solver: rs.solver,
                    log: rs.log,
                });
                continue;
            }
            if stiff[slot] {
                let first = stiff_iter.next().expect("one lane result per stiff member");
                // The lane attempt was billed in the group-wide RADAU5
                // kernel; the ladder continues from a zero-stats copy.
                let first = match first {
                    Ok(sol) => Ok(sol),
                    Err(f) => Err(SolveFailure { error: f.error, stats: StepStats::default() }),
                };
                let rs = continue_ladder(
                    job,
                    i,
                    first,
                    "radau5-lanes",
                    (&radau5, "radau5"),
                    None,
                    |_| false,
                    &self.recovery,
                    self.recovery.base_options(job),
                    scratch,
                );
                if rs.log.attempts > 1 {
                    self.bill_scalar_member(&mut shard, job, i, &rs.stats, dp, n);
                }
                health.observe(&rs.solution, &rs.log);
                outcomes.push(SimOutcome {
                    solution: rs.solution,
                    stiff: true,
                    rerouted: rs.log.rerouted,
                    solver: rs.solver,
                    log: rs.log,
                });
                continue;
            }
            let first = lane_iter.next().expect("one lane result per non-stiff member");
            // The lane attempt's work was already billed in the group-wide
            // kernel above, so the ladder continues from a zero-stats copy
            // of the failure; only genuine retries bill a scalar kernel.
            let first = match first {
                Ok(sol) => Ok(sol),
                Err(f) => Err(SolveFailure { error: f.error, stats: StepStats::default() }),
            };
            let rs = continue_ladder(
                job,
                i,
                first,
                "dopri5-lanes",
                (&dopri5, "dopri5"),
                Some((&bdf1, "bdf1")),
                reroutable,
                &self.recovery,
                self.recovery.base_options(job),
                scratch,
            );
            if rs.log.attempts > 1 {
                self.bill_scalar_member(&mut shard, job, i, &rs.stats, dp, n);
            }
            health.observe(&rs.solution, &rs.log);
            outcomes.push(SimOutcome {
                solution: rs.solution,
                stiff: false,
                rerouted: rs.log.rerouted,
                solver: rs.solver,
                log: rs.log,
            });
        }
        (outcomes, report, stiff_report, shard, health)
    }

    /// Prices one scalar-solved member the published-baseline way: species
    /// across threads in a per-member kernel, host launches at every step.
    fn bill_scalar_member(
        &self,
        shard: &mut TimelineShard,
        job: &SimulationJob,
        i: usize,
        stats: &StepStats,
        dp: &DpModel,
        n: usize,
    ) {
        let work = WorkEstimate::from_stats(job.odes(), stats, job.time_points().len());
        let tpb = n.clamp(1, 128);
        let blocks = n.div_ceil(tpb).max(1);
        let threads_total = (tpb * blocks) as u64;
        let per_thread = ThreadWork::new()
            .with_flops((work.flops / threads_total).max(1))
            .with_read(
                MemorySpace::CachedGlobal,
                ((work.state_bytes + work.structure_bytes) / threads_total).max(1),
            )
            .with_global_write((work.output_bytes / threads_total).max(1));
        shard.launch(
            &self.device_config,
            dp,
            &KernelLaunch::uniform(format!("integrate::fine_sim{i}"), blocks, tpb, per_thread)
                .with_registers(48),
        );
        // Host-side launch latency for every remaining kernel of every
        // step (the single launch above already charged one).
        let launches = (stats.steps as u64 * KERNELS_PER_STEP).saturating_sub(1);
        shard.record_host_phase(
            "integrate::step_launches",
            launches as f64 * self.device_config.kernel_launch_ns,
        );
    }

    /// Shared tail: output phases + result assembly.
    fn finish(
        &self,
        job: &SimulationJob,
        device: Device,
        outcomes: Vec<SimOutcome>,
        start: Instant,
        lanes: Option<paraspace_vgpu::LaneAccounting>,
        health: BatchHealth,
    ) -> Result<BatchResult, SimError> {
        let out_bytes = output_bytes(job, &outcomes);
        device.record_host_phase("io::d2h", out_bytes as f64 / PCIE_BYTES_PER_NS);
        device.record_host_phase("io::write", out_bytes as f64 / IO_BYTES_PER_NS);

        let timeline = device.timeline();
        Ok(BatchResult {
            engine: self.name(),
            outcomes,
            timing: BatchTiming {
                host_wall: start.elapsed(),
                simulated_total_ns: timeline.total_ns(),
                simulated_integration_ns: timeline.time_tagged_ns("integrate"),
                simulated_io_ns: timeline.time_tagged_ns("io"),
            },
            lanes,
            health,
        })
    }
}

/// Input-staging bytes per batch member (structure + state + constants).
fn h2d_bytes(job: &SimulationJob) -> u64 {
    let n = job.odes().n_species();
    let m = job.odes().n_reactions();
    (job.odes().n_terms() as u64 * 12 + m as u64 * 8) + (n + m) as u64 * 8
}

/// Whether a solver failure is stiffness-shaped and worth a BDF1 retry.
fn reroutable(e: &SolverError) -> bool {
    matches!(
        e,
        SolverError::MaxStepsExceeded { .. }
            | SolverError::StepSizeUnderflow { .. }
            | SolverError::StiffnessDetected { .. }
    )
}

impl Simulator for FineEngine {
    fn name(&self) -> &'static str {
        "fine"
    }

    fn run(&self, job: &SimulationJob) -> Result<BatchResult, SimError> {
        let width = self.resolved_lane_width(job);
        if width <= 1 {
            self.run_scalar(job)
        } else {
            self.run_lanes(job, width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FineCoarseEngine;
    use paraspace_rbm::{Kinetics, Parameterization, Reaction, ReactionBasedModel};

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
        m
    }

    /// A batch of distinct gentle parameterizations (forces real per-lane
    /// divergence in step sizes without anyone failing).
    fn varied_job(m: &ReactionBasedModel, members: usize) -> SimulationJob<'_> {
        let mut b = SimulationJob::builder(m).time_points(vec![0.5, 1.0]);
        for i in 0..members {
            b = b.parameterization(
                Parameterization::new()
                    .with_rate_constants(vec![0.5 + 0.25 * i as f64, 0.4 + 0.05 * i as f64]),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn single_simulation_succeeds_and_matches() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let fine = FineEngine::new().run(&job).unwrap();
        let fc = FineCoarseEngine::new().run(&job).unwrap();
        let a = fine.outcomes[0].solution.as_ref().unwrap();
        let b = fc.outcomes[0].solution.as_ref().unwrap();
        for (x, y) in a.state_at(0).iter().zip(b.state_at(0)) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn stiff_member_switches_to_bdf1() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![5e5, 5e5]))
            .build()
            .unwrap();
        let r = FineEngine::new().run(&job).unwrap();
        assert_eq!(r.outcomes[0].solver, "bdf1");
        assert!(r.outcomes[0].solution.is_ok());
    }

    #[test]
    fn serialization_across_simulations_hurts_batches() {
        // Per-simulation simulated time must grow ~linearly with batch size
        // on the scalar path (no coarse-grained parallelism) — the
        // published weakness the lane path exists to fix.
        let m = model();
        let job1 = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build().unwrap();
        let job8 = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(8).build().unwrap();
        let r1 = FineEngine::new().with_lane_width(1).run(&job1).unwrap();
        let r8 = FineEngine::new().with_lane_width(1).run(&job8).unwrap();
        assert!(
            r8.timing.simulated_total_ns > 6.0 * r1.timing.simulated_total_ns,
            "{} vs {}",
            r8.timing.simulated_total_ns,
            r1.timing.simulated_total_ns
        );
    }

    #[test]
    fn loses_to_fine_coarse_on_batches() {
        let m = model();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(64).build().unwrap();
        let fine = FineEngine::new().with_lane_width(1).run(&job).unwrap();
        let fc = FineCoarseEngine::new().run(&job).unwrap();
        assert!(
            fine.timing.simulated_integration_ns > fc.timing.simulated_integration_ns,
            "fine {} must lose to fine+coarse {}",
            fine.timing.simulated_integration_ns,
            fc.timing.simulated_integration_ns
        );
    }

    #[test]
    fn lane_results_are_bitwise_stable_across_widths_and_threads() {
        let m = model();
        let job = varied_job(&m, 13);
        let r2 = FineEngine::new().with_lane_width(2).run(&job).unwrap();
        let r8 = FineEngine::new().with_lane_width(8).run(&job).unwrap();
        let r8t = FineEngine::new().with_lane_width(8).with_threads(4).run(&job).unwrap();
        for i in 0..job.batch_size() {
            let a = r2.outcomes[i].solution.as_ref().unwrap();
            let b = r8.outcomes[i].solution.as_ref().unwrap();
            let c = r8t.outcomes[i].solution.as_ref().unwrap();
            assert_eq!(a.states, b.states, "member {i}: width 2 vs 8");
            assert_eq!(b.states, c.states, "member {i}: 1 vs 4 threads");
            assert_eq!(r2.outcomes[i].solver, "dopri5-lanes");
        }
        // The modeled timeline is also thread-count independent.
        assert_eq!(r8.timing.simulated_total_ns, r8t.timing.simulated_total_ns);
        assert_eq!(r8.lanes, r8t.lanes);
    }

    #[test]
    fn lane_batching_amortizes_host_launches() {
        let m = model();
        let job = varied_job(&m, 8);
        let scalar = FineEngine::new().with_lane_width(1).run(&job).unwrap();
        let lanes = FineEngine::new().with_lane_width(8).run(&job).unwrap();
        assert!(
            lanes.timing.simulated_integration_ns < scalar.timing.simulated_integration_ns,
            "lane path {} must beat scalar serialization {}",
            lanes.timing.simulated_integration_ns,
            scalar.timing.simulated_integration_ns
        );
        let acc = lanes.lanes.expect("lane path must report occupancy");
        assert!(acc.groups >= 1);
        assert!(acc.occupancy() > 0.0 && acc.occupancy() <= 1.0);
        assert_eq!(acc.max_width, 8);
        assert!(scalar.lanes.is_none());
    }

    #[test]
    fn stiff_members_form_radau_lane_groups() {
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![1.0, 0.4]))
            .parameterization(Parameterization::new().with_rate_constants(vec![5e5, 5e5]))
            .parameterization(Parameterization::new().with_rate_constants(vec![1.2, 0.4]))
            .build()
            .unwrap();
        let r = FineEngine::new().run(&job).unwrap();
        assert_eq!(r.outcomes[0].solver, "dopri5-lanes");
        assert_eq!(r.outcomes[1].solver, "radau5-lanes");
        assert!(r.outcomes[1].stiff);
        assert!(r.outcomes[1].solution.is_ok());
        assert_eq!(r.outcomes[2].solver, "dopri5-lanes");
    }

    #[test]
    fn stiff_lane_members_are_bitwise_identical_to_scalar_radau() {
        use paraspace_solvers::{OdeSolver, Radau5, SolverScratch};
        let m = model();
        let mut b = SimulationJob::builder(&m).time_points(vec![0.5, 1.0]);
        for i in 0..6 {
            b = b.parameterization(
                Parameterization::new()
                    .with_rate_constants(vec![2e5 + 1e4 * i as f64, 3e5 + 2e4 * i as f64]),
            );
        }
        let job = b.build().unwrap();
        let r4 = FineEngine::new().with_lane_width(4).run(&job).unwrap();
        let r8 = FineEngine::new().with_lane_width(8).with_threads(4).run(&job).unwrap();
        let mut scratch = SolverScratch::new();
        for i in 0..job.batch_size() {
            assert_eq!(r4.outcomes[i].solver, "radau5-lanes");
            assert!(r4.outcomes[i].stiff);
            let (x0, k) = job.member(i);
            let sys = crate::RbmOdeSystem::new(job.odes(), k.to_vec());
            let reference = Radau5::new()
                .solve_pooled(&sys, 0.0, x0, job.time_points(), job.options(), &mut scratch)
                .unwrap();
            let a = r4.outcomes[i].solution.as_ref().unwrap();
            let b = r8.outcomes[i].solution.as_ref().unwrap();
            assert_eq!(a.states, reference.states, "member {i}: width 4 vs scalar");
            assert_eq!(b.states, reference.states, "member {i}: width 8 vs scalar");
        }
    }

    #[test]
    fn non_mass_action_models_fall_back_to_scalar_path() {
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 2.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(4).build().unwrap();
        let r = FineEngine::new().run(&job).unwrap();
        assert_eq!(r.success_count(), 4);
        assert!(r.lanes.is_none(), "mixed-kinetics batch must take the scalar path");
        assert!(r.outcomes.iter().all(|o| o.solver != "dopri5-lanes"));
    }
}
