//! Phase P2: batch stiffness triage.
//!
//! Every simulation is classified by the dominant eigenvalue of its
//! Jacobian at the initial state: magnitudes below the published threshold
//! of **500** go to DOPRI5, the rest to RADAU5. P3 failures (DOPRI5's own
//! stiffness detector firing mid-run, or step-budget exhaustion) are
//! re-routed to RADAU5 afterwards, so the triage only needs to be cheap,
//! not perfect.

use crate::SimulationJob;
use paraspace_linalg::{dominant_eigenvalue_estimate, Matrix};

/// The published spectral-radius threshold separating DOPRI5 from RADAU5.
pub const STIFFNESS_THRESHOLD: f64 = 500.0;

/// Result of classifying one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StiffnessClass {
    /// Estimated dominant eigenvalue magnitude of the Jacobian at `t = 0`.
    pub dominant_eigenvalue: f64,
    /// `true` routes the simulation to the implicit (RADAU5) path.
    pub stiff: bool,
}

/// Classifies every batch member (phase P2).
///
/// Returns one [`StiffnessClass`] per simulation, in batch order.
///
/// # Example
///
/// ```
/// use paraspace_core::{classify_batch, SimulationJob};
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 1.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1e4))?; // fast decay
/// let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(1).build()?;
/// let classes = classify_batch(&job);
/// assert!(classes[0].stiff);
/// # Ok(())
/// # }
/// ```
pub fn classify_batch(job: &SimulationJob) -> Vec<StiffnessClass> {
    classify_batch_with_threshold(job, STIFFNESS_THRESHOLD)
}

/// [`classify_batch`] with an explicit threshold (the stiffness-threshold
/// ablation sweeps this knob).
pub fn classify_batch_with_threshold(job: &SimulationJob, threshold: f64) -> Vec<StiffnessClass> {
    let n = job.odes().n_species();
    let mut jac = Matrix::zeros(n, n);
    (0..job.batch_size())
        .map(|i| {
            let (x0, k) = job.member(i);
            job.odes().jacobian_with(x0, k, &mut jac);
            let lambda = dominant_eigenvalue_estimate(&jac);
            StiffnessClass { dominant_eigenvalue: lambda, stiff: lambda >= threshold }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Parameterization, Reaction, ReactionBasedModel};

    fn decay_model(k: f64) -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], k)).unwrap();
        m
    }

    #[test]
    fn gentle_model_is_nonstiff() {
        let m = decay_model(0.5);
        let job = SimulationJob::builder(&m).time_points(vec![1.0]).replicate(3).build().unwrap();
        for c in classify_batch(&job) {
            assert!(!c.stiff);
            assert!(c.dominant_eigenvalue < STIFFNESS_THRESHOLD);
        }
    }

    #[test]
    fn classification_is_per_member() {
        // Same network, two parameterizations straddling the threshold.
        let m = decay_model(1.0);
        let job = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .parameterization(Parameterization::new().with_rate_constants(vec![1.0]))
            .parameterization(Parameterization::new().with_rate_constants(vec![1e5]))
            .build()
            .unwrap();
        let classes = classify_batch(&job);
        assert!(!classes[0].stiff);
        assert!(classes[1].stiff);
        assert!(classes[1].dominant_eigenvalue > classes[0].dominant_eigenvalue);
    }

    #[test]
    fn threshold_matches_publication() {
        assert_eq!(STIFFNESS_THRESHOLD, 500.0);
    }
}
