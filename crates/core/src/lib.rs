// Index-based loops are used deliberately throughout the numerical
// kernels: they mirror the reference Fortran/C formulations and keep
// multi-array stride arithmetic explicit.
#![allow(clippy::needless_range_loop)]

//! Batch deterministic simulation engines for biological parameter-space
//! analysis — the reproduction target's primary contribution.
//!
//! A [`SimulationJob`] pairs a reaction-based model with a batch of
//! parameterizations, sampling times, and tolerances. Four [`Simulator`]
//! engines execute jobs:
//!
//! | engine | granularity | solvers | models |
//! |---|---|---|---|
//! | [`FineCoarseEngine`] | **fine × coarse** (the contribution) | DOPRI5 → RADAU5 re-route | batch across threads *and* each ODE system across child-grid threads via dynamic parallelism |
//! | [`CoarseEngine`] | coarse only (cupSODA-class) | LSODA per thread | one simulation per device thread; small models live in constant/shared memory |
//! | [`FineEngine`] | fine only (LASSIE-class) | RKF45 ↔ BDF1 | one simulation at a time, species across threads, host-side kernel launches per step |
//! | [`CpuEngine`] | sequential | LSODA or VODE | the SciPy-style CPU baselines |
//!
//! Every engine executes the **same numerics on the host** (bit-exact
//! trajectories via `paraspace-solvers`) and reports two clocks:
//!
//! * `host_wall` — real elapsed time of this process, and
//! * `simulated_*` — the modeled time on the engine's hardware (the
//!   virtual GPU of `paraspace-vgpu`, or a calibrated CPU cost model),
//!   split into *integration* time and *simulation* (total, incl. I/O)
//!   time exactly as the published tables are.
//!
//! The pipeline follows the published five phases: P1 ODE encoding (host),
//! P2 stiffness triage by dominant Jacobian eigenvalue (threshold 500), P3
//! DOPRI5 batch, P4 RADAU5 batch (stiff + P3 failures), P5 output (host).
//!
//! # Example
//!
//! ```
//! use paraspace_core::{CpuEngine, CpuSolverKind, SimulationJob, Simulator};
//! use paraspace_rbm::{Reaction, ReactionBasedModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = ReactionBasedModel::new();
//! let a = model.add_species("A", 1.0);
//! model.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 0.7))?;
//!
//! let job = SimulationJob::builder(&model)
//!     .time_points(vec![1.0, 2.0])
//!     .replicate(4) // 4 identical parameterizations
//!     .build()?;
//! let result = CpuEngine::new(CpuSolverKind::Lsoda).run(&job)?;
//! assert_eq!(result.outcomes.len(), 4);
//! # Ok(())
//! # }
//! ```

mod cost;
mod engines;
mod error;
mod job;
mod lanes;
mod recovery;
mod select;
mod stiffness;
mod system;

pub use cost::{CpuCostModel, WorkEstimate};
pub use engines::{
    taxonomy, AutoEngine, BatchHealth, BatchResult, BatchTiming, CoarseEngine, CpuEngine,
    CpuSolverKind, FailureCounts, FineCoarseEngine, FineEngine, SimOutcome, Simulator,
};
pub use error::SimError;
pub use job::{JobBuilder, SimulationJob};
pub use lanes::{auto_lane_width, auto_sens_lane_width, auto_stoch_lane_width};
/// Cooperative cancellation vocabulary, re-exported so engine callers can
/// wire a token without importing the executor crate directly.
pub use paraspace_exec::{CancelToken, Cancelled};
/// Deterministic fault-injection vocabulary, re-exported so batch callers
/// can build a [`SimulationJob`] fault plan without importing the solver
/// crate directly.
pub use paraspace_solvers::{ChaosSystem, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use recovery::{RecoveryLog, RecoveryPolicy};
pub use select::{recommend_engine, EngineKind};
pub use stiffness::{
    classify_batch, classify_batch_with_threshold, StiffnessClass, STIFFNESS_THRESHOLD,
};
pub use system::{
    CustomOdeSystem, RbmBatchSystem, RbmOdeSystem, RbmSensBatchSystem, RbmSensSystem,
};
