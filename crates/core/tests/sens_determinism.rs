//! Sensitivity-lane bitwise determinism: per-member forward sensitivities
//! must be byte-identical across lane widths {2, 4, 8} and thread counts
//! {1, 8}.
//!
//! The augmented system `[y; s₀; …; s_{p−1}]` rides through `Dopri5Batch`
//! as extra SoA rows; the lockstep contract (every lane an unshared
//! dependency chain, evaluated in the same order at any width) must carry
//! over to the widened state, and host-parallel partitioning of the member
//! queue must not perturb a single bit either. The stiff staggered path
//! (`Radau5Sens`) is scalar per member, so its thread invariance is checked
//! the same way: partitioned runs against a sequential reference.

use paraspace_core::{RbmSensBatchSystem, RbmSensSystem};
use paraspace_rbm::{Reaction, ReactionBasedModel};
use paraspace_solvers::{
    Dopri5Batch, Radau5Sens, SensSolution, Solution, SolverOptions, SolverScratch,
};

/// A 3-species loop with distinct per-member constants: enough structure
/// for non-trivial Jacobian coupling, cheap enough for a matrix of runs.
fn loop_model() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.2);
    let c = m.add_species("C", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(c, 1)], 0.7)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(c, 1)], &[(a, 1)], 0.3)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(a, 1), (b, 1)], &[(c, 1)], 0.05)).unwrap();
    m
}

fn member_constants(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let f = 1.0 + 0.13 * i as f64;
            vec![1.0 * f, 0.7 / f, 0.3 * f, 0.05]
        })
        .collect()
}

/// Solves every member through the lockstep augmented lanes at `width`.
fn solve_lanes(
    odes: &paraspace_rbm::CompiledOdes,
    which: &[usize],
    ks: &[Vec<f64>],
    x0: &[f64],
    times: &[f64],
    width: usize,
) -> Vec<Solution> {
    let mut sys = RbmSensBatchSystem::new(odes, which.to_vec(), width);
    for k in ks {
        sys.push_member(x0, k);
    }
    let mut scratch = SolverScratch::new();
    let (results, _) =
        Dopri5Batch::new().solve_group(&mut sys, 0.0, times, &SolverOptions::default(), &mut scratch);
    results.into_iter().map(|r| r.expect("member must integrate")).collect()
}

#[test]
fn sens_lanes_are_bitwise_independent_of_lane_width() {
    let m = loop_model();
    let odes = m.compile().unwrap();
    let which = [0usize, 1, 3];
    let ks = member_constants(9); // not a multiple of any width: ragged tail
    let x0 = m.initial_state();
    let times = [0.4, 1.1, 2.5];

    let w2 = solve_lanes(&odes, &which, &ks, &x0, &times, 2);
    let w4 = solve_lanes(&odes, &which, &ks, &x0, &times, 4);
    let w8 = solve_lanes(&odes, &which, &ks, &x0, &times, 8);
    for i in 0..ks.len() {
        assert_eq!(w2[i].states, w4[i].states, "member {i}: width 2 vs 4");
        assert_eq!(w2[i].states, w8[i].states, "member {i}: width 2 vs 8");
        assert_eq!(w2[i].stats, w4[i].stats, "member {i}: stats 2 vs 4");
        assert_eq!(w2[i].stats, w8[i].stats, "member {i}: stats 2 vs 8");
    }
}

#[test]
fn sens_lanes_are_bitwise_independent_of_thread_count() {
    let m = loop_model();
    let odes = m.compile().unwrap();
    let which = [0usize, 2];
    let ks = member_constants(16);
    let x0 = m.initial_state();
    let times = [0.5, 1.5];

    // Reference: one thread, one queue.
    let sequential = solve_lanes(&odes, &which, &ks, &x0, &times, 4);

    // 8 threads, each owning a deterministic slice of the member queue
    // with its own lane-group — the shape the host-parallel executor uses.
    let chunk = ks.len().div_ceil(8);
    let partitioned: Vec<Solution> = std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .chunks(chunk)
            .map(|ks_part| {
                let odes = &odes;
                let x0 = &x0;
                let which = &which;
                scope.spawn(move || solve_lanes(odes, which, ks_part, x0, &times, 4))
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(partitioned.len(), sequential.len());
    for i in 0..ks.len() {
        assert_eq!(sequential[i].states, partitioned[i].states, "member {i}");
        assert_eq!(sequential[i].stats, partitioned[i].stats, "member {i}");
    }
}

#[test]
fn staggered_radau_sens_is_bitwise_independent_of_thread_count() {
    let m = loop_model();
    let odes = m.compile().unwrap();
    let which = vec![0usize, 1];
    let ks = member_constants(8);
    let x0 = m.initial_state();
    let times = [0.5, 2.0];
    let opts = SolverOptions::default();

    let solve_one = |k: &Vec<f64>| -> SensSolution {
        let sys = RbmSensSystem::new(&odes, k.clone(), which.clone());
        Radau5Sens::new().solve(&sys, 0.0, &x0, &times, &opts).unwrap()
    };

    let sequential: Vec<SensSolution> = ks.iter().map(solve_one).collect();
    let threaded: Vec<SensSolution> = std::thread::scope(|scope| {
        let solve_one = &solve_one;
        let handles: Vec<_> = ks.iter().map(|k| scope.spawn(move || solve_one(k))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for i in 0..ks.len() {
        assert_eq!(sequential[i].solution.states, threaded[i].solution.states, "member {i}");
        assert_eq!(sequential[i].sens, threaded[i].sens, "member {i} sensitivities");
    }
}
