//! End-to-end fault-containment suite: deterministic chaos injection
//! against whole batches.
//!
//! A 256-member batch carries eight hostile members — panicking RHS,
//! NaN-producing RHS, and high-frequency "stall" dynamics that chew
//! through the step budget. The contract under test:
//!
//! * the batch **never aborts**: every run returns a full `BatchResult`
//!   with one outcome per member;
//! * exactly the faulted members fail, each under the right
//!   [`SolverError`] taxonomy, itemized in [`BatchHealth`];
//! * the whole result — trajectories, outcomes, modeled timeline, health —
//!   is bitwise identical across worker-thread counts, and trajectories/
//!   health across lane widths;
//! * faulted members are evicted from lockstep lane groups and their
//!   lane-path results match a direct scalar solve of the same member.

use paraspace_core::{
    BatchResult, CpuEngine, CpuSolverKind, FaultPlan, FaultSpec, FineCoarseEngine, FineEngine,
    RbmOdeSystem, RecoveryPolicy, SimulationJob, Simulator,
};
use paraspace_rbm::{perturbed_batch, Parameterization, Reaction, ReactionBasedModel};
use paraspace_solvers::{ChaosSystem, Dopri5, OdeSolver, Radau5, SolverError, SolverOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 256;
const PANICKERS: [usize; 3] = [10, 97, 201];
const NANNERS: [usize; 3] = [33, 128, 255];
const STALLERS: [usize; 2] = [64, 180];

fn model() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.2)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
    m
}

/// The 256-member batch with 8 deterministically faulted members.
fn chaos_job(m: &ReactionBasedModel) -> SimulationJob<'_> {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut plan = FaultPlan::new();
    for &i in &PANICKERS {
        plan = plan.with_fault(i, FaultSpec::panic_at_time(0.3));
    }
    for &i in &NANNERS {
        plan = plan.with_fault(i, FaultSpec::nan_at_time(0.2));
    }
    for &i in &STALLERS {
        plan = plan.with_fault(i, FaultSpec::stall_at_time(0.1));
    }
    SimulationJob::builder(m)
        .time_points(vec![0.5, 1.0])
        .parameterizations(perturbed_batch(m, BATCH, &mut rng))
        .fault_plan(plan)
        .build()
        .unwrap()
}

/// Stall faults produce bounded-but-wild dynamics that would otherwise
/// grind through `max_steps` slowly; a modest per-member step budget is
/// the deterministic stand-in for a wall-clock deadline.
fn policy() -> RecoveryPolicy {
    RecoveryPolicy { step_budget: Some(4000), ..RecoveryPolicy::default() }
}

fn assert_chaos_health(r: &BatchResult, evicted: usize, label: &str) {
    assert_eq!(r.outcomes.len(), BATCH, "{label}: no aborted members");
    assert_eq!(r.success_count(), BATCH - 8, "{label}: exactly the faulted members fail");
    let h = &r.health;
    assert_eq!(h.members, BATCH, "{label}: members observed");
    assert_eq!(h.succeeded, BATCH - 8, "{label}: successes");
    assert_eq!(h.failed.total(), 8, "{label}: failures itemized");
    assert_eq!(h.failed.internal, PANICKERS.len(), "{label}: contained panics");
    assert_eq!(h.failed.non_finite_state, NANNERS.len(), "{label}: NaN members");
    assert_eq!(h.failed.step_budget_exhausted, STALLERS.len(), "{label}: stalled members");
    assert_eq!(h.panics_contained, PANICKERS.len(), "{label}: panic containment count");
    assert_eq!(h.evicted_lanes, evicted, "{label}: lane evictions");
    for (i, o) in r.outcomes.iter().enumerate() {
        let expect_fault = PANICKERS.contains(&i) || NANNERS.contains(&i) || STALLERS.contains(&i);
        assert_eq!(o.solution.is_err(), expect_fault, "{label}: member {i} outcome class");
        if PANICKERS.contains(&i) {
            assert!(
                matches!(&o.solution, Err(SolverError::Internal { message }) if message.contains("chaos")),
                "{label}: member {i} must report the contained panic"
            );
        }
        if NANNERS.contains(&i) {
            assert!(
                matches!(&o.solution, Err(SolverError::NonFiniteState { .. })),
                "{label}: member {i} must report the non-finite state"
            );
        }
        if STALLERS.contains(&i) {
            assert!(
                matches!(&o.solution, Err(SolverError::StepBudgetExhausted { .. })),
                "{label}: member {i} must exhaust its step budget"
            );
        }
    }
}

/// Full bitwise equality, timeline included (valid when only the worker
/// thread count differs).
fn assert_bitwise(a: &BatchResult, b: &BatchResult, label: &str) {
    assert_eq!(a.health, b.health, "{label}: health");
    assert_eq!(a.timing.simulated_total_ns, b.timing.simulated_total_ns, "{label}: total");
    assert_eq!(
        a.timing.simulated_integration_ns, b.timing.simulated_integration_ns,
        "{label}: integration"
    );
    assert_eq!(a.timing.simulated_io_ns, b.timing.simulated_io_ns, "{label}: io");
    assert_outcomes_bitwise(a, b, label);
}

/// Per-member bitwise equality of trajectories and failures (valid across
/// lane widths too, where group packing legitimately shifts the timeline).
fn assert_outcomes_bitwise(a: &BatchResult, b: &BatchResult, label: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{label}: batch size");
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.solver, y.solver, "{label}: member {i} solver");
        match (&x.solution, &y.solution) {
            (Ok(p), Ok(q)) => {
                assert_eq!(p.states, q.states, "{label}: member {i} trajectory");
                assert_eq!(p.stats, q.stats, "{label}: member {i} stats");
            }
            (Err(p), Err(q)) => {
                assert_eq!(p.to_string(), q.to_string(), "{label}: member {i} failure")
            }
            _ => panic!("{label}: member {i} outcome class changed"),
        }
    }
}

#[test]
fn lane_path_contains_all_faults_and_is_bitwise_deterministic_across_threads() {
    let m = model();
    let job = chaos_job(&m);
    let reference = FineEngine::new().with_lane_width(8).with_recovery(policy()).run(&job).unwrap();
    assert_chaos_health(&reference, 8, "lanes w8");
    for threads in [1, 2, 4, 8] {
        let r = FineEngine::new()
            .with_lane_width(8)
            .with_recovery(policy())
            .with_threads(threads)
            .run(&job)
            .unwrap();
        assert_bitwise(&reference, &r, &format!("lanes w8, {threads} threads"));
    }
}

#[test]
fn lane_path_outcomes_and_health_are_identical_across_lane_widths() {
    let m = model();
    let job = chaos_job(&m);
    let reference = FineEngine::new().with_lane_width(8).with_recovery(policy()).run(&job).unwrap();
    for width in [2, 4] {
        let r = FineEngine::new().with_lane_width(width).with_recovery(policy()).run(&job).unwrap();
        assert_chaos_health(&r, 8, &format!("lanes w{width}"));
        assert_outcomes_bitwise(&reference, &r, &format!("lanes w{width} vs w8"));
    }
}

#[test]
fn scalar_path_reports_the_same_fault_taxonomy() {
    // Width 1 selects the scalar RKF45 baseline — a different method, so
    // trajectories legitimately differ bitwise; the fault taxonomy, the
    // success count, and full thread-count determinism must not.
    let m = model();
    let job = chaos_job(&m);
    let reference = FineEngine::new().with_lane_width(1).with_recovery(policy()).run(&job).unwrap();
    assert_chaos_health(&reference, 0, "scalar");
    for threads in [1, 2, 4, 8] {
        let r = FineEngine::new()
            .with_lane_width(1)
            .with_recovery(policy())
            .with_threads(threads)
            .run(&job)
            .unwrap();
        assert_bitwise(&reference, &r, &format!("scalar, {threads} threads"));
    }
}

#[test]
fn evicted_members_match_direct_scalar_solves() {
    // A faulted member evicted from its lane group is solved by scalar
    // DOPRI5; an un-faulted lane member must match a direct scalar DOPRI5
    // solve of the same member (the PR-2 lockstep guarantee, preserved
    // under eviction-induced repacking).
    let m = model();
    let job = chaos_job(&m);
    let r = FineEngine::new().with_lane_width(8).with_recovery(policy()).run(&job).unwrap();
    let opts = SolverOptions { step_budget: Some(4000), ..job.options().clone() };
    for i in [0, 11, 34, 63, 65, 179, 202, 254] {
        let (x0, k) = job.member(i);
        let sys = RbmOdeSystem::new(job.odes(), k.to_vec());
        let direct = Dopri5::new().solve(&sys, 0.0, x0, job.time_points(), &opts).unwrap();
        let lane = r.outcomes[i].solution.as_ref().unwrap();
        assert_eq!(lane.states, direct.states, "member {i}: lane vs direct scalar");
    }
}

/// A 16-member all-stiff batch whose three faulted members fire *inside*
/// RADAU5's simplified-Newton iterations (the fault triggers hit the
/// Newton stage sweeps' RHS evaluations, not explicit RK stages).
fn stiff_chaos_job(m: &ReactionBasedModel) -> SimulationJob<'_> {
    let mut b = SimulationJob::builder(m).time_points(vec![0.5, 1.0]);
    for i in 0..16 {
        b = b.parameterization(
            Parameterization::new()
                .with_rate_constants(vec![1e5 + 3e3 * i as f64, 2e5 + 2e3 * i as f64]),
        );
    }
    b.fault_plan(
        FaultPlan::new()
            .with_fault(3, FaultSpec::nan_at_time(0.2))
            .with_fault(7, FaultSpec::panic_at_time(0.3))
            .with_fault(12, FaultSpec::stall_at_time(0.1)),
    )
    .build()
    .unwrap()
}

#[test]
fn stiff_faults_fire_inside_radau_newton_and_are_evicted() {
    // Faulted stiff members are evicted from their RADAU5 lane groups and
    // re-experience their faults under scalar RADAU5; every member —
    // faulted or clean — must bitwise-match a direct scalar RADAU5 solve
    // of the same member, and the whole run must be thread-deterministic.
    let m = model();
    let job = stiff_chaos_job(&m);
    let r = FineEngine::new().with_lane_width(8).with_recovery(policy()).run(&job).unwrap();
    assert_eq!(r.outcomes.len(), 16);
    assert_eq!(r.health.evicted_lanes, 3, "all fault-planned stiff members are evicted");
    assert!(
        matches!(&r.outcomes[7].solution, Err(SolverError::Internal { message }) if message.contains("chaos")),
        "panic member must be contained: {:?}",
        r.outcomes[7].solution
    );
    assert!(
        matches!(&r.outcomes[12].solution, Err(SolverError::StepBudgetExhausted { .. })),
        "stall member must exhaust its budget: {:?}",
        r.outcomes[12].solution
    );
    let opts = SolverOptions { step_budget: Some(4000), ..job.options().clone() };
    for i in 0..16 {
        assert!(r.outcomes[i].stiff, "member {i} must classify stiff");
        let (x0, k) = job.member(i);
        let sys = RbmOdeSystem::new(job.odes(), k.to_vec());
        let direct = match job.fault_plan().faults_for(i) {
            Some(faults) if i != 7 => Radau5::new().solve(
                &ChaosSystem::new(sys, faults.to_vec()),
                0.0,
                x0,
                job.time_points(),
                &opts,
            ),
            Some(_) => continue, // the panic member has no direct solve to compare
            None => Radau5::new().solve(&sys, 0.0, x0, job.time_points(), &opts),
        };
        match (&r.outcomes[i].solution, direct) {
            (Ok(lane), Ok(scalar)) => {
                assert_eq!(lane.states, scalar.states, "member {i}: lane vs direct scalar");
                assert_eq!(lane.stats, scalar.stats, "member {i}: stats");
            }
            (Err(lane), Err(scalar)) => {
                assert_eq!(lane.to_string(), scalar.error.to_string(), "member {i}: failure");
            }
            (lane, direct) => {
                panic!("member {i}: outcome class differs: {lane:?} vs {direct:?}")
            }
        }
    }
    for threads in [2, 8] {
        let rt = FineEngine::new()
            .with_lane_width(8)
            .with_recovery(policy())
            .with_threads(threads)
            .run(&job)
            .unwrap();
        assert_bitwise(&r, &rt, &format!("stiff chaos, {threads} threads"));
    }
}

#[test]
fn stiff_chaos_retries_refault_identically() {
    // Recovery retries of a faulted stiff member get a fresh ChaosSystem
    // wrapper per attempt, so the re-fault is deterministic: two full runs
    // (and two different lane widths) produce identical failures and
    // identical trajectories everywhere.
    let m = model();
    let job = stiff_chaos_job(&m);
    let policy = RecoveryPolicy { max_relaxations: 2, ..policy() };
    let a = FineEngine::new().with_lane_width(8).with_recovery(policy).run(&job).unwrap();
    let b = FineEngine::new().with_lane_width(8).with_recovery(policy).run(&job).unwrap();
    assert_bitwise(&a, &b, "stiff chaos retries, repeated runs");
    let c = FineEngine::new().with_lane_width(4).with_recovery(policy).run(&job).unwrap();
    assert_outcomes_bitwise(&a, &c, "stiff chaos retries, w8 vs w4");
    assert!(
        a.health.retries_attempted > 0,
        "the relaxation rungs must engage on the faulted members: {:?}",
        a.health
    );
}

#[test]
fn fine_coarse_engine_contains_the_same_faults() {
    let m = model();
    let job = chaos_job(&m);
    let reference = FineCoarseEngine::new().with_recovery(policy()).run(&job).unwrap();
    assert_chaos_health(&reference, 0, "fine-coarse");
    for threads in [1, 8] {
        let r = FineCoarseEngine::new()
            .with_recovery(policy())
            .with_threads(threads)
            .run(&job)
            .unwrap();
        assert_bitwise(&reference, &r, &format!("fine-coarse, {threads} threads"));
    }
}

#[test]
fn relaxation_ladder_recovers_members_and_bills_the_retries() {
    // Members that fail at the default tolerances (40-step cap, LSODA
    // needs ~56 steps to t = 4) recover once the ladder relaxes them; the
    // retries show up in the health report and cost modeled time.
    let m = model();
    let job = SimulationJob::builder(&m)
        .time_points(vec![4.0])
        .replicate(4)
        .options(SolverOptions { max_steps: 40, ..SolverOptions::default() })
        .build()
        .unwrap();
    let strict = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
    assert_eq!(strict.success_count(), 0, "members must fail at default tolerances");
    assert_eq!(strict.health.failed.max_steps_exceeded, 4);

    let relaxed_policy = RecoveryPolicy { max_relaxations: 3, ..RecoveryPolicy::default() };
    let relaxed =
        CpuEngine::new(CpuSolverKind::Lsoda).with_recovery(relaxed_policy).run(&job).unwrap();
    assert_eq!(relaxed.success_count(), 4, "relaxed tolerances must recover every member");
    assert_eq!(relaxed.health.retries_succeeded, 4);
    assert!(relaxed.health.retries_attempted >= 4);
    assert!(relaxed.health.relaxations >= 4);
    assert!(
        relaxed.timing.simulated_integration_ns > strict.timing.simulated_integration_ns,
        "retries must be billed on the modeled timeline: {} vs {}",
        relaxed.timing.simulated_integration_ns,
        strict.timing.simulated_integration_ns
    );
}
