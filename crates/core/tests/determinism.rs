//! Bitwise-determinism guarantees of the host-parallel executor path.
//!
//! Every engine must produce the **identical** batch result at any worker
//! count: exact f64 trajectories, exact step statistics, exact simulated
//! timelines. The reference is the default (sequential) engine; 2- and
//! 4-worker runs are compared field by field with `==`, never with
//! tolerances — a single reordered f64 accumulation or a worker-order leak
//! into the timeline fails these tests.

use paraspace_core::{
    AutoEngine, BatchResult, CoarseEngine, CpuEngine, CpuSolverKind, FineCoarseEngine, FineEngine,
    RecoveryPolicy, SimulationJob, Simulator,
};
use paraspace_rbm::{perturbed_batch, Parameterization, Reaction, ReactionBasedModel};
use paraspace_solvers::SolverOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reversible_model() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.5)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.5)).unwrap();
    m
}

/// A batch that exercises every path: perturbed non-stiff members, one
/// strongly stiff member (P2 → RADAU5 in fine-coarse, lockstep RADAU5 in
/// fine), and enough members that 4 workers all get work.
fn mixed_job(m: &ReactionBasedModel) -> SimulationJob<'_> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut params = perturbed_batch(m, 11, &mut rng);
    params.push(Parameterization::new().with_rate_constants(vec![2e5, 2e5]));
    SimulationJob::builder(m)
        .time_points(vec![0.25, 0.5, 1.0, 2.0])
        .parameterizations(params)
        .build()
        .unwrap()
}

/// A stiff-dominated batch: every member crosses the stiffness threshold,
/// with enough parameter spread that lanes genuinely diverge in step size
/// and Jacobian-refresh cadence.
fn stiff_job(m: &ReactionBasedModel) -> SimulationJob<'_> {
    let mut b = SimulationJob::builder(m).time_points(vec![0.25, 0.5, 1.0, 2.0]);
    for i in 0..10 {
        b = b.parameterization(
            Parameterization::new()
                .with_rate_constants(vec![1e5 + 2.5e4 * i as f64, 2e5 + 1.5e4 * i as f64]),
        );
    }
    b.build().unwrap()
}

/// Asserts two batch results are identical in every observable except host
/// wall time (which measures this process, not the modeled run).
fn assert_identical(reference: &BatchResult, parallel: &BatchResult, label: &str) {
    assert_eq!(reference.engine, parallel.engine, "{label}: engine name");
    assert_eq!(reference.outcomes.len(), parallel.outcomes.len(), "{label}: batch size");
    for (i, (r, p)) in reference.outcomes.iter().zip(&parallel.outcomes).enumerate() {
        assert_eq!(r.stiff, p.stiff, "{label}: member {i} stiffness class");
        assert_eq!(r.rerouted, p.rerouted, "{label}: member {i} reroute flag");
        assert_eq!(r.solver, p.solver, "{label}: member {i} solver");
        match (&r.solution, &p.solution) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.times, b.times, "{label}: member {i} sample times");
                assert_eq!(
                    a.states, b.states,
                    "{label}: member {i} trajectory must be bitwise identical"
                );
                assert_eq!(a.stats, b.stats, "{label}: member {i} step statistics");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{label}: member {i} failure");
            }
            _ => panic!("{label}: member {i} succeeded in one run and failed in the other"),
        }
    }
    assert_eq!(
        reference.timing.simulated_total_ns, parallel.timing.simulated_total_ns,
        "{label}: simulated total"
    );
    assert_eq!(
        reference.timing.simulated_integration_ns, parallel.timing.simulated_integration_ns,
        "{label}: simulated integration time"
    );
    assert_eq!(
        reference.timing.simulated_io_ns, parallel.timing.simulated_io_ns,
        "{label}: simulated I/O time"
    );
    assert_eq!(reference.health, parallel.health, "{label}: batch health");
}

#[test]
fn fine_coarse_engine_is_bitwise_deterministic_across_thread_counts() {
    let m = reversible_model();
    let job = mixed_job(&m);
    let reference = FineCoarseEngine::new().run(&job).unwrap();
    assert!(reference.outcomes.iter().any(|o| o.stiff), "batch must exercise the stiff path");
    for threads in [1, 2, 4] {
        let parallel = FineCoarseEngine::new().with_threads(threads).run(&job).unwrap();
        assert_identical(&reference, &parallel, &format!("fine-coarse, {threads} threads"));
    }
}

#[test]
fn coarse_engine_is_bitwise_deterministic_across_thread_counts() {
    let m = reversible_model();
    let job = mixed_job(&m);
    let reference = CoarseEngine::new().run(&job).unwrap();
    for threads in [1, 2, 4] {
        let parallel = CoarseEngine::new().with_threads(threads).run(&job).unwrap();
        assert_identical(&reference, &parallel, &format!("coarse, {threads} threads"));
    }
}

#[test]
fn fine_engine_is_bitwise_deterministic_across_thread_counts() {
    let m = reversible_model();
    let job = mixed_job(&m);
    let reference = FineEngine::new().run(&job).unwrap();
    assert!(
        reference.outcomes.iter().any(|o| o.solver == "radau5-lanes"),
        "batch must exercise the stiff lockstep path"
    );
    for threads in [1, 2, 4] {
        let parallel = FineEngine::new().with_threads(threads).run(&job).unwrap();
        assert_identical(&reference, &parallel, &format!("fine, {threads} threads"));
    }
}

#[test]
fn fine_engine_lane_trajectories_are_bitwise_identical_across_lane_widths() {
    // The lockstep lane path must give every member the exact trajectory it
    // would get alone: lane width (and therefore group packing) must never
    // leak into the numerics. Width 1 is excluded — it selects the scalar
    // RKF45 baseline path, a different method by design.
    let m = reversible_model();
    let job = mixed_job(&m);
    let reference = FineEngine::new().with_lane_width(2).run(&job).unwrap();
    assert!(
        reference.outcomes.iter().any(|o| o.solver == "dopri5-lanes"),
        "batch must exercise the lockstep path"
    );
    assert!(
        reference.outcomes.iter().any(|o| o.solver == "radau5-lanes"),
        "mixed batch must also exercise the stiff lockstep path"
    );
    for width in [3, 4, 8] {
        let other = FineEngine::new().with_lane_width(width).run(&job).unwrap();
        for (i, (r, p)) in reference.outcomes.iter().zip(&other.outcomes).enumerate() {
            assert_eq!(r.solver, p.solver, "width {width}: member {i} solver");
            match (&r.solution, &p.solution) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.states, b.states, "width {width}: member {i} trajectory");
                    assert_eq!(a.stats, b.stats, "width {width}: member {i} stats");
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "width {width}: member {i}")
                }
                _ => panic!("width {width}: member {i} outcome class changed"),
            }
        }
    }
}

#[test]
fn stiff_batch_lockstep_radau_is_bitwise_identical_to_scalar_at_any_width() {
    // Every lane width × thread count must reproduce the direct scalar
    // RADAU5 solve of each member exactly — trajectories, sample times,
    // and every work counter. This is the stiff twin of the DOPRI5 lane
    // guarantee: lane packing, compaction order, and host parallelism must
    // never leak into the numerics.
    use paraspace_core::RbmOdeSystem;
    use paraspace_solvers::{OdeSolver, Radau5, SolverScratch};

    let m = reversible_model();
    let job = stiff_job(&m);
    let mut scratch = SolverScratch::new();
    let reference: Vec<_> = (0..job.batch_size())
        .map(|i| {
            let (x0, k) = job.member(i);
            let sys = RbmOdeSystem::new(job.odes(), k.to_vec());
            Radau5::new()
                .solve_pooled(&sys, 0.0, x0, job.time_points(), job.options(), &mut scratch)
                .unwrap()
        })
        .collect();

    for width in [2, 4, 8] {
        for threads in [1, 8] {
            let r =
                FineEngine::new().with_lane_width(width).with_threads(threads).run(&job).unwrap();
            for (i, expected) in reference.iter().enumerate() {
                let label = format!("width {width}, {threads} threads, member {i}");
                assert!(r.outcomes[i].stiff, "{label}: must classify stiff");
                assert_eq!(r.outcomes[i].solver, "radau5-lanes", "{label}");
                let sol = r.outcomes[i].solution.as_ref().unwrap();
                assert_eq!(sol.times, expected.times, "{label}: sample times");
                assert_eq!(sol.states, expected.states, "{label}: trajectory");
                assert_eq!(sol.stats, expected.stats, "{label}: step statistics");
            }
        }
    }
}

#[test]
fn autotuned_lane_width_leaves_stiff_rows_unchanged() {
    // With no pinned width, both lockstep engines resolve the lane width
    // through the per-model autotuner. Whatever it picks, the stiff rows
    // must stay exactly what the direct scalar RADAU5 solve produces —
    // the autotuner is a throughput decision, never a numerics change.
    use paraspace_core::RbmOdeSystem;
    use paraspace_solvers::{OdeSolver, Radau5, SolverScratch};

    let m = reversible_model();
    let job = stiff_job(&m);
    let mut scratch = SolverScratch::new();
    let reference: Vec<_> = (0..job.batch_size())
        .map(|i| {
            let (x0, k) = job.member(i);
            let sys = RbmOdeSystem::new(job.odes(), k.to_vec());
            Radau5::new()
                .solve_pooled(&sys, 0.0, x0, job.time_points(), job.options(), &mut scratch)
                .unwrap()
        })
        .collect();

    for threads in [1, 8] {
        let fine = FineEngine::new().with_threads(threads).run(&job).unwrap();
        let fine_coarse = FineCoarseEngine::new().with_threads(threads).run(&job).unwrap();
        for (i, expected) in reference.iter().enumerate() {
            for (engine, r) in [("fine", &fine), ("fine-coarse", &fine_coarse)] {
                let label = format!("{engine} autotuned, {threads} threads, member {i}");
                assert!(r.outcomes[i].stiff, "{label}: must classify stiff");
                let sol = r.outcomes[i].solution.as_ref().unwrap();
                assert_eq!(sol.times, expected.times, "{label}: sample times");
                assert_eq!(sol.states, expected.states, "{label}: trajectory");
                assert_eq!(sol.stats, expected.stats, "{label}: step statistics");
            }
        }
    }
}

#[test]
fn cpu_engines_are_bitwise_deterministic_across_thread_counts() {
    let m = reversible_model();
    let job = mixed_job(&m);
    for kind in [CpuSolverKind::Lsoda, CpuSolverKind::Vode] {
        let reference = CpuEngine::new(kind).run(&job).unwrap();
        for threads in [1, 2, 4] {
            let parallel = CpuEngine::new(kind).with_threads(threads).run(&job).unwrap();
            assert_identical(&reference, &parallel, &format!("cpu {kind:?}, {threads} threads"));
        }
    }
}

#[test]
fn auto_engine_forwards_threads_deterministically() {
    let m = reversible_model();
    // Large enough to dispatch to a GPU engine.
    let mut rng = StdRng::seed_from_u64(7);
    let job = SimulationJob::builder(&m)
        .time_points(vec![0.5, 1.0])
        .parameterizations(perturbed_batch(&m, 300, &mut rng))
        .build()
        .unwrap();
    let reference = AutoEngine::new().run(&job).unwrap();
    let parallel = AutoEngine::new().with_threads(4).run(&job).unwrap();
    assert_identical(&reference, &parallel, "auto, 4 threads");
}

#[test]
fn batches_with_failed_and_retried_members_stay_deterministic() {
    // A step cap tight enough that members fail at the default tolerances
    // and climb the relaxation ladder. The retry sequence is part of the
    // batch result, so it must also be bitwise identical at any thread
    // count (and, for the fine engine, any lane width).
    let m = reversible_model();
    let mut rng = StdRng::seed_from_u64(11);
    let job = SimulationJob::builder(&m)
        .time_points(vec![4.0])
        .parameterizations(perturbed_batch(&m, 10, &mut rng))
        .options(SolverOptions { max_steps: 40, ..SolverOptions::default() })
        .build()
        .unwrap();
    let policy = RecoveryPolicy { max_relaxations: 3, ..RecoveryPolicy::default() };

    let reference = CpuEngine::new(CpuSolverKind::Lsoda).with_recovery(policy).run(&job).unwrap();
    assert!(
        reference.health.retries_attempted > 0,
        "the step cap must force at least one retry: {:?}",
        reference.health
    );
    for threads in [1, 2, 4, 8] {
        let parallel = CpuEngine::new(CpuSolverKind::Lsoda)
            .with_recovery(policy)
            .with_threads(threads)
            .run(&job)
            .unwrap();
        assert_identical(&reference, &parallel, &format!("cpu retries, {threads} threads"));
    }

    // The scalar fine path exercises the reroute + relaxation rungs: RKF45
    // needs ~33 steps to t = 4 at the default tolerances, so a 25-step cap
    // forces the ladder (the lockstep DOPRI5 finishes under 40, hence the
    // tighter cap and the pinned width).
    let mut rng = StdRng::seed_from_u64(12);
    let fine_job = SimulationJob::builder(&m)
        .time_points(vec![4.0])
        .parameterizations(perturbed_batch(&m, 10, &mut rng))
        .options(SolverOptions { max_steps: 25, ..SolverOptions::default() })
        .build()
        .unwrap();
    let fine_ref =
        FineEngine::new().with_lane_width(1).with_recovery(policy).run(&fine_job).unwrap();
    assert!(fine_ref.health.retries_attempted > 0, "fine engine must also retry");
    for threads in [1, 2, 4, 8] {
        let parallel = FineEngine::new()
            .with_lane_width(1)
            .with_recovery(policy)
            .with_threads(threads)
            .run(&fine_job)
            .unwrap();
        assert_identical(&fine_ref, &parallel, &format!("fine retries, {threads} threads"));
    }
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    // Dynamic self-scheduling means different claim orders run to run; the
    // observable result must still never vary.
    let m = reversible_model();
    let job = mixed_job(&m);
    let engine = FineCoarseEngine::new().with_threads(4);
    let first = engine.run(&job).unwrap();
    for _ in 0..3 {
        let again = engine.run(&job).unwrap();
        assert_identical(&first, &again, "fine-coarse, repeated 4-thread runs");
    }
}
