//! Cooperative cancellation at the engine level: a tripped token makes
//! `Simulator::run` return [`SimError::Cancelled`] with every partial
//! result discarded, and re-running with a fresh token reproduces the
//! uninterrupted batch bitwise.

use paraspace_core::{
    AutoEngine, CancelToken, CoarseEngine, CpuEngine, CpuSolverKind, FineCoarseEngine, FineEngine,
    SimError, SimulationJob, Simulator,
};
use paraspace_rbm::{perturbed_batch, Reaction, ReactionBasedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.2);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 0.9)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.4)).unwrap();
    m
}

fn job(m: &ReactionBasedModel, batch: usize) -> SimulationJob<'_> {
    let mut rng = StdRng::seed_from_u64(11);
    SimulationJob::builder(m)
        .time_points(vec![0.5, 1.0, 2.0])
        .parameterizations(perturbed_batch(m, batch, &mut rng))
        .build()
        .unwrap()
}

fn engines(cancel: &CancelToken) -> Vec<(&'static str, Box<dyn Simulator>)> {
    vec![
        (
            "cpu",
            Box::new(CpuEngine::new(CpuSolverKind::Lsoda).with_cancel(cancel.clone()))
                as Box<dyn Simulator>,
        ),
        ("coarse", Box::new(CoarseEngine::new().with_cancel(cancel.clone()))),
        ("fine", Box::new(FineEngine::new().with_cancel(cancel.clone()))),
        ("fine-coarse", Box::new(FineCoarseEngine::new().with_cancel(cancel.clone()))),
        ("auto", Box::new(AutoEngine::new().with_cancel(cancel.clone()))),
    ]
}

#[test]
fn tripped_token_cancels_every_engine() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let m = model();
    let job = job(&m, 8);
    for (name, engine) in engines(&cancel) {
        match engine.run(&job) {
            Err(SimError::Cancelled) => {}
            other => panic!("{name}: expected Cancelled, got {other:?}"),
        }
    }
}

#[test]
fn fresh_token_is_inert_and_rerun_is_bitwise_identical() {
    let m = model();
    let job = job(&m, 6);
    let baseline = FineEngine::new().run(&job).unwrap();

    // A token installed but never tripped changes nothing.
    let token = CancelToken::new();
    let with_token = FineEngine::new().with_cancel(token.clone()).run(&job).unwrap();
    assert_eq!(baseline.success_count(), with_token.success_count());
    for (a, b) in baseline.outcomes.iter().zip(&with_token.outcomes) {
        let (sa, sb) = (a.solution.as_ref().unwrap(), b.solution.as_ref().unwrap());
        for t in 0..job.time_points().len() {
            for (x, y) in sa.state_at(t).iter().zip(sb.state_at(t)) {
                assert_eq!(x.to_bits(), y.to_bits(), "cancel-ready run must be bitwise identical");
            }
        }
    }

    // Cancelling, then re-running with a fresh token, also reproduces the
    // baseline bitwise: nothing from the cancelled attempt leaks through.
    token.cancel();
    assert!(matches!(FineEngine::new().with_cancel(token).run(&job), Err(SimError::Cancelled)));
    let rerun = FineEngine::new().with_cancel(CancelToken::new()).run(&job).unwrap();
    for (a, b) in baseline.outcomes.iter().zip(&rerun.outcomes) {
        let (sa, sb) = (a.solution.as_ref().unwrap(), b.solution.as_ref().unwrap());
        for t in 0..job.time_points().len() {
            for (x, y) in sa.state_at(t).iter().zip(sb.state_at(t)) {
                assert_eq!(x.to_bits(), y.to_bits(), "post-cancel rerun must be bitwise identical");
            }
        }
    }
}

#[test]
fn cancellation_error_converts_and_displays() {
    let e = SimError::from(paraspace_core::Cancelled);
    assert!(matches!(e, SimError::Cancelled));
    assert_eq!(e.to_string(), "batch cancelled before completion");
}

#[test]
fn outcome_log_records_attempts_for_clean_members() {
    // The per-member RecoveryLog now rides on every outcome: a clean solve
    // reports exactly one attempt and no recovery activity.
    let m = model();
    let job = job(&m, 4);
    let r = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
    for o in &r.outcomes {
        assert!(o.solution.is_ok());
        assert_eq!(o.log.attempts, 1);
        assert!(!o.log.recovered && !o.log.rerouted && !o.log.panicked);
    }
}
