//! Property tests for job validation (phase P1): randomly generated invalid
//! time grids, tolerances, and initial states must be rejected by
//! [`SimulationJob::build`] — before any solver runs — with
//! [`SimError::InvalidJob`], never a panic and never a solver-level error.

use paraspace_core::{SimError, SimulationJob};
use paraspace_rbm::{Parameterization, Reaction, ReactionBasedModel};
use paraspace_solvers::SolverOptions;
use proptest::prelude::*;

fn model() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.5);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 0.7)).unwrap();
    m
}

/// Builds a strictly increasing grid, then corrupts one entry so the grid
/// is invalid in a randomly chosen way.
fn corrupt_grid(mut times: Vec<f64>, idx: usize, mode: u8) -> Vec<f64> {
    let i = idx % times.len();
    match mode % 4 {
        0 => times[i] = f64::NAN,
        1 => times[i] = f64::INFINITY,
        2 => {
            // Duplicate a neighbour: breaks strict monotonicity.
            let j = if i == 0 { 1 % times.len() } else { i - 1 };
            times[i] = times[j];
        }
        _ => times[i] = -times[i].abs() - 1.0,
    }
    times
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Any grid corrupted with a NaN, infinity, duplicate, or negative
    /// entry is rejected at build time.
    #[test]
    fn invalid_time_grids_are_rejected(
        n in 2usize..12,
        step in 0.01f64..2.0,
        idx in 0usize..12,
        mode in 0u8..4,
    ) {
        let times: Vec<f64> = (1..=n).map(|i| i as f64 * step).collect();
        let times = corrupt_grid(times, idx, mode);
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(times.clone())
            .replicate(1)
            .build()
            .expect_err("corrupt grid must not build");
        prop_assert!(
            matches!(err, SimError::InvalidJob { .. }),
            "{times:?} produced {err:?}"
        );
    }

    /// Non-positive or non-finite tolerances never reach a solver.
    #[test]
    fn invalid_tolerances_are_rejected(
        pick in 0u8..5,
        mag in 1e-12f64..1e6,
        which in 0u8..3,
    ) {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => -mag,
        };
        let mut opts = SolverOptions::default();
        if which != 0 { opts.rel_tol = bad; }
        if which != 1 { opts.abs_tol = bad; }
        let m = model();
        let err = SimulationJob::builder(&m)
            .time_points(vec![1.0])
            .replicate(1)
            .options(opts)
            .build()
            .expect_err("invalid tolerance must not build");
        prop_assert!(matches!(err, SimError::InvalidJob { .. }), "{bad} produced {err:?}");
    }

    /// A member whose resolved initial state or rate constants contain a
    /// non-finite value is rejected, regardless of where it sits in the
    /// batch or which slot is poisoned.
    #[test]
    fn non_finite_members_are_rejected(
        batch in 1usize..6,
        poison in 0usize..6,
        slot in 0usize..2,
        pick in 0u8..3,
    ) {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let m = model();
        let mut builder = SimulationJob::builder(&m).time_points(vec![1.0]);
        let poison = poison % batch;
        for i in 0..batch {
            let p = if i == poison {
                if slot == 0 {
                    Parameterization::new().with_initial_state(vec![bad, 0.5])
                } else {
                    Parameterization::new().with_rate_constants(vec![bad])
                }
            } else {
                Parameterization::new()
            };
            builder = builder.parameterization(p);
        }
        let err = builder.build().expect_err("poisoned member must not build");
        prop_assert!(matches!(err, SimError::InvalidJob { .. }), "{bad} produced {err:?}");
    }

    /// Sanity inverse: a clean randomized grid and batch always builds.
    #[test]
    fn valid_jobs_always_build(
        n in 1usize..10,
        step in 0.01f64..2.0,
        batch in 1usize..5,
    ) {
        let times: Vec<f64> = (1..=n).map(|i| i as f64 * step).collect();
        let m = model();
        let job = SimulationJob::builder(&m)
            .time_points(times)
            .replicate(batch)
            .build();
        prop_assert!(job.is_ok(), "{:?}", job.err());
    }
}
