//! The bitwise determinism contract of the stochastic ensemble engine.
//!
//! Counter-based per-replicate RNG streams make every replicate's
//! trajectory a pure function of `(seed, member, replicate)`; lane width,
//! lane packing order, thread count, and shard decomposition are pure
//! scheduling. These tests pin that contract from the outside — through
//! the public `StochasticBatch` API and the raw `TauLeapBatch` kernel —
//! and check the statistics side: batched tau-leaping must agree with the
//! exact SSA distributionally.

use paraspace_rbm::{Reaction, ReactionBasedModel};
use paraspace_stochastic::{
    initial_counts, CounterRng, DirectMethod, PropensityTable, StochFault, StochFaultPlan,
    StochasticBatch, StochasticError, StochasticSimulator, TauLeapBatch, TauLeaping,
};

/// Reversible isomerization with populations large enough to leap.
fn isomerization() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 40_000.0);
    let b = m.add_species("B", 10_000.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 1.0)).unwrap();
    m
}

/// A dimerization pushes second-order combinatorics through the lanes.
fn dimerization() -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 30_000.0);
    let d = m.add_species("D", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 2)], &[(d, 1)], 1e-4)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(d, 1)], &[(a, 2)], 0.5)).unwrap();
    m
}

#[test]
fn ensembles_are_bitwise_identical_across_widths_and_threads() {
    let times = [0.1, 0.3, 0.7];
    for model in [isomerization(), dimerization()] {
        let base = StochasticBatch::new(TauLeaping::new()).with_seed(4242);
        let reference =
            base.clone().with_lane_width(Some(1)).with_threads(1).run(&model, &times, 21).unwrap();
        for width in [2usize, 4, 8] {
            for threads in [1usize, 8] {
                let run = base
                    .clone()
                    .with_lane_width(Some(width))
                    .with_threads(threads)
                    .run(&model, &times, 21)
                    .unwrap();
                assert_eq!(
                    run.outcomes, reference.outcomes,
                    "width {width} × threads {threads} must be pure scheduling"
                );
                assert_eq!(run.stats, reference.stats);
            }
        }
    }
}

#[test]
fn lane_packing_order_is_invisible_per_replicate() {
    // Feed the raw kernel the same replicate streams in three packing
    // orders; each replicate's trajectory must match its own scalar run
    // regardless of which lane (or group) it landed in.
    let model = isomerization();
    let table = PropensityTable::new(&model);
    let x0 = initial_counts(&model);
    let times = [0.2, 0.5];
    let scalar: Vec<_> = (0..12u64)
        .map(|i| {
            let mut rng = CounterRng::replicate_stream(99, 0, i);
            TauLeaping::new().simulate_counts(&table, &x0, &times, &mut rng, &[]).unwrap()
        })
        .collect();
    let orders: [Vec<u64>; 3] =
        [(0..12).collect(), (0..12).rev().collect(), vec![5, 0, 7, 2, 11, 4, 9, 1, 6, 3, 10, 8]];
    for order in orders {
        let streams: Vec<CounterRng> =
            order.iter().map(|&i| CounterRng::replicate_stream(99, 0, i)).collect();
        let (outs, _) = TauLeapBatch::new().run(&table, &x0, &times, 4, &streams);
        for (slot, &rep) in order.iter().enumerate() {
            assert_eq!(
                outs[slot].as_ref().unwrap(),
                &scalar[rep as usize],
                "replicate {rep} packed at slot {slot} must not notice"
            );
        }
    }
}

#[test]
fn shards_and_full_runs_agree_bitwise() {
    let model = dimerization();
    let batch = StochasticBatch::new(TauLeaping::new()).with_seed(7).with_threads(4);
    let full = batch.run(&model, &[0.4], 30).unwrap();
    let mut stitched = Vec::new();
    for lo in [0usize, 11, 19] {
        let hi = [11usize, 19, 30][[0usize, 11, 19].iter().position(|&x| x == lo).unwrap()];
        stitched.extend(batch.run_range(&model, &[0.4], lo..hi).unwrap().outcomes);
    }
    assert_eq!(full.outcomes, stitched);
}

#[test]
fn chaos_fault_is_contained_to_its_replicate() {
    let model = isomerization();
    let clean = StochasticBatch::new(TauLeaping::new()).with_seed(31).with_threads(2);
    let plan = StochFaultPlan::new().poison(7, StochFault::nan(1, 3));
    let faulty = clean.clone().with_faults(plan);
    let a = clean.run(&model, &[0.3], 16).unwrap();
    let b = faulty.run(&model, &[0.3], 16).unwrap();
    assert!(
        matches!(b.outcomes[7], Err(StochasticError::BadPropensity { reaction: 1, .. })),
        "fault must surface as a typed per-replicate error: {:?}",
        b.outcomes[7]
    );
    for i in (0..16).filter(|&i| i != 7) {
        assert_eq!(a.outcomes[i], b.outcomes[i], "replicate {i} contaminated by the fault");
    }
    // Re-running re-faults identically (deterministic containment).
    let c = faulty.run(&model, &[0.3], 16).unwrap();
    assert_eq!(b.outcomes, c.outcomes);
}

#[test]
fn batched_tau_agrees_with_exact_ssa_distributionally() {
    // Reversible isomerization equilibrium: E[A] = (k₋/(k₊+k₋))·N = N/3,
    // with binomial-like fluctuations Var[A] ≈ N·(1/3)(2/3). Compare the
    // lane-batched tau-leaping ensemble against the exact SSA ensemble.
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 3000.0);
    let b = m.add_species("B", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 1.0)).unwrap();
    let t = [6.0];
    let n = 3000.0;
    let tau = StochasticBatch::new(TauLeaping::new())
        .with_seed(55)
        .with_threads(4)
        .run(&m, &t, 256)
        .unwrap();
    let ssa = StochasticBatch::new(DirectMethod::new())
        .with_seed(56)
        .with_threads(4)
        .run(&m, &t, 256)
        .unwrap();
    assert!(tau.lane_width >= 2, "this ensemble must exercise the lane path");
    let exact_mean = n / 3.0;
    let exact_var = n * (1.0 / 3.0) * (2.0 / 3.0);
    for (label, run) in [("tau", &tau), ("ssa", &ssa)] {
        let mean = run.stats.mean[0][0];
        let var = run.stats.variance[0][0];
        assert!(
            (mean - exact_mean).abs() < 3.0 * (exact_var / 256.0).sqrt() + 3.0,
            "{label} mean {mean} vs {exact_mean}"
        );
        assert!(
            (var - exact_var).abs() < 0.35 * exact_var,
            "{label} variance {var} vs {exact_var}"
        );
    }
    // The two methods agree with each other, not just with theory.
    assert!(
        (tau.stats.mean[0][0] - ssa.stats.mean[0][0]).abs() < 3.0 * (exact_var / 128.0).sqrt(),
        "tau {} vs ssa {}",
        tau.stats.mean[0][0],
        ssa.stats.mean[0][0]
    );
}

#[test]
fn counter_streams_decorrelate_members_and_seeds() {
    let model = isomerization();
    let base = StochasticBatch::new(TauLeaping::new());
    let s1 = base.clone().with_seed(1).run(&model, &[0.2], 6).unwrap();
    let s2 = base.clone().with_seed(2).run(&model, &[0.2], 6).unwrap();
    let m1 = base.clone().with_seed(1).with_member(9).run(&model, &[0.2], 6).unwrap();
    assert_ne!(s1.outcomes, s2.outcomes, "seeds must decorrelate");
    assert_ne!(s1.outcomes, m1.outcomes, "members must decorrelate");
}
