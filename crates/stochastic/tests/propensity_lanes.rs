//! Property test: the lane-batched propensity kernel is bitwise equal,
//! lane by lane, to the scalar evaluator — on every bundled model and on
//! arbitrary count states. This is the foundation the whole lockstep
//! tau-leaping contract rests on: if one lane ever diverged by a ULP from
//! the scalar walk, trajectories would cease to be a pure function of
//! `(seed, member, replicate)`.

use paraspace_models::{autophagy, classic, metabolic};
use paraspace_rbm::ReactionBasedModel;
use paraspace_stochastic::PropensityTable;
use proptest::prelude::*;

fn bundled_models() -> Vec<(&'static str, ReactionBasedModel)> {
    vec![
        ("robertson", classic::robertson()),
        ("brusselator", classic::brusselator(1.0, 3.0)),
        ("lotka_volterra", classic::lotka_volterra(1.1, 0.4, 0.4)),
        ("decay_chain", classic::decay_chain(6)),
        ("enzyme_mechanism", classic::enzyme_mechanism(1e5, 1e-3, 10.0)),
        ("oregonator", classic::oregonator()),
        ("goodwin", classic::goodwin(9.0)),
        ("autophagy", autophagy::model(0.9, 1.2)),
        ("metabolic", metabolic::model()),
    ]
}

/// Evaluates one lane scalar-style and compares bit patterns.
fn assert_lanes_match_scalar(name: &str, table: &PropensityTable, counts: &[Vec<u64>]) {
    let stoich = table.stoich();
    let n = stoich.n_species();
    let m = stoich.n_reactions();
    let lanes = counts.len();
    // Pack species-major/lane-minor.
    let mut soa = vec![0u64; n * lanes];
    for (l, x) in counts.iter().enumerate() {
        for s in 0..n {
            soa[s * lanes + l] = x[s];
        }
    }
    let mut batched = vec![0.0f64; m * lanes];
    stoich.propensities_lanes(&soa, lanes, &mut batched);
    let mut sums = vec![0.0f64; lanes];
    stoich.propensity_sums_lanes(&batched, lanes, &mut sums);
    let mut scalar = vec![0.0f64; m];
    for (l, x) in counts.iter().enumerate() {
        let a0 = stoich.propensities_into(x, &mut scalar);
        for r in 0..m {
            assert_eq!(
                batched[r * lanes + l].to_bits(),
                scalar[r].to_bits(),
                "{name}: reaction {r}, lane {l}: batched {} vs scalar {}",
                batched[r * lanes + l],
                scalar[r]
            );
        }
        assert_eq!(sums[l].to_bits(), a0.to_bits(), "{name}: lane {l} propensity sum diverged");
    }
}

#[test]
fn every_bundled_model_matches_at_its_initial_state() {
    for (name, model) in bundled_models() {
        let table = PropensityTable::new(&model);
        let x0 = paraspace_stochastic::initial_counts(&model);
        // Four lanes holding perturbed copies of the initial state.
        let states: Vec<Vec<u64>> = (0..4u64)
            .map(|k| x0.iter().map(|&v| v.saturating_add(k * 3).saturating_sub(k)).collect())
            .collect();
        assert_lanes_match_scalar(name, &table, &states);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn batched_propensities_are_bitwise_scalar_on_random_states(
        model_idx in 0usize..9,
        lanes in 1usize..9,
        seed_counts in proptest::collection::vec(0u64..5_000_000, 8),
    ) {
        let (name, model) = bundled_models().swap_remove(model_idx);
        let table = PropensityTable::new(&model);
        let n = table.n_species();
        // Stretch the 8 sampled counts over every (lane, species) cell
        // with a cheap deterministic mix so huge models get varied states.
        let states: Vec<Vec<u64>> = (0..lanes)
            .map(|l| {
                (0..n)
                    .map(|s| {
                        let pick = seed_counts[(l * 31 + s * 7) % seed_counts.len()];
                        pick.wrapping_mul(0x9E37_79B9).wrapping_add(s as u64) % 5_000_000
                    })
                    .collect()
            })
            .collect();
        assert_lanes_match_scalar(name, &table, &states);
    }
}
