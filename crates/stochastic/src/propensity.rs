//! Stochastic propensities and the state-change table.
//!
//! For discrete molecule counts the mass-action propensity of a reaction
//! uses falling factorials: `a = c·x` (first order), `a = c·x·y`
//! (bimolecular, distinct species), `a = c·x·(x−1)/2` (dimerization),
//! `a = c` (zeroth order) — the combinatorial counts of reactant tuples.
//!
//! Since the lane-batched stochastic path landed, the compiled structure
//! itself lives in `paraspace_rbm` as [`CompiledStoich`] (next to the
//! deterministic `CompiledOdes`, which the lane engines share the same
//! way); [`PropensityTable`] wraps it and keeps this crate's historical
//! API. The batched kernels are reachable through
//! [`stoich`](PropensityTable::stoich).

use paraspace_rbm::{CompiledStoich, ReactionBasedModel};

/// The compiled stochastic view of a model: per-reaction reactant orders
/// and net state changes, in flat arrays (the same shape the deterministic
/// engines use, so a device kernel walks identical structures).
#[derive(Debug, Clone, PartialEq)]
pub struct PropensityTable {
    stoich: CompiledStoich,
}

impl PropensityTable {
    /// Builds the table from a model. The deterministic rate constants are
    /// used directly as stochastic constants (volume factors are the
    /// modeler's responsibility, as in the original tools).
    pub fn new(model: &ReactionBasedModel) -> Self {
        PropensityTable { stoich: CompiledStoich::new(model) }
    }

    /// The underlying compiled stoichiometry (scalar *and* lane-batched
    /// kernels).
    pub fn stoich(&self) -> &CompiledStoich {
        &self.stoich
    }

    /// Number of reactions.
    pub fn n_reactions(&self) -> usize {
        self.stoich.n_reactions()
    }

    /// Number of species.
    pub fn n_species(&self) -> usize {
        self.stoich.n_species()
    }

    /// The propensity of reaction `r` at state `x`.
    pub fn propensity(&self, r: usize, x: &[u64]) -> f64 {
        self.stoich.propensity(r, x)
    }

    /// Writes all propensities into `out` and returns their sum.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n_reactions`.
    pub fn propensities_into(&self, x: &[u64], out: &mut [f64]) -> f64 {
        self.stoich.propensities_into(x, out)
    }

    /// Applies one firing of reaction `r` to state `x`; returns `false`
    /// (leaving `x` untouched) if any population would go negative.
    pub fn fire(&self, r: usize, x: &mut [u64]) -> bool {
        self.stoich.apply(r, 1, x)
    }

    /// Applies `count` firings of reaction `r` at once (tau-leaping);
    /// returns `false` and leaves `x` untouched if that would drive a
    /// population negative.
    pub fn apply(&self, r: usize, count: u64, x: &mut [u64]) -> bool {
        self.stoich.apply(r, count, x)
    }

    /// Net change of species `s` per firing of reaction `r` (0 if
    /// untouched).
    pub fn net_change(&self, r: usize, s: usize) -> i64 {
        self.stoich.net_change(r, s)
    }

    /// Whether reaction `r` consumes any molecules (sources never do).
    pub fn consumes(&self, r: usize) -> bool {
        self.stoich.consumes(r)
    }
}

/// Convenience: propensity vector at a state.
pub fn propensities(table: &PropensityTable, x: &[u64]) -> Vec<f64> {
    let mut out = vec![0.0; table.n_reactions()];
    table.propensities_into(x, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 10.0);
        let b = m.add_species("B", 5.0);
        let c = m.add_species("C", 0.0);
        m.add_reaction(Reaction::mass_action(&[], &[(a, 1)], 3.0)).unwrap(); // source
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(a, 1), (b, 1)], &[(c, 1)], 0.5)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(a, 2)], &[(c, 1)], 1.0)).unwrap(); // dimerization
        m
    }

    #[test]
    fn propensities_use_combinatorial_counts() {
        let t = PropensityTable::new(&model());
        let x = [10u64, 5, 0];
        assert_eq!(t.propensity(0, &x), 3.0);
        assert_eq!(t.propensity(1, &x), 20.0);
        assert_eq!(t.propensity(2, &x), 0.5 * 10.0 * 5.0);
        assert_eq!(t.propensity(3, &x), 10.0 * 9.0 / 2.0);
    }

    #[test]
    fn zero_population_kills_propensity() {
        let t = PropensityTable::new(&model());
        let x = [0u64, 5, 0];
        assert_eq!(t.propensity(1, &x), 0.0);
        assert_eq!(t.propensity(2, &x), 0.0);
        assert_eq!(t.propensity(3, &x), 0.0);
        // Dimerization needs ≥ 2 molecules.
        assert_eq!(t.propensity(3, &[1, 0, 0]), 0.0);
    }

    #[test]
    fn firing_updates_counts() {
        let t = PropensityTable::new(&model());
        let mut x = [10u64, 5, 0];
        assert!(t.fire(2, &mut x)); // A + B -> C
        assert_eq!(x, [9, 4, 1]);
        assert!(t.fire(3, &mut x)); // 2A -> C
        assert_eq!(x, [7, 4, 2]);
        assert!(t.fire(0, &mut x)); // source
        assert_eq!(x, [8, 4, 2]);
    }

    #[test]
    fn negative_populations_are_refused() {
        let t = PropensityTable::new(&model());
        let mut x = [1u64, 0, 0];
        assert!(!t.apply(3, 1, &mut x), "dimerization needs two A");
        assert_eq!(x, [1, 0, 0], "state untouched on refusal");
        assert!(!t.apply(1, 2, &mut x), "two firings need two A");
        assert!(t.apply(1, 1, &mut x));
        assert_eq!(x, [0, 1, 0]);
    }

    #[test]
    fn catalysts_cancel_in_net_change() {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 5.0);
        let e = m.add_species("E", 2.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1), (e, 1)], &[(e, 1)], 1.0)).unwrap();
        let t = PropensityTable::new(&m);
        assert_eq!(t.net_change(0, 0), -1);
        assert_eq!(t.net_change(0, 1), 0, "catalyst must cancel");
        // But the propensity still depends on E.
        assert_eq!(t.propensity(0, &[5, 2]), 10.0);
    }

    #[test]
    fn consumes_detects_sources() {
        let t = PropensityTable::new(&model());
        assert!(!t.consumes(0));
        assert!(t.consumes(1));
    }

    #[test]
    fn wrapper_delegates_to_compiled_stoich() {
        let t = PropensityTable::new(&model());
        let x = [10u64, 5, 0];
        for r in 0..t.n_reactions() {
            assert_eq!(t.propensity(r, &x).to_bits(), t.stoich().propensity(r, &x).to_bits());
        }
    }
}
