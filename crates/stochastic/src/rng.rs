//! Counter-based per-replicate random streams.
//!
//! The GPU codes this crate models (cuTauLeaping and kin) give every
//! device thread its own *counter-based* RNG: the `i`-th variate of a
//! stream is a pure function `mix(key, i)` of a per-thread key and the
//! draw counter, so streams need no shared state, no warm-up, and no
//! seeding order. [`CounterRng`] is the host equivalent: a splitmix64
//! finalizer over a keyed counter (Steele–Lea–Flood's SplitMix64, the
//! same generator the vendored `StdRng` uses for seed expansion).
//!
//! # Stream layout
//!
//! A replicate's key is derived by chaining the finalizer over the triple
//! `(campaign seed, member index, replicate index)`:
//!
//! ```text
//! k₀  = mix(seed ⊕ GAMMA)
//! k₁  = mix(k₀ + member·PHI + 1)
//! key = mix(k₁ + replicate·PHI + 2)
//! draw j = mix(key + (j+1)·PHI)        (j = 0, 1, …)
//! ```
//!
//! Because the key depends only on that triple, a replicate's entire
//! variate stream — and therefore its trajectory — is bitwise identical
//! no matter which lane of which lane-group on which worker thread runs
//! it. Lane width, packing order, thread count, and shard decomposition
//! all become pure scheduling decisions.
//!
//! # Migration note
//!
//! Before this scheme, `StochasticBatch` seeded replicate `i` with
//! `StdRng::seed_from_u64(seed + i)`. Old seeds therefore reproduce
//! *different* ensembles under the counter-based layout; any recorded
//! expectations tied to pre-migration seeds must be re-baselined once.

use rand::RngCore;

/// The golden-ratio increment (2⁶⁴/φ) driving the splitmix64 counter.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation constant for the seed absorption (√2 − 1 in fixed
/// point, the SHA-512 initial-value constant).
const GAMMA: u64 = 0x6A09_E667_F3BC_C909;

/// The splitmix64 finalizer: a bijective avalanche mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based RNG stream: draw `j` is `mix(key + (j+1)·PHI)`.
///
/// # Example
///
/// ```
/// use paraspace_stochastic::CounterRng;
/// use rand::Rng;
///
/// let mut a = CounterRng::replicate_stream(42, 0, 7);
/// let mut b = CounterRng::replicate_stream(42, 0, 7);
/// assert_eq!(a.gen::<f64>(), b.gen::<f64>(), "same triple ⇒ same stream");
/// let mut c = CounterRng::replicate_stream(42, 0, 8);
/// assert_ne!(a.gen::<u64>(), c.gen::<u64>(), "replicates decorrelate");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// A stream from a raw key (counter starts at zero).
    pub fn from_key(key: u64) -> Self {
        CounterRng { key, counter: 0 }
    }

    /// The stream of one ensemble replicate, keyed by the campaign seed,
    /// the campaign member (parameterization) index, and the replicate
    /// index within the member's ensemble.
    pub fn replicate_stream(seed: u64, member: u64, replicate: u64) -> Self {
        let k0 = mix(seed ^ GAMMA);
        let k1 = mix(k0.wrapping_add(member.wrapping_mul(PHI)).wrapping_add(1));
        let key = mix(k1.wrapping_add(replicate.wrapping_mul(PHI)).wrapping_add(2));
        CounterRng::from_key(key)
    }

    /// The stream's key (identifies it independently of position).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Draws consumed so far.
    pub fn position(&self) -> u64 {
        self.counter
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        mix(self.key.wrapping_add(self.counter.wrapping_mul(PHI)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_pure_functions_of_the_triple() {
        let mut a = CounterRng::replicate_stream(3, 1, 5);
        let mut b = CounterRng::replicate_stream(3, 1, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_triple_coordinate_separates_streams() {
        let base: Vec<u64> =
            (0..8).map(|_| CounterRng::replicate_stream(3, 1, 5).next_u64()).collect();
        let _ = base;
        let first = |s, m, r| CounterRng::replicate_stream(s, m, r).next_u64();
        let a = first(3, 1, 5);
        assert_ne!(a, first(4, 1, 5), "seed separates");
        assert_ne!(a, first(3, 2, 5), "member separates");
        assert_ne!(a, first(3, 1, 6), "replicate separates");
        // Swapping member and replicate must not collide either.
        assert_ne!(first(3, 5, 1), first(3, 1, 5));
    }

    #[test]
    fn draws_are_random_access_in_the_counter() {
        // Draw j is a pure function of (key, j): skipping ahead by
        // re-deriving the stream and discarding reproduces the suffix.
        let mut full = CounterRng::replicate_stream(9, 0, 0);
        let prefix: Vec<u64> = (0..10).map(|_| full.next_u64()).collect();
        let _ = prefix;
        let tail: Vec<u64> = (0..5).map(|_| full.next_u64()).collect();
        let mut skipped = CounterRng::replicate_stream(9, 0, 0);
        for _ in 0..10 {
            skipped.next_u64();
        }
        assert_eq!(skipped.position(), 10);
        let tail2: Vec<u64> = (0..5).map(|_| skipped.next_u64()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn unit_doubles_are_uniform_enough() {
        let mut rng = CounterRng::replicate_stream(17, 0, 3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn adjacent_replicate_streams_are_uncorrelated() {
        // Correlation between replicate r and r+1 over 4096 draws.
        let n = 4096;
        let mut a = CounterRng::replicate_stream(1, 0, 100);
        let mut b = CounterRng::replicate_stream(1, 0, 101);
        let xs: Vec<f64> = (0..n).map(|_| a.gen::<f64>() - 0.5).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.gen::<f64>() - 0.5).collect();
        let dot: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let corr = dot / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "correlation {corr}");
    }
}
