//! Gillespie's direct-method stochastic simulation algorithm.

use crate::chaos::{apply_faults, StochFault};
use crate::error::validate_propensities;
use crate::propensity::PropensityTable;
use crate::{StochasticError, StochasticSimulator, StochasticTrajectory};
use rand::Rng;

/// The exact SSA: at each event, the waiting time is exponential with rate
/// `a₀ = Σ aᵣ` and the firing reaction is chosen with probability
/// `aᵣ/a₀`.
///
/// # Example
///
/// ```
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_stochastic::{DirectMethod, StochasticSimulator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 100.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 2.0))?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let traj = DirectMethod::new().simulate(&m, &[3.0], &mut rng)?;
/// assert!(traj.states[0][0] < 100, "decay must remove molecules");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectMethod {
    _private: (),
}

impl DirectMethod {
    /// Creates the simulator.
    pub fn new() -> Self {
        DirectMethod { _private: () }
    }
}

impl StochasticSimulator for DirectMethod {
    fn name(&self) -> &'static str {
        "ssa"
    }

    fn simulate_counts<R: Rng + ?Sized>(
        &self,
        table: &PropensityTable,
        x0: &[u64],
        times: &[f64],
        rng: &mut R,
        faults: &[StochFault],
    ) -> Result<StochasticTrajectory, StochasticError> {
        let mut x = x0.to_vec();
        let mut a = vec![0.0; table.n_reactions()];
        let mut t = 0.0f64;
        let mut evals = 0u64;
        let mut traj = StochasticTrajectory {
            times: Vec::with_capacity(times.len()),
            states: Vec::with_capacity(times.len()),
            firings: 0,
            steps: 0,
        };

        for &ts in times {
            while t < ts {
                let a0 = table.propensities_into(&x, &mut a);
                apply_faults(faults, evals, &mut a);
                evals += 1;
                validate_propensities(&a, t, traj.steps)?;
                if a0 <= 0.0 {
                    // Absorbing state: nothing can fire anymore.
                    t = ts;
                    break;
                }
                let dt = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / a0;
                if t + dt > ts {
                    t = ts;
                    break;
                }
                t += dt;
                // Select the firing reaction.
                let mut target = rng.gen::<f64>() * a0;
                let mut chosen = table.n_reactions() - 1;
                for (r, &ar) in a.iter().enumerate() {
                    if target < ar {
                        chosen = r;
                        break;
                    }
                    target -= ar;
                }
                let fired = table.fire(chosen, &mut x);
                debug_assert!(fired, "positive propensity implies fireable reaction");
                traj.firings += 1;
                traj.steps += 1;
            }
            traj.times.push(ts);
            traj.states.push(x.clone());
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{initial_counts, StochFault};
    use paraspace_rbm::{Reaction, ReactionBasedModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn immigration_death(birth: f64, death: f64, x0: f64) -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", x0);
        m.add_reaction(Reaction::mass_action(&[], &[(a, 1)], birth)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], death)).unwrap();
        m
    }

    #[test]
    fn immigration_death_reaches_poisson_stationary_distribution() {
        // Stationary law is Poisson(birth/death): mean = var = 20.
        let m = immigration_death(20.0, 1.0, 0.0);
        let ssa = DirectMethod::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut values = Vec::new();
        for _ in 0..400 {
            let traj = ssa.simulate(&m, &[15.0], &mut rng).unwrap();
            values.push(traj.states[0][0] as f64);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((mean - 20.0).abs() < 1.0, "stationary mean {mean}");
        assert!((var - 20.0).abs() < 6.0, "stationary variance {var}");
    }

    #[test]
    fn closed_system_conserves_molecules() {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 500.0);
        let b = m.add_species("B", 100.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.5)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let traj = DirectMethod::new().simulate(&m, &[1.0, 5.0, 20.0], &mut rng).unwrap();
        for s in &traj.states {
            assert_eq!(s[0] + s[1], 600, "total molecules conserved");
        }
        assert!(traj.firings > 0);
    }

    #[test]
    fn absorbing_state_halts_cleanly() {
        // Pure decay: once empty, nothing fires; sampling must continue.
        let m = immigration_death(0.0, 5.0, 20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let traj = DirectMethod::new().simulate(&m, &[10.0, 20.0, 30.0], &mut rng).unwrap();
        assert_eq!(traj.states[2][0], 0);
        assert_eq!(traj.times.len(), 3);
        assert!(traj.firings <= 20);
    }

    #[test]
    fn deterministic_under_seed() {
        let m = immigration_death(5.0, 0.5, 10.0);
        let a =
            DirectMethod::new().simulate(&m, &[1.0, 2.0], &mut StdRng::seed_from_u64(9)).unwrap();
        let b =
            DirectMethod::new().simulate(&m, &[1.0, 2.0], &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ensemble_mean_tracks_ode_for_linear_decay() {
        // E[X(t)] = X₀·e^{-kt} exactly for first-order decay.
        let m = immigration_death(0.0, 1.0, 200.0);
        let mut rng = StdRng::seed_from_u64(4);
        let ssa = DirectMethod::new();
        let t = 0.7f64;
        let n = 300;
        let mean: f64 = (0..n)
            .map(|_| ssa.simulate(&m, &[t], &mut rng).unwrap().states[0][0] as f64)
            .sum::<f64>()
            / n as f64;
        let exact = 200.0 * (-t).exp();
        assert!((mean - exact).abs() < 3.0, "ensemble mean {mean} vs ODE {exact}");
    }

    #[test]
    fn ssa_is_hardened_against_poisoned_propensities() {
        let m = immigration_death(5.0, 0.5, 10.0);
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let faults = [StochFault::nan(1, 2)];
        let mut rng = StdRng::seed_from_u64(5);
        let err = DirectMethod::new()
            .simulate_counts(&table, &x0, &[5.0], &mut rng, &faults)
            .unwrap_err();
        assert!(matches!(err, StochasticError::BadPropensity { reaction: 1, .. }), "{err:?}");
    }
}
