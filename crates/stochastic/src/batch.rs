//! The coarse-grained stochastic batch engine (cuTauLeaping-class).
//!
//! Stochastic analyses need *ensembles*: hundreds or thousands of
//! replicates of the same model. Exactly like the deterministic coarse
//! engine, one virtual device thread runs one replicate; heterogeneous
//! event counts across replicates become warp divergence. The batch
//! returns ensemble statistics (per-species mean and variance at each
//! sample time) plus the simulated device time.

use crate::{StochasticSimulator, StochasticTrajectory};
use paraspace_rbm::{RbmError, ReactionBasedModel};
use paraspace_vgpu::{Device, DeviceConfig, KernelLaunch, MemorySpace, ThreadWork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ensemble statistics at the sampled time points.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Sample times.
    pub times: Vec<f64>,
    /// `mean[t][s]`: mean copy number of species `s` at time index `t`.
    pub mean: Vec<Vec<f64>>,
    /// `variance[t][s]`: unbiased variance across replicates.
    pub variance: Vec<Vec<f64>>,
}

/// Result of a stochastic batch run.
#[derive(Debug)]
pub struct StochasticBatchResult {
    /// Per-replicate trajectories.
    pub trajectories: Vec<StochasticTrajectory>,
    /// Ensemble statistics.
    pub stats: EnsembleStats,
    /// Simulated device time (ns).
    pub simulated_ns: f64,
    /// Real host time.
    pub host_wall: std::time::Duration,
}

/// The coarse-grained stochastic batch runner.
///
/// # Example
///
/// ```
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_stochastic::{DirectMethod, StochasticBatch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 200.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let batch = StochasticBatch::new(DirectMethod::new()).with_seed(3);
/// let r = batch.run(&m, &[0.5], 64)?;
/// // Ensemble mean tracks the ODE: 200·e^{-0.5} ≈ 121.
/// assert!((r.stats.mean[0][0] - 121.3).abs() < 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StochasticBatch<S> {
    simulator: S,
    device_config: DeviceConfig,
    seed: u64,
    threads_per_block: usize,
}

impl<S: StochasticSimulator> StochasticBatch<S> {
    /// A batch runner on the published GPU.
    pub fn new(simulator: S) -> Self {
        StochasticBatch {
            simulator,
            device_config: DeviceConfig::titan_x(),
            seed: 0,
            threads_per_block: 32,
        }
    }

    /// Sets the ensemble's base RNG seed (replicate `i` uses `seed + i`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }

    /// Runs `replicates` realizations and aggregates them.
    ///
    /// # Errors
    ///
    /// Model-validation failures; an empty ensemble is rejected.
    pub fn run(
        &self,
        model: &ReactionBasedModel,
        times: &[f64],
        replicates: usize,
    ) -> Result<StochasticBatchResult, RbmError> {
        if replicates == 0 {
            return Err(RbmError::Parse {
                context: "stochastic batch".into(),
                message: "at least one replicate required".into(),
            });
        }
        let start = std::time::Instant::now();
        let device = Device::new(self.device_config.clone());

        // Functional pass: run every replicate on the host.
        let mut trajectories = Vec::with_capacity(replicates);
        for i in 0..replicates {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
            // Decorrelate nearby seeds.
            let _ = rng.gen::<u64>();
            trajectories.push(self.simulator.simulate(model, times, &mut rng)?);
        }

        // Device pass: one thread per replicate; per-thread work from the
        // replicate's own event count (divergence across the warp).
        let n = model.n_species();
        let m = model.n_reactions();
        let per_event_flops = (2 * m + n) as u64; // propensities + selection
        let per_event_bytes = (m + n) as u64 * 8;
        let mut work: Vec<ThreadWork> = trajectories
            .iter()
            .map(|tr| {
                ThreadWork::new()
                    .with_flops(tr.steps * per_event_flops)
                    .with_read(MemorySpace::CachedGlobal, tr.steps * per_event_bytes)
                    .with_global_write(times.len() as u64 * n as u64 * 8)
            })
            .collect();
        let tpb = self.threads_per_block;
        let blocks = replicates.div_ceil(tpb);
        work.resize(blocks * tpb, ThreadWork::new());
        device.launch(
            &KernelLaunch::per_thread(
                format!("integrate::{}", self.simulator.name()),
                blocks,
                tpb,
                work,
            )
            .with_registers(48),
        );

        // Ensemble statistics.
        let mut mean = vec![vec![0.0; n]; times.len()];
        let mut variance = vec![vec![0.0; n]; times.len()];
        for t in 0..times.len() {
            for s in 0..n {
                let vals: Vec<f64> = trajectories.iter().map(|tr| tr.states[t][s] as f64).collect();
                let mu = vals.iter().sum::<f64>() / replicates as f64;
                mean[t][s] = mu;
                variance[t][s] = if replicates > 1 {
                    vals.iter().map(|v| (v - mu).powi(2)).sum::<f64>() / (replicates - 1) as f64
                } else {
                    0.0
                };
            }
        }
        Ok(StochasticBatchResult {
            trajectories,
            stats: EnsembleStats { times: times.to_vec(), mean, variance },
            simulated_ns: device.elapsed_ns(),
            host_wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectMethod, TauLeaping};
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn decay(x0: f64) -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", x0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0)).unwrap();
        m
    }

    #[test]
    fn ensemble_mean_and_variance_match_linear_theory() {
        // First-order decay from x0: mean = x0·e^{-t}, variance =
        // x0·e^{-t}(1−e^{-t}) (binomial survival).
        let m = decay(1000.0);
        let t = 0.6f64;
        let r = StochasticBatch::new(DirectMethod::new()).with_seed(7).run(&m, &[t], 400).unwrap();
        let p = (-t).exp();
        let mean_exact = 1000.0 * p;
        let var_exact = 1000.0 * p * (1.0 - p);
        assert!((r.stats.mean[0][0] - mean_exact).abs() < 4.0, "mean {}", r.stats.mean[0][0]);
        assert!(
            (r.stats.variance[0][0] - var_exact).abs() < 60.0,
            "variance {} vs {var_exact}",
            r.stats.variance[0][0]
        );
    }

    #[test]
    fn replicates_differ_but_seeding_is_reproducible() {
        let m = decay(100.0);
        let batch = StochasticBatch::new(DirectMethod::new()).with_seed(1);
        let a = batch.run(&m, &[0.5], 16).unwrap();
        let b = batch.run(&m, &[0.5], 16).unwrap();
        for (x, y) in a.trajectories.iter().zip(&b.trajectories) {
            assert_eq!(x, y, "same seed ⇒ same ensemble");
        }
        let distinct: std::collections::HashSet<u64> =
            a.trajectories.iter().map(|t| t.states[0][0]).collect();
        assert!(distinct.len() > 3, "replicates must vary");
    }

    #[test]
    fn device_time_reflects_event_counts() {
        // Ten times the molecules ⇒ roughly ten times the SSA events ⇒
        // more simulated device time.
        let small = StochasticBatch::new(DirectMethod::new())
            .with_seed(2)
            .run(&decay(200.0), &[1.0], 32)
            .unwrap();
        let large = StochasticBatch::new(DirectMethod::new())
            .with_seed(2)
            .run(&decay(2000.0), &[1.0], 32)
            .unwrap();
        assert!(large.simulated_ns > small.simulated_ns);
    }

    #[test]
    fn tau_leaping_batch_is_cheaper_on_device_than_ssa() {
        let m = decay(100_000.0);
        let ssa =
            StochasticBatch::new(DirectMethod::new()).with_seed(3).run(&m, &[0.5], 8).unwrap();
        let tau = StochasticBatch::new(TauLeaping::new()).with_seed(3).run(&m, &[0.5], 8).unwrap();
        assert!(
            tau.simulated_ns * 5.0 < ssa.simulated_ns,
            "tau {} vs ssa {}",
            tau.simulated_ns,
            ssa.simulated_ns
        );
    }

    #[test]
    fn zero_replicates_rejected() {
        let m = decay(10.0);
        assert!(StochasticBatch::new(DirectMethod::new()).run(&m, &[1.0], 0).is_err());
    }
}
