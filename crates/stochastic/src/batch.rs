//! The stochastic ensemble engine (cuTauLeaping-class).
//!
//! Stochastic analyses need *ensembles*: hundreds or thousands of
//! replicates of the same model. Exactly like the deterministic engines,
//! one virtual device thread runs one replicate; heterogeneous event
//! counts across replicates become warp divergence. On the host the
//! engine runs two routes:
//!
//! * the **lane-group path** — simulators exposing a lockstep kernel
//!   ([`TauLeaping`](crate::TauLeaping) via [`TauLeapBatch`]) run
//!   replicates in SoA lane groups with batched propensity/tau sweeps,
//!   scheduled across the `exec` worker pool one group per item;
//! * the **scalar path** — everything else (the exact
//!   [`DirectMethod`](crate::DirectMethod), non-mass-action models whose
//!   falling-factorial propensities the batched kernel is gated off, and
//!   replicates evicted from lane groups by a chaos fault plan) runs one
//!   replicate per item.
//!
//! Every replicate draws from its own counter-based [`CounterRng`] stream
//! keyed by `(seed, member, replicate)` — see the [`rng`](crate::rng)
//! stream-layout docs — so both routes produce bitwise-identical
//! trajectories at any lane width, packing order, or thread count, and a
//! shard `run_range(lo..hi)` reproduces exactly the replicates the full
//! run would. The batch returns per-replicate outcomes, ensemble
//! statistics (per-species mean and variance at each sample time, over
//! the successful replicates), lane-occupancy accounting, and the
//! simulated device time.

use crate::chaos::StochFaultPlan;
use crate::rng::CounterRng;
use crate::{
    initial_counts, PropensityTable, StochasticError, StochasticSimulator, StochasticTrajectory,
};
use paraspace_exec::Executor;
use paraspace_rbm::ReactionBasedModel;
use paraspace_vgpu::{
    Device, DeviceConfig, KernelLaunch, LaneAccounting, LaneGroupStats, MemorySpace, ThreadWork,
};
use std::ops::Range;

/// Lane-group capacity multiplier: each executor work item carries up to
/// `CAPACITY_LANES · width` replicates, compacted through `width` lanes
/// (the same 4·L grouping the deterministic fine engine schedules).
const CAPACITY_LANES: usize = 4;

/// Ensemble statistics at the sampled time points.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Sample times.
    pub times: Vec<f64>,
    /// `mean[t][s]`: mean copy number of species `s` at time index `t`.
    pub mean: Vec<Vec<f64>>,
    /// `variance[t][s]`: unbiased variance across replicates.
    pub variance: Vec<Vec<f64>>,
}

impl EnsembleStats {
    /// Computes per-species mean and unbiased variance at each sample time
    /// over the *successful* outcomes. Deterministic: the accumulation
    /// order is replicate order, so reassembled shards produce bitwise the
    /// same statistics as an uninterrupted run.
    #[must_use]
    pub fn from_outcomes(
        times: &[f64],
        n_species: usize,
        outcomes: &[Result<StochasticTrajectory, StochasticError>],
    ) -> Self {
        let ok: Vec<&StochasticTrajectory> =
            outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
        let k = ok.len();
        let mut mean = vec![vec![0.0; n_species]; times.len()];
        let mut variance = vec![vec![0.0; n_species]; times.len()];
        for t in 0..times.len() {
            for s in 0..n_species {
                let vals: Vec<f64> = ok.iter().map(|tr| tr.states[t][s] as f64).collect();
                let mu = if k > 0 { vals.iter().sum::<f64>() / k as f64 } else { 0.0 };
                mean[t][s] = mu;
                variance[t][s] = if k > 1 {
                    vals.iter().map(|v| (v - mu).powi(2)).sum::<f64>() / (k - 1) as f64
                } else {
                    0.0
                };
            }
        }
        EnsembleStats { times: times.to_vec(), mean, variance }
    }
}

/// Result of a stochastic batch run.
#[derive(Debug)]
pub struct StochasticBatchResult {
    /// Per-replicate outcomes, in replicate order: a trajectory, or the
    /// typed error that retired the replicate (propensity hardening,
    /// injected faults). One failed replicate never poisons its
    /// neighbours.
    pub outcomes: Vec<Result<StochasticTrajectory, StochasticError>>,
    /// Ensemble statistics over the successful replicates.
    pub stats: EnsembleStats,
    /// Lane-group occupancy/divergence accounting (`None` when the whole
    /// ensemble ran the scalar path).
    pub lanes: Option<LaneAccounting>,
    /// The lane width the run resolved (1 = scalar path).
    pub lane_width: usize,
    /// Simulated device time (ns).
    pub simulated_ns: f64,
    /// Real host time.
    pub host_wall: std::time::Duration,
}

impl StochasticBatchResult {
    /// The successful trajectories, in replicate order.
    pub fn trajectories(&self) -> Vec<&StochasticTrajectory> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok()).collect()
    }

    /// The failed replicates as `(replicate index, error)`, in replicate
    /// order. Indices are relative to the run's range.
    pub fn failures(&self) -> Vec<(usize, &StochasticError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().err().map(|e| (i, e)))
            .collect()
    }
}

/// The stochastic ensemble runner.
///
/// # Example
///
/// ```
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_stochastic::{DirectMethod, StochasticBatch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 200.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let batch = StochasticBatch::new(DirectMethod::new()).with_seed(3);
/// let r = batch.run(&m, &[0.5], 64)?;
/// // Ensemble mean tracks the ODE: 200·e^{-0.5} ≈ 121.
/// assert!((r.stats.mean[0][0] - 121.3).abs() < 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StochasticBatch<S> {
    simulator: S,
    device_config: DeviceConfig,
    seed: u64,
    member: u64,
    threads: usize,
    lane_width: Option<usize>,
    faults: StochFaultPlan,
    threads_per_block: usize,
}

impl<S: StochasticSimulator + Sync> StochasticBatch<S> {
    /// A batch runner on the published GPU.
    pub fn new(simulator: S) -> Self {
        StochasticBatch {
            simulator,
            device_config: DeviceConfig::titan_x(),
            seed: 0,
            member: 0,
            threads: 1,
            lane_width: None,
            faults: StochFaultPlan::new(),
            threads_per_block: 32,
        }
    }

    /// Sets the ensemble's campaign seed. Replicate `i` draws from the
    /// counter-based stream keyed by `(seed, member, i)` —
    /// [`CounterRng::replicate_stream`] — regardless of how the run is
    /// scheduled. (Before the counter-based layout, replicate `i` was
    /// seeded sequentially with `seed + i`; old seeds reproduce different
    /// ensembles. See the [`CounterRng`] migration note.)
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the campaign member (parameterization) index keying the RNG
    /// streams (default 0).
    pub fn with_member(mut self, member: u64) -> Self {
        self.member = member;
        self
    }

    /// Sets the host worker-thread count (default 1; 0 = one per core).
    /// Pure scheduling: results are bitwise identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the lane width for the lockstep path (default: the
    /// `auto_stoch_lane_width` propensity-vs-sampling tuner). `1` forces
    /// the scalar path. Pure scheduling: per-replicate trajectories are
    /// bitwise independent of the width.
    pub fn with_lane_width(mut self, width: Option<usize>) -> Self {
        self.lane_width = width;
        self
    }

    /// Installs a deterministic fault plan (replicate indices are
    /// absolute, i.e. relative to replicate 0 of the full ensemble).
    /// Afflicted replicates are evicted from lane groups and run the
    /// scalar path, where the poison trips the propensity hardening into
    /// a contained per-replicate error.
    pub fn with_faults(mut self, faults: StochFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the device (builder style).
    pub fn with_device(mut self, config: DeviceConfig) -> Self {
        self.device_config = config;
        self
    }

    /// The simulator this batch drives.
    pub fn simulator(&self) -> &S {
        &self.simulator
    }

    /// The campaign seed keying the replicate streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The campaign member index keying the replicate streams.
    pub fn member(&self) -> u64 {
        self.member
    }

    /// The pinned lane width, if any (`None` = autotuned per model).
    pub fn lane_width(&self) -> Option<usize> {
        self.lane_width
    }

    /// The host worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `replicates` realizations and aggregates them.
    ///
    /// # Errors
    ///
    /// Model-validation failures; an empty ensemble is rejected.
    /// Per-replicate failures are *contained* in
    /// [`StochasticBatchResult::outcomes`], not returned here.
    pub fn run(
        &self,
        model: &ReactionBasedModel,
        times: &[f64],
        replicates: usize,
    ) -> Result<StochasticBatchResult, StochasticError> {
        self.run_range(model, times, 0..replicates)
    }

    /// Runs the replicate range `range` of the (conceptually unbounded)
    /// ensemble: replicate `i` of the full ensemble is bitwise identical
    /// whether it arrives via `run(n)` or any shard decomposition into
    /// `run_range` calls — the property the durable campaign layer builds
    /// on.
    ///
    /// # Errors
    ///
    /// Model-validation failures; an empty range is rejected.
    pub fn run_range(
        &self,
        model: &ReactionBasedModel,
        times: &[f64],
        range: Range<usize>,
    ) -> Result<StochasticBatchResult, StochasticError> {
        if range.is_empty() {
            return Err(StochasticError::EmptyEnsemble);
        }
        model.validate()?;
        let start = std::time::Instant::now();
        let device = Device::new(self.device_config.clone());
        let table = PropensityTable::new(model);
        let x0 = initial_counts(model);
        let replicates = range.len();

        // Resolve the lane schedule: a lockstep kernel, a usable width,
        // and mass-action kinetics (the only kinetics the batched
        // falling-factorial pass is faithful for).
        let kernel = self.simulator.lane_kernel();
        let width =
            self.lane_width.unwrap_or_else(|| paraspace_core::auto_stoch_lane_width(model)).max(1);
        let lane_path = kernel.is_some() && width >= 2 && table.stoich().all_mass_action();
        if kernel.is_some() && !lane_path && self.lane_width.is_none_or(|w| w > 1) {
            debug_log(&format!(
                "stochastic batch: model outside the lane-batched propensity pass; \
                 running {} scalar",
                self.simulator.name()
            ));
        }

        // Partition the range into deterministic work units: lane groups
        // of up to 4·width replicates, with fault-planned replicates
        // evicted to scalar units (mirroring the ODE engines' eviction of
        // chaos-planned members from lane groups).
        enum Unit {
            Lane(Vec<usize>),
            Scalar(usize),
        }
        let mut units: Vec<Unit> = Vec::new();
        if lane_path {
            let capacity = CAPACITY_LANES * width;
            let mut group: Vec<usize> = Vec::with_capacity(capacity);
            for abs in range.clone() {
                if self.faults.afflicts(abs) {
                    units.push(Unit::Scalar(abs));
                    continue;
                }
                group.push(abs);
                if group.len() == capacity {
                    units.push(Unit::Lane(std::mem::take(&mut group)));
                }
            }
            if !group.is_empty() {
                units.push(Unit::Lane(group));
            }
        } else {
            units.extend(range.clone().map(Unit::Scalar));
        }

        // Execute: one unit per executor item; per-replicate streams make
        // the unit decomposition invisible in the results.
        type UnitResult =
            Vec<(usize, Result<StochasticTrajectory, StochasticError>, Option<TauLeapGroup>)>;
        let executor = Executor::new(self.threads);
        let unit_results: Vec<UnitResult> = executor.map(units.len(), |u| match &units[u] {
            Unit::Scalar(abs) => {
                let mut rng = CounterRng::replicate_stream(self.seed, self.member, *abs as u64);
                let out = self.simulator.simulate_counts(
                    &table,
                    &x0,
                    times,
                    &mut rng,
                    self.faults.faults_for(*abs),
                );
                vec![(*abs, out, None)]
            }
            Unit::Lane(group) => {
                let streams: Vec<CounterRng> = group
                    .iter()
                    .map(|&abs| CounterRng::replicate_stream(self.seed, self.member, abs as u64))
                    .collect();
                let kernel = kernel.as_ref().expect("lane path implies kernel");
                let (outs, report) = kernel.run(&table, &x0, times, width, &streams);
                group
                    .iter()
                    .zip(outs)
                    .enumerate()
                    .map(|(k, (&abs, out))| {
                        // Attach the group report to its first member.
                        let rep = (k == 0).then_some(TauLeapGroup(report));
                        (abs, out, rep)
                    })
                    .collect()
            }
        });

        // Collect outcomes in replicate order and bill lane groups.
        let mut outcomes: Vec<Option<Result<StochasticTrajectory, StochasticError>>> =
            (0..replicates).map(|_| None).collect();
        let mut groups = 0u64;
        for (abs, out, group) in unit_results.into_iter().flatten() {
            if let Some(TauLeapGroup(report)) = group {
                device.record_lane_group(&LaneGroupStats {
                    width: report.width,
                    lockstep_iters: report.lockstep_iters,
                    lane_steps: report.lane_steps,
                });
                groups += 1;
            }
            outcomes[abs - range.start] = Some(out);
        }
        let outcomes: Vec<Result<StochasticTrajectory, StochasticError>> =
            outcomes.into_iter().map(|o| o.expect("every replicate resolved")).collect();

        // Device pass: one thread per replicate; per-thread work from the
        // replicate's own event count (divergence across the warp).
        let n = model.n_species();
        let m = model.n_reactions();
        let per_event_flops = (2 * m + n) as u64; // propensities + selection
        let per_event_bytes = (m + n) as u64 * 8;
        let mut work: Vec<ThreadWork> = outcomes
            .iter()
            .map(|out| match out {
                Ok(tr) => ThreadWork::new()
                    .with_flops(tr.steps * per_event_flops)
                    .with_read(MemorySpace::CachedGlobal, tr.steps * per_event_bytes)
                    .with_global_write(times.len() as u64 * n as u64 * 8),
                Err(_) => ThreadWork::new(),
            })
            .collect();
        let tpb = self.threads_per_block;
        let blocks = replicates.div_ceil(tpb);
        work.resize(blocks * tpb, ThreadWork::new());
        device.launch(
            &KernelLaunch::per_thread(
                format!("integrate::{}", self.simulator.name()),
                blocks,
                tpb,
                work,
            )
            .with_registers(48),
        );

        Ok(StochasticBatchResult {
            stats: EnsembleStats::from_outcomes(times, n, &outcomes),
            outcomes,
            lanes: (groups > 0).then(|| device.lane_accounting()),
            lane_width: if lane_path { width } else { 1 },
            simulated_ns: device.elapsed_ns(),
            host_wall: start.elapsed(),
        })
    }
}

/// Wrapper keeping the per-unit result tuple readable.
struct TauLeapGroup(crate::tau_batch::TauLeapReport);

fn debug_log(message: &str) {
    if std::env::var("PARASPACE_DEBUG").map(|v| v == "1").unwrap_or(false) {
        eprintln!("{message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectMethod, StochFault, TauLeaping};
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn decay(x0: f64) -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", x0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0)).unwrap();
        m
    }

    #[test]
    fn ensemble_mean_and_variance_match_linear_theory() {
        // First-order decay from x0: mean = x0·e^{-t}, variance =
        // x0·e^{-t}(1−e^{-t}) (binomial survival).
        let m = decay(1000.0);
        let t = 0.6f64;
        let r = StochasticBatch::new(DirectMethod::new()).with_seed(7).run(&m, &[t], 400).unwrap();
        let p = (-t).exp();
        let mean_exact = 1000.0 * p;
        let var_exact = 1000.0 * p * (1.0 - p);
        assert!((r.stats.mean[0][0] - mean_exact).abs() < 4.0, "mean {}", r.stats.mean[0][0]);
        assert!(
            (r.stats.variance[0][0] - var_exact).abs() < 60.0,
            "variance {} vs {var_exact}",
            r.stats.variance[0][0]
        );
    }

    #[test]
    fn replicates_differ_but_seeding_is_reproducible() {
        let m = decay(100.0);
        let batch = StochasticBatch::new(DirectMethod::new()).with_seed(1);
        let a = batch.run(&m, &[0.5], 16).unwrap();
        let b = batch.run(&m, &[0.5], 16).unwrap();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x, y, "same seed ⇒ same ensemble");
        }
        let distinct: std::collections::HashSet<u64> =
            a.trajectories().iter().map(|t| t.states[0][0]).collect();
        assert!(distinct.len() > 3, "replicates must vary");
    }

    #[test]
    fn device_time_reflects_event_counts() {
        // Ten times the molecules ⇒ roughly ten times the SSA events ⇒
        // more simulated device time.
        let small = StochasticBatch::new(DirectMethod::new())
            .with_seed(2)
            .run(&decay(200.0), &[1.0], 32)
            .unwrap();
        let large = StochasticBatch::new(DirectMethod::new())
            .with_seed(2)
            .run(&decay(2000.0), &[1.0], 32)
            .unwrap();
        assert!(large.simulated_ns > small.simulated_ns);
    }

    #[test]
    fn tau_leaping_batch_is_cheaper_on_device_than_ssa() {
        let m = decay(100_000.0);
        let ssa =
            StochasticBatch::new(DirectMethod::new()).with_seed(3).run(&m, &[0.5], 8).unwrap();
        let tau = StochasticBatch::new(TauLeaping::new()).with_seed(3).run(&m, &[0.5], 8).unwrap();
        assert!(
            tau.simulated_ns * 5.0 < ssa.simulated_ns,
            "tau {} vs ssa {}",
            tau.simulated_ns,
            ssa.simulated_ns
        );
    }

    #[test]
    fn zero_replicates_rejected() {
        let m = decay(10.0);
        assert!(matches!(
            StochasticBatch::new(DirectMethod::new()).run(&m, &[1.0], 0),
            Err(StochasticError::EmptyEnsemble)
        ));
    }

    #[test]
    fn lane_path_engages_for_tau_leaping_and_reports_occupancy() {
        let m = decay(100_000.0);
        let r = StochasticBatch::new(TauLeaping::new()).with_seed(5).run(&m, &[0.5], 32).unwrap();
        assert!(r.lane_width >= 2, "large populations autotune wide lanes");
        let lanes = r.lanes.expect("lane path must record groups");
        assert!(lanes.groups > 0);
        assert!(lanes.occupancy() > 0.0 && lanes.occupancy() <= 1.0);
        // SSA has no lockstep kernel: scalar path, no lane accounting.
        let ssa =
            StochasticBatch::new(DirectMethod::new()).with_seed(5).run(&m, &[0.5], 8).unwrap();
        assert!(ssa.lanes.is_none());
        assert_eq!(ssa.lane_width, 1);
    }

    #[test]
    fn lane_and_scalar_paths_are_bitwise_identical() {
        let m = decay(50_000.0);
        let batch = StochasticBatch::new(TauLeaping::new()).with_seed(11);
        let widths = [1usize, 2, 4, 8];
        let runs: Vec<_> = widths
            .iter()
            .map(|&w| batch.clone().with_lane_width(Some(w)).run(&m, &[0.2, 0.5], 13).unwrap())
            .collect();
        for (w, r) in widths.iter().zip(&runs).skip(1) {
            assert_eq!(r.outcomes, runs[0].outcomes, "width {w} vs scalar");
            assert_eq!(r.stats, runs[0].stats, "stats width {w}");
        }
        assert_eq!(runs[0].lane_width, 1);
        assert!(runs[0].lanes.is_none(), "pinned width 1 is the scalar path");
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let m = decay(30_000.0);
        let base = StochasticBatch::new(TauLeaping::new()).with_seed(13);
        let one = base.clone().with_threads(1).run(&m, &[0.3], 40).unwrap();
        let eight = base.clone().with_threads(8).run(&m, &[0.3], 40).unwrap();
        assert_eq!(one.outcomes, eight.outcomes);
        assert_eq!(one.stats, eight.stats);
    }

    #[test]
    fn sharded_ranges_reassemble_the_full_ensemble() {
        let m = decay(20_000.0);
        let batch = StochasticBatch::new(TauLeaping::new()).with_seed(17);
        let full = batch.run(&m, &[0.4], 24).unwrap();
        let mut stitched = Vec::new();
        for lo in (0..24).step_by(7) {
            let hi = (lo + 7).min(24);
            stitched.extend(batch.run_range(&m, &[0.4], lo..hi).unwrap().outcomes);
        }
        assert_eq!(full.outcomes, stitched, "shard decomposition must be invisible");
    }

    #[test]
    fn fault_planned_replicates_are_evicted_and_contained() {
        let m = decay(60_000.0);
        let clean = StochasticBatch::new(TauLeaping::new()).with_seed(19);
        let faulty =
            clean.clone().with_faults(StochFaultPlan::new().poison(5, StochFault::nan(0, 2)));
        let a = clean.run(&m, &[0.2], 12).unwrap();
        let b = faulty.run(&m, &[0.2], 12).unwrap();
        assert!(
            matches!(b.outcomes[5], Err(StochasticError::BadPropensity { reaction: 0, .. })),
            "poisoned replicate fails typed: {:?}",
            b.outcomes[5]
        );
        for i in (0..12).filter(|&i| i != 5) {
            assert_eq!(a.outcomes[i], b.outcomes[i], "replicate {i} must be untouched");
        }
        // Deterministic containment: the retry re-faults identically.
        let c = faulty.run(&m, &[0.2], 12).unwrap();
        assert_eq!(b.outcomes, c.outcomes);
    }

    #[test]
    fn member_index_separates_campaign_streams() {
        let m = decay(5_000.0);
        let base = StochasticBatch::new(TauLeaping::new()).with_seed(23);
        let m0 = base.clone().with_member(0).run(&m, &[0.3], 8).unwrap();
        let m1 = base.clone().with_member(1).run(&m, &[0.3], 8).unwrap();
        assert_ne!(m0.outcomes, m1.outcomes, "members must decorrelate");
    }

    #[test]
    fn non_mass_action_models_fall_back_to_scalar_lanes() {
        use paraspace_rbm::Kinetics;
        let mut m = ReactionBasedModel::new();
        let s = m.add_species("S", 50_000.0);
        let p = m.add_species("P", 0.0);
        m.add_reaction(Reaction::with_kinetics(
            &[(s, 1)],
            &[(p, 1)],
            1.0,
            Kinetics::MichaelisMenten { km: 0.5 },
        ))
        .unwrap();
        let r = StochasticBatch::new(TauLeaping::new())
            .with_seed(29)
            .with_lane_width(Some(8))
            .run(&m, &[0.1], 6)
            .unwrap();
        assert_eq!(r.lane_width, 1, "gated off the lane path");
        assert!(r.lanes.is_none());
        assert!(r.outcomes.iter().all(Result::is_ok));
    }
}
