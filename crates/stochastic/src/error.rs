//! Typed failures of the stochastic simulators.

use paraspace_rbm::RbmError;

/// Why a stochastic simulation (or one ensemble replicate) failed.
#[derive(Debug, Clone)]
pub enum StochasticError {
    /// The model failed validation or compilation.
    Model(RbmError),
    /// A propensity evaluated to a non-finite or negative value —
    /// combinatorial overflow on huge populations, a NaN rate constant,
    /// or an injected fault. Caught *before* `select_tau`/event selection
    /// can be driven to garbage.
    BadPropensity {
        /// The offending reaction index.
        reaction: usize,
        /// The value it evaluated to.
        value: f64,
        /// Simulation time at the evaluation.
        t: f64,
        /// Algorithm steps completed before the evaluation.
        step: u64,
    },
    /// An ensemble run was asked for zero replicates.
    EmptyEnsemble,
}

// Manual equality: `BadPropensity` carries the offending value, which is
// often NaN; the bitwise determinism contract wants two identical failures
// to compare equal, so floats are compared by bit pattern.
impl PartialEq for StochasticError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (StochasticError::Model(a), StochasticError::Model(b)) => a == b,
            (
                StochasticError::BadPropensity { reaction, value, t, step },
                StochasticError::BadPropensity { reaction: r2, value: v2, t: t2, step: s2 },
            ) => {
                reaction == r2
                    && value.to_bits() == v2.to_bits()
                    && t.to_bits() == t2.to_bits()
                    && step == s2
            }
            (StochasticError::EmptyEnsemble, StochasticError::EmptyEnsemble) => true,
            _ => false,
        }
    }
}

impl Eq for StochasticError {}

impl std::fmt::Display for StochasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StochasticError::Model(e) => write!(f, "model error: {e}"),
            StochasticError::BadPropensity { reaction, value, t, step } => write!(
                f,
                "propensity of reaction {reaction} evaluated to {value} at t = {t} \
                 (step {step}); propensities must be finite and non-negative"
            ),
            StochasticError::EmptyEnsemble => {
                write!(f, "stochastic batch: at least one replicate required")
            }
        }
    }
}

impl std::error::Error for StochasticError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StochasticError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RbmError> for StochasticError {
    fn from(e: RbmError) -> Self {
        StochasticError::Model(e)
    }
}

/// Validates a freshly evaluated propensity vector: every entry must be
/// finite and non-negative. Checked in reaction order so scalar and
/// lane-batched paths report the same first offender.
pub(crate) fn validate_propensities(a: &[f64], t: f64, step: u64) -> Result<(), StochasticError> {
    for (r, &ar) in a.iter().enumerate() {
        if !ar.is_finite() || ar < 0.0 {
            return Err(StochasticError::BadPropensity { reaction: r, value: ar, t, step });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_reports_first_offender_in_reaction_order() {
        assert!(validate_propensities(&[0.0, 1.5, 2.0], 0.1, 3).is_ok());
        let err = validate_propensities(&[1.0, f64::NAN, -2.0], 0.5, 7).unwrap_err();
        match err {
            StochasticError::BadPropensity { reaction, value, t, step } => {
                assert_eq!(reaction, 1);
                assert!(value.is_nan());
                assert_eq!(t, 0.5);
                assert_eq!(step, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = validate_propensities(&[-0.5], 0.0, 0).unwrap_err();
        assert!(matches!(err, StochasticError::BadPropensity { reaction: 0, .. }));
    }

    #[test]
    fn identical_nan_failures_compare_equal() {
        let a = StochasticError::BadPropensity { reaction: 1, value: f64::NAN, t: 0.5, step: 7 };
        let b = StochasticError::BadPropensity { reaction: 1, value: f64::NAN, t: 0.5, step: 7 };
        assert_eq!(a, b, "bitwise-identical failures are the same failure");
        let c = StochasticError::BadPropensity { reaction: 2, value: f64::NAN, t: 0.5, step: 7 };
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_informative() {
        let e = StochasticError::BadPropensity { reaction: 2, value: f64::NAN, t: 1.0, step: 9 };
        let s = e.to_string();
        assert!(s.contains("reaction 2") && s.contains("step 9"), "{s}");
        assert!(StochasticError::EmptyEnsemble.to_string().contains("replicate"));
    }
}
