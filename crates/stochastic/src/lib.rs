// Index-based loops mirror the flat propensity tables a GPU kernel
// would walk.
#![allow(clippy::needless_range_loop)]

//! Stochastic simulation of reaction-based models.
//!
//! The GPU-simulator landscape the original paper situates itself in (its
//! "semiotic square") has a stochastic half: coarse-grained SSA and
//! tau-leaping engines (cuda-sim, cuTauLeaping). This crate fills that
//! half for the present suite:
//!
//! * [`DirectMethod`] — Gillespie's exact stochastic simulation algorithm
//!   over the same [`ReactionBasedModel`]s the deterministic engines use
//!   (initial concentrations are interpreted as molecule counts);
//! * [`TauLeaping`] — the approximate accelerated method with the
//!   Cao–Gillespie–Petzold adaptive step selection and an SSA fallback for
//!   near-critical populations;
//! * [`TauLeapBatch`] — the lockstep lane kernel: `L` replicates advance
//!   through tau-leaping in SoA lanes with batched propensity evaluation
//!   and tau selection, per-lane trajectories bitwise equal to the scalar
//!   simulator;
//! * [`StochasticBatch`] — the ensemble engine (one virtual device thread
//!   per replicate, the cuTauLeaping design): counter-based per-replicate
//!   RNG streams ([`CounterRng`]), a lane-group path with scalar fallback,
//!   host-parallel execution, and ensemble statistics plus simulated
//!   device time.
//!
//! Determinism is the load-bearing contract: every replicate's RNG stream
//! is a pure function of `(seed, member, replicate)`, so trajectories are
//! bitwise identical across lane widths, lane packing orders, thread
//! counts, and shard decompositions — which is what lets ensembles flow
//! through the executor pool, the vgpu lane accounting, and the durable
//! campaign journal unchanged.
//!
//! The stochastic and deterministic views agree where theory says they
//! must: for linear networks the SSA ensemble mean follows the ODE
//! solution, which the integration tests assert.
//!
//! # Example
//!
//! ```
//! use paraspace_rbm::{Reaction, ReactionBasedModel};
//! use paraspace_stochastic::{DirectMethod, StochasticSimulator};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Isomerization A → B starting from 1000 molecules of A.
//! let mut m = ReactionBasedModel::new();
//! let a = m.add_species("A", 1000.0);
//! let b = m.add_species("B", 0.0);
//! m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0))?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let traj = DirectMethod::new().simulate(&m, &[0.5, 1.0], &mut rng)?;
//! let total = traj.states[1][0] + traj.states[1][1];
//! assert_eq!(total, 1000, "molecules are conserved");
//! # Ok(())
//! # }
//! ```

mod batch;
mod chaos;
mod error;
mod propensity;
mod rng;
mod sampling;
mod ssa;
mod tau;
mod tau_batch;

pub use batch::{EnsembleStats, StochasticBatch, StochasticBatchResult};
pub use chaos::{StochFault, StochFaultPlan};
pub use error::StochasticError;
pub use propensity::{propensities, PropensityTable};
pub use rng::CounterRng;
pub use sampling::poisson;
pub use ssa::DirectMethod;
pub use tau::TauLeaping;
pub use tau_batch::{TauLeapBatch, TauLeapReport};

use paraspace_rbm::ReactionBasedModel;
use rand::Rng;

/// A sampled stochastic trajectory: integer molecule counts per species at
/// each requested time point.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticTrajectory {
    /// The sample times.
    pub times: Vec<f64>,
    /// One count vector per sample time.
    pub states: Vec<Vec<u64>>,
    /// Reaction firings executed.
    pub firings: u64,
    /// Algorithm steps (SSA events or tau leaps).
    pub steps: u64,
}

impl StochasticTrajectory {
    /// The trajectory of one species across the samples.
    ///
    /// # Panics
    ///
    /// Panics if `species` is out of range.
    pub fn component(&self, species: usize) -> Vec<u64> {
        self.states.iter().map(|s| s[species]).collect()
    }
}

/// A stochastic simulator over reaction-based models.
pub trait StochasticSimulator {
    /// Algorithm name (`"ssa"`, `"tau-leaping"`).
    fn name(&self) -> &'static str;

    /// Simulates one realization, sampling at `times` (non-decreasing).
    ///
    /// Initial concentrations are rounded to molecule counts.
    ///
    /// # Errors
    ///
    /// Model-validation failures and hardening trips
    /// ([`StochasticError::BadPropensity`] on non-finite or negative
    /// propensities).
    fn simulate<R: Rng + ?Sized>(
        &self,
        model: &ReactionBasedModel,
        times: &[f64],
        rng: &mut R,
    ) -> Result<StochasticTrajectory, StochasticError>
    where
        Self: Sized,
    {
        model.validate()?;
        let table = PropensityTable::new(model);
        let x0 = initial_counts(model);
        self.simulate_counts(&table, &x0, times, rng, &[])
    }

    /// The low-level entry the batch engine uses: simulate from explicit
    /// initial counts against a prebuilt table, with deterministic fault
    /// injection (`faults` poison chosen propensity evaluations; see
    /// [`StochFault`]). [`simulate`](Self::simulate) wraps this with
    /// model validation and an empty fault list.
    fn simulate_counts<R: Rng + ?Sized>(
        &self,
        table: &PropensityTable,
        x0: &[u64],
        times: &[f64],
        rng: &mut R,
        faults: &[StochFault],
    ) -> Result<StochasticTrajectory, StochasticError>
    where
        Self: Sized;

    /// The lockstep lane kernel for this simulator, if it has one.
    /// Returning `Some` lets [`StochasticBatch`] run lane groups; the
    /// kernel's per-lane trajectories must be bitwise equal to
    /// [`simulate_counts`](Self::simulate_counts) with the same stream.
    fn lane_kernel(&self) -> Option<TauLeapBatch> {
        None
    }
}

/// Rounds a model's initial concentrations to molecule counts — the
/// state-vector convention every simulator in this crate starts from.
pub fn initial_counts(model: &ReactionBasedModel) -> Vec<u64> {
    model.initial_state().iter().map(|&x| x.max(0.0).round() as u64).collect()
}
