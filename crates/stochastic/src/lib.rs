// Index-based loops mirror the flat propensity tables a GPU kernel
// would walk.
#![allow(clippy::needless_range_loop)]

//! Stochastic simulation of reaction-based models.
//!
//! The GPU-simulator landscape the original paper situates itself in (its
//! "semiotic square") has a stochastic half: coarse-grained SSA and
//! tau-leaping engines (cuda-sim, cuTauLeaping). This crate fills that
//! half for the present suite:
//!
//! * [`DirectMethod`] — Gillespie's exact stochastic simulation algorithm
//!   over the same [`ReactionBasedModel`]s the deterministic engines use
//!   (initial concentrations are interpreted as molecule counts);
//! * [`TauLeaping`] — the approximate accelerated method with the
//!   Cao–Gillespie–Petzold adaptive step selection and an SSA fallback for
//!   near-critical populations;
//! * [`StochasticBatch`] — a coarse-grained batch engine (one virtual
//!   device thread per replicate, the cuTauLeaping design) returning
//!   ensemble statistics and simulated device time.
//!
//! The stochastic and deterministic views agree where theory says they
//! must: for linear networks the SSA ensemble mean follows the ODE
//! solution, which the integration tests assert.
//!
//! # Example
//!
//! ```
//! use paraspace_rbm::{Reaction, ReactionBasedModel};
//! use paraspace_stochastic::{DirectMethod, StochasticSimulator};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Isomerization A → B starting from 1000 molecules of A.
//! let mut m = ReactionBasedModel::new();
//! let a = m.add_species("A", 1000.0);
//! let b = m.add_species("B", 0.0);
//! m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0))?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let traj = DirectMethod::new().simulate(&m, &[0.5, 1.0], &mut rng)?;
//! let total = traj.states[1][0] + traj.states[1][1];
//! assert_eq!(total, 1000, "molecules are conserved");
//! # Ok(())
//! # }
//! ```

mod batch;
mod propensity;
mod sampling;
mod ssa;
mod tau;

pub use batch::{EnsembleStats, StochasticBatch, StochasticBatchResult};
pub use propensity::{propensities, PropensityTable};
pub use sampling::poisson;
pub use ssa::DirectMethod;
pub use tau::TauLeaping;

use paraspace_rbm::{RbmError, ReactionBasedModel};
use rand::Rng;

/// A sampled stochastic trajectory: integer molecule counts per species at
/// each requested time point.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticTrajectory {
    /// The sample times.
    pub times: Vec<f64>,
    /// One count vector per sample time.
    pub states: Vec<Vec<u64>>,
    /// Reaction firings executed.
    pub firings: u64,
    /// Algorithm steps (SSA events or tau leaps).
    pub steps: u64,
}

impl StochasticTrajectory {
    /// The trajectory of one species across the samples.
    ///
    /// # Panics
    ///
    /// Panics if `species` is out of range.
    pub fn component(&self, species: usize) -> Vec<u64> {
        self.states.iter().map(|s| s[species]).collect()
    }
}

/// A stochastic simulator over reaction-based models.
pub trait StochasticSimulator {
    /// Algorithm name (`"ssa"`, `"tau-leaping"`).
    fn name(&self) -> &'static str;

    /// Simulates one realization, sampling at `times` (non-decreasing).
    ///
    /// Initial concentrations are rounded to molecule counts.
    ///
    /// # Errors
    ///
    /// Model-validation failures ([`RbmError`]).
    fn simulate<R: Rng + ?Sized>(
        &self,
        model: &ReactionBasedModel,
        times: &[f64],
        rng: &mut R,
    ) -> Result<StochasticTrajectory, RbmError>
    where
        Self: Sized;
}

/// Rounds a model's initial concentrations to molecule counts.
pub(crate) fn initial_counts(model: &ReactionBasedModel) -> Vec<u64> {
    model.initial_state().iter().map(|&x| x.max(0.0).round() as u64).collect()
}
