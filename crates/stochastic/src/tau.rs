//! Tau-leaping: approximate accelerated stochastic simulation.
//!
//! Implements the Cao–Gillespie–Petzold adaptive step selection: the leap
//! `τ` is the largest step for which every species' expected relative
//! change stays below `ε`, each reaction then fires `Poisson(aᵣ·τ)` times.
//! When the selected leap is no better than a few exact events, or a leap
//! would drive a population negative, the simulator falls back to SSA
//! steps — the standard hybrid safeguard.

use crate::chaos::{apply_faults, StochFault};
use crate::error::validate_propensities;
use crate::propensity::PropensityTable;
use crate::sampling::poisson;
use crate::tau_batch::TauLeapBatch;
use crate::{StochasticError, StochasticSimulator, StochasticTrajectory};
use rand::Rng;

/// The tau-leaping simulator.
///
/// # Example
///
/// ```
/// use paraspace_rbm::{Reaction, ReactionBasedModel};
/// use paraspace_stochastic::{StochasticSimulator, TauLeaping};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ReactionBasedModel::new();
/// let a = m.add_species("A", 10_000.0);
/// m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 1.0))?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let traj = TauLeaping::new().simulate(&m, &[1.0], &mut rng)?;
/// // Leaping needs orders of magnitude fewer steps than the ~6300 SSA events.
/// assert!(traj.steps < 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeaping {
    /// Relative-change tolerance ε (published default 0.03).
    epsilon: f64,
    /// Fall back to SSA when the leap would cover fewer than this many
    /// expected events.
    ssa_threshold: f64,
}

impl Default for TauLeaping {
    fn default() -> Self {
        TauLeaping::new()
    }
}

impl TauLeaping {
    /// A simulator with ε = 0.03 (Cao et al.'s recommendation).
    pub fn new() -> Self {
        TauLeaping { epsilon: 0.03, ssa_threshold: 10.0 }
    }

    /// Overrides ε (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = epsilon;
        self
    }

    /// The Cao tau-selection bound at state `x` with propensities `a`.
    fn select_tau(&self, table: &PropensityTable, x: &[u64], a: &[f64]) -> f64 {
        let n = table.n_species();
        let m = table.n_reactions();
        let mut tau = f64::INFINITY;
        for s in 0..n {
            // μ_s = Σ_r ν_rs a_r ; σ²_s = Σ_r ν_rs² a_r.
            let mut mu = 0.0;
            let mut sigma2 = 0.0;
            for r in 0..m {
                let v = table.net_change(r, s) as f64;
                if v != 0.0 {
                    mu += v * a[r];
                    sigma2 += v * v * a[r];
                }
            }
            if mu == 0.0 && sigma2 == 0.0 {
                continue;
            }
            // g_i ≈ highest reactant order touching s (2 is a safe bound
            // for the ≤2-order networks here).
            let bound = (self.epsilon * x[s] as f64 / 2.0).max(1.0);
            if mu != 0.0 {
                tau = tau.min(bound / mu.abs());
            }
            if sigma2 != 0.0 {
                tau = tau.min(bound * bound / sigma2);
            }
        }
        tau
    }
}

impl StochasticSimulator for TauLeaping {
    fn name(&self) -> &'static str {
        "tau-leaping"
    }

    fn simulate_counts<R: Rng + ?Sized>(
        &self,
        table: &PropensityTable,
        x0: &[u64],
        times: &[f64],
        rng: &mut R,
        faults: &[StochFault],
    ) -> Result<StochasticTrajectory, StochasticError> {
        let mut x = x0.to_vec();
        let mut a = vec![0.0; table.n_reactions()];
        let mut t = 0.0f64;
        let mut evals = 0u64;
        let mut traj = StochasticTrajectory {
            times: Vec::with_capacity(times.len()),
            states: Vec::with_capacity(times.len()),
            firings: 0,
            steps: 0,
        };

        for &ts in times {
            while t < ts {
                let a0 = table.propensities_into(&x, &mut a);
                apply_faults(faults, evals, &mut a);
                evals += 1;
                validate_propensities(&a, t, traj.steps)?;
                if a0 <= 0.0 {
                    t = ts;
                    break;
                }
                let tau = self.select_tau(table, &x, &a).min(ts - t);

                if tau * a0 < self.ssa_threshold {
                    // Exact fallback: a handful of SSA events.
                    let dt = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / a0;
                    if t + dt > ts {
                        t = ts;
                        break;
                    }
                    t += dt;
                    let mut target = rng.gen::<f64>() * a0;
                    let mut chosen = table.n_reactions() - 1;
                    for (r, &ar) in a.iter().enumerate() {
                        if target < ar {
                            chosen = r;
                            break;
                        }
                        target -= ar;
                    }
                    table.fire(chosen, &mut x);
                    traj.firings += 1;
                    traj.steps += 1;
                    continue;
                }

                // Leap: sample firings, retrying with τ/2 on a negative
                // excursion (the standard rejection safeguard).
                let mut leap_tau = tau;
                'leap: loop {
                    let mut candidate = x.clone();
                    let mut fired = 0u64;
                    for (r, &ar) in a.iter().enumerate() {
                        if ar <= 0.0 {
                            continue;
                        }
                        let k = poisson(ar * leap_tau, rng);
                        if k > 0 && !table.apply(r, k, &mut candidate) {
                            leap_tau *= 0.5;
                            if leap_tau * a0 < 1.0 {
                                // Too constrained: do one SSA event instead.
                                break 'leap;
                            }
                            continue 'leap;
                        }
                        fired += k;
                    }
                    x = candidate;
                    t += leap_tau;
                    traj.firings += fired;
                    traj.steps += 1;
                    break;
                }
            }
            traj.times.push(ts);
            traj.states.push(x.clone());
        }
        Ok(traj)
    }

    fn lane_kernel(&self) -> Option<TauLeapBatch> {
        Some(TauLeapBatch::with_params(self.epsilon, self.ssa_threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::StochFault;
    use crate::{initial_counts, DirectMethod};
    use paraspace_rbm::{Reaction, ReactionBasedModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decay(x0: f64, k: f64) -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", x0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], k)).unwrap();
        m
    }

    #[test]
    fn leaping_is_far_cheaper_than_ssa_on_large_populations() {
        let m = decay(100_000.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let tau = TauLeaping::new().simulate(&m, &[1.0], &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ssa = DirectMethod::new().simulate(&m, &[1.0], &mut rng).unwrap();
        assert!(tau.steps * 20 < ssa.steps, "tau {} steps vs ssa {} steps", tau.steps, ssa.steps);
    }

    #[test]
    fn leaping_mean_matches_ode() {
        let m = decay(50_000.0, 1.0);
        let t = 0.5f64;
        let exact = 50_000.0 * (-t).exp();
        let mut rng = StdRng::seed_from_u64(2);
        let sim = TauLeaping::new();
        let n = 40;
        let mean: f64 = (0..n)
            .map(|_| sim.simulate(&m, &[t], &mut rng).unwrap().states[0][0] as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - exact).abs() / exact < 0.01, "tau-leaping mean {mean} vs ODE {exact}");
    }

    #[test]
    fn leaping_agrees_with_ssa_distributionally() {
        // Reversible isomerization: compare ensemble means at equilibrium.
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 2000.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 1.0)).unwrap();
        // Equilibrium: A/(A+B) = 1/3.
        let mut rng = StdRng::seed_from_u64(3);
        let sim = TauLeaping::new();
        let n = 30;
        let mean_a: f64 = (0..n)
            .map(|_| sim.simulate(&m, &[10.0], &mut rng).unwrap().states[0][0] as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_a - 2000.0 / 3.0).abs() < 25.0,
            "equilibrium A mean {mean_a} vs {}",
            2000.0 / 3.0
        );
    }

    #[test]
    fn small_populations_fall_back_to_exact_events() {
        // With ~10 molecules every leap is tiny: steps ≈ firings (SSA mode).
        let m = decay(10.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let traj = TauLeaping::new().simulate(&m, &[5.0], &mut rng).unwrap();
        assert_eq!(traj.states[0][0] + traj.firings, 10, "every event accounted for");
        assert_eq!(traj.steps, traj.firings, "small populations must run exactly");
    }

    #[test]
    fn conservation_holds_through_leaps() {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 50_000.0);
        let b = m.add_species("B", 0.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 3.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let traj = TauLeaping::new().simulate(&m, &[0.5, 1.0, 2.0], &mut rng).unwrap();
        for s in &traj.states {
            assert_eq!(s[0] + s[1], 50_000);
        }
    }

    #[test]
    fn epsilon_trades_steps_for_accuracy() {
        let m = decay(100_000.0, 1.0);
        let run = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(6);
            TauLeaping::new().with_epsilon(eps).simulate(&m, &[1.0], &mut rng).unwrap().steps
        };
        assert!(run(0.1) < run(0.01), "looser epsilon must take fewer leaps");
    }

    #[test]
    fn overflowing_propensity_is_a_typed_error() {
        // A finite-but-huge rate constant passes model validation, then
        // overflows to +∞ in the very first propensity evaluation; the
        // hardening layer must catch it before `select_tau` sees it.
        let m = decay(1000.0, f64::MAX);
        let mut rng = StdRng::seed_from_u64(7);
        let err = TauLeaping::new().simulate(&m, &[1.0], &mut rng).unwrap_err();
        assert!(
            matches!(
                err,
                StochasticError::BadPropensity { reaction: 0, value: f64::INFINITY, step: 0, .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn injected_fault_trips_at_its_ordinal_deterministically() {
        let m = decay(100_000.0, 1.0);
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let faults = [StochFault::nan(0, 4)];
        let run = || {
            let mut rng = StdRng::seed_from_u64(8);
            TauLeaping::new().simulate_counts(&table, &x0, &[1.0], &mut rng, &faults)
        };
        let (a, b) = (run().unwrap_err(), run().unwrap_err());
        assert_eq!(a, b, "retries must re-fault identically");
        match a {
            StochasticError::BadPropensity { reaction, value, step, .. } => {
                assert_eq!(reaction, 0);
                assert!(value.is_nan());
                assert!(step <= 4, "each evaluation commits at most one step, got {step}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
