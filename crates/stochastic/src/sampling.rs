//! Discrete random sampling for the leaping methods.

use rand::Rng;

/// Samples a Poisson(λ) variate.
///
/// Inversion by sequential CDF search for small means — exact, and it
/// consumes exactly **one** uniform per variate where Knuth's
/// multiplication method draws `λ + 1` in expectation (the draws are the
/// expensive part of the leaping hot loop: every uniform is a counter
/// mix, and a leap samples one variate per reaction). For `λ ≥ 30` the PA
/// normal-approximation with continuity correction (error negligible
/// against tau-leaping's own O(τ²) bias, and what GPU implementations of
/// tau-leaping typically ship).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let k = paraspace_stochastic::poisson(4.0, &mut rng);
/// assert!(k < 50);
/// ```
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "poisson mean must be finite and non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Inversion: one uniform, then walk the CDF. `p` decays
        // geometrically past k ≈ λ, so the underflow guard bounds the
        // walk even when `u` lands in the last representable sliver of
        // the tail.
        let u: f64 = rng.gen();
        let mut p = (-lambda).exp();
        let mut f = p;
        let mut k = 0u64;
        while u > f {
            k += 1;
            p *= lambda / k as f64;
            f += p;
            if p < f64::MIN_POSITIVE {
                break;
            }
        }
        k
    } else {
        // Normal approximation N(λ, λ) with continuity correction.
        let z = standard_normal(rng);
        let v = lambda + lambda.sqrt() * z + 0.5;
        if v < 0.0 {
            0
        } else {
            v.floor() as u64
        }
    }
}

/// A standard normal variate (Box–Muller).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| poisson(lambda, &mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn small_lambda_mean_and_variance() {
        let (mean, var) = sample_stats(3.0, 20_000, 1);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn large_lambda_mean_and_variance() {
        let (mean, var) = sample_stats(200.0, 20_000, 2);
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
        assert!((var - 200.0).abs() < 8.0, "var {var}");
    }

    #[test]
    fn zero_lambda_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(poisson(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn tiny_lambda_is_mostly_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let zeros = (0..10_000).filter(|_| poisson(0.01, &mut rng) == 0).count();
        // P(0) = e^{-0.01} ≈ 0.990.
        assert!(zeros > 9_800, "zeros {zeros}");
    }

    #[test]
    #[should_panic(expected = "poisson mean")]
    fn negative_lambda_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = poisson(-1.0, &mut rng);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
