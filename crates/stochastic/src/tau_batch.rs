//! Lockstep tau-leaping lanes: SoA-batched stochastic ensembles.
//!
//! [`TauLeapBatch`] advances `L` replicates of one parameterization in
//! lockstep through the tau-leaping loop, the stochastic sibling of the
//! deterministic `Dopri5Batch`/`Radau5Batch` lane kernels. All lanes share
//! the compiled propensity structure and rate constants; the per-tick
//! work splits into
//!
//! * **batched sweeps** (lanes innermost, autovectorizable): propensity
//!   evaluation over the species-major/lane-minor `u64` count state via
//!   [`CompiledStoich::propensities_lanes`], per-lane propensity sums,
//!   and the Cao tau-selection sweep `μ_s/σ²_s` over the species-major
//!   net-change CSR — the parts a GPU would run as coalesced warps;
//! * **per-lane tails** (inherently divergent): Poisson firing draws, the
//!   τ-halving rejection loop, the exact-SSA fallback for near-critical
//!   populations, and sample delivery — the parts a GPU serializes as
//!   divergent branches, and the host runs as short scalar code per lane.
//!
//! # The determinism contract
//!
//! Each lane executes *exactly* the scalar [`TauLeaping`] iteration — the
//! same floating-point operations in the same order, the same RNG draw
//! sequence against its own [`CounterRng`] stream — so every lane's
//! trajectory is bitwise identical to `TauLeaping::simulate_counts` with
//! that replicate's stream. Lane width, lane packing order, and lane
//! compaction (a retired lane rebinds the next pending replicate, the
//! mask-and-compact discipline of the ODE lane kernels) are therefore
//! pure scheduling decisions: they change throughput and occupancy, never
//! a trajectory. The tests assert the equality bit-for-bit.
//!
//! [`TauLeaping`]: crate::TauLeaping
//! [`CompiledStoich::propensities_lanes`]: paraspace_rbm::CompiledStoich::propensities_lanes

use crate::error::validate_propensities;
use crate::propensity::PropensityTable;
use crate::rng::CounterRng;
use crate::sampling::poisson;
use crate::{StochasticError, StochasticTrajectory};
use rand::Rng;

/// Occupancy report of one lockstep ensemble run, in the same shape the
/// deterministic lane kernels feed to the vgpu lane accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TauLeapReport {
    /// Lane width the kernel ran at.
    pub width: usize,
    /// Lockstep ticks executed (each sweeps all `width` lane slots).
    pub lockstep_iters: u64,
    /// Productive lane-steps: lane slots holding a live replicate, summed
    /// over ticks.
    pub lane_steps: u64,
}

/// One lane's bookkeeping: which replicate it runs and where that
/// replicate stands.
struct Lane {
    replicate: usize,
    t: f64,
    sample_idx: usize,
    rng: CounterRng,
    out_times: Vec<f64>,
    out_states: Vec<Vec<u64>>,
    firings: u64,
    steps: u64,
}

/// The lockstep tau-leaping lane kernel.
///
/// Construct via [`TauLeaping::lane_kernel`](crate::StochasticSimulator::lane_kernel)
/// to inherit a simulator's ε; [`StochasticBatch`](crate::StochasticBatch)
/// does this automatically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeapBatch {
    epsilon: f64,
    ssa_threshold: f64,
}

impl Default for TauLeapBatch {
    fn default() -> Self {
        TauLeapBatch::new()
    }
}

impl TauLeapBatch {
    /// A kernel with the scalar defaults (ε = 0.03, SSA threshold 10).
    pub fn new() -> Self {
        TauLeapBatch { epsilon: 0.03, ssa_threshold: 10.0 }
    }

    /// A kernel mirroring explicit scalar parameters.
    pub fn with_params(epsilon: f64, ssa_threshold: f64) -> Self {
        TauLeapBatch { epsilon, ssa_threshold }
    }

    /// Runs one replicate per stream through lockstep lanes of `width`,
    /// sampling at `times` (non-decreasing). Replicate `i` starts from
    /// `x0` and draws from `streams[i]`; outcomes come back in stream
    /// order. Lanes retire as replicates finish (or trip the propensity
    /// hardening) and rebind the next pending replicate.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `x0.len() != table.n_species()`.
    pub fn run(
        &self,
        table: &PropensityTable,
        x0: &[u64],
        times: &[f64],
        width: usize,
        streams: &[CounterRng],
    ) -> (Vec<Result<StochasticTrajectory, StochasticError>>, TauLeapReport) {
        assert!(width > 0, "lane width must be positive");
        let stoich = table.stoich();
        let n = stoich.n_species();
        let m = stoich.n_reactions();
        assert_eq!(x0.len(), n, "initial counts must cover every species");
        let n_rep = streams.len();
        let lanes = width.min(n_rep.max(1));
        let mut report = TauLeapReport { width: lanes, lockstep_iters: 0, lane_steps: 0 };
        if n_rep == 0 {
            return (Vec::new(), report);
        }

        let mut outcomes: Vec<Option<Result<StochasticTrajectory, StochasticError>>> =
            (0..n_rep).map(|_| None).collect();
        // Species-major, lane-minor count state.
        let mut counts = vec![0u64; n * lanes];
        let mut a = vec![0.0f64; m * lanes];
        let mut a0 = vec![0.0f64; lanes];
        let mut tau_sel = vec![0.0f64; lanes];
        let mut mu = vec![0.0f64; lanes];
        let mut sigma2 = vec![0.0f64; lanes];
        let mut cand = vec![0u64; n];
        let mut slots: Vec<Option<Lane>> = (0..lanes).map(|_| None).collect();
        let mut next_pending = 0usize;

        // Binds pending replicates to lane `l`, delivering any samples due
        // at t = 0 immediately (mirroring the scalar `while t < ts` guard,
        // which never enters the loop for ts ≤ 0). Replicates whose entire
        // schedule is due at once complete here and the next one binds.
        let bind = |l: usize,
                    slots: &mut Vec<Option<Lane>>,
                    counts: &mut Vec<u64>,
                    next_pending: &mut usize,
                    outcomes: &mut Vec<Option<Result<StochasticTrajectory, StochasticError>>>| {
            slots[l] = None;
            while *next_pending < n_rep {
                let replicate = *next_pending;
                *next_pending += 1;
                for s in 0..n {
                    counts[s * lanes + l] = x0[s];
                }
                let mut lane = Lane {
                    replicate,
                    t: 0.0,
                    sample_idx: 0,
                    rng: streams[replicate].clone(),
                    out_times: Vec::with_capacity(times.len()),
                    out_states: Vec::with_capacity(times.len()),
                    firings: 0,
                    steps: 0,
                };
                while lane.sample_idx < times.len() && lane.t >= times[lane.sample_idx] {
                    lane.out_times.push(times[lane.sample_idx]);
                    lane.out_states.push(x0.to_vec());
                    lane.sample_idx += 1;
                }
                if lane.sample_idx == times.len() {
                    outcomes[lane.replicate] = Some(Ok(StochasticTrajectory {
                        times: lane.out_times,
                        states: lane.out_states,
                        firings: lane.firings,
                        steps: lane.steps,
                    }));
                    continue;
                }
                slots[l] = Some(lane);
                break;
            }
        };
        for l in 0..lanes {
            bind(l, &mut slots, &mut counts, &mut next_pending, &mut outcomes);
        }

        while slots.iter().any(Option::is_some) {
            report.lockstep_iters += 1;
            report.lane_steps += slots.iter().filter(|s| s.is_some()).count() as u64;

            // Batched sweeps over all lane slots (idle slots carry stale
            // counts; their results are never read).
            stoich.propensities_lanes(&counts, lanes, &mut a);
            stoich.propensity_sums_lanes(&a, lanes, &mut a0);
            // Cao tau selection, species outer / reactions inner / lanes
            // innermost: each lane accumulates μ/σ² in exactly the scalar
            // `select_tau` order.
            tau_sel.fill(f64::INFINITY);
            for s in 0..n {
                mu.fill(0.0);
                sigma2.fill(0.0);
                let rs = stoich.species_net_reactions(s);
                let vs = stoich.species_net_deltas(s);
                for (r, &v) in rs.iter().zip(vs) {
                    let row = &a[*r as usize * lanes..(*r as usize + 1) * lanes];
                    for l in 0..lanes {
                        mu[l] += v * row[l];
                        sigma2[l] += v * v * row[l];
                    }
                }
                let xrow = &counts[s * lanes..(s + 1) * lanes];
                for l in 0..lanes {
                    if mu[l] == 0.0 && sigma2[l] == 0.0 {
                        continue;
                    }
                    let bound = (self.epsilon * xrow[l] as f64 / 2.0).max(1.0);
                    if mu[l] != 0.0 {
                        tau_sel[l] = tau_sel[l].min(bound / mu[l].abs());
                    }
                    if sigma2[l] != 0.0 {
                        tau_sel[l] = tau_sel[l].min(bound * bound / sigma2[l]);
                    }
                }
            }

            // Per-lane tails: one scalar tau-leaping iteration each.
            for l in 0..lanes {
                let Some(lane) = slots[l].as_mut() else { continue };
                let ts = times[lane.sample_idx];
                // Hardening: the same check the scalar path runs right
                // after its propensity evaluation.
                let lane_a = |r: usize| a[r * lanes + l];
                let bad = (0..m).any(|r| !lane_a(r).is_finite() || lane_a(r) < 0.0);
                if bad {
                    // Gather the lane's row and report through the shared
                    // validator for identical error payloads.
                    let mut row = vec![0.0; m];
                    for r in 0..m {
                        row[r] = lane_a(r);
                    }
                    let err = validate_propensities(&row, lane.t, lane.steps)
                        .expect_err("offender found above");
                    outcomes[lane.replicate] = Some(Err(err));
                    bind(l, &mut slots, &mut counts, &mut next_pending, &mut outcomes);
                    continue;
                }
                let al0 = a0[l];
                if al0 <= 0.0 {
                    lane.t = ts;
                } else {
                    let tau = tau_sel[l].min(ts - lane.t);
                    if tau * al0 < self.ssa_threshold {
                        // Exact fallback: one SSA event.
                        let dt = -lane.rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / al0;
                        if lane.t + dt > ts {
                            lane.t = ts;
                        } else {
                            lane.t += dt;
                            let mut target = lane.rng.gen::<f64>() * al0;
                            let mut chosen = m - 1;
                            for r in 0..m {
                                let ar = a[r * lanes + l];
                                if target < ar {
                                    chosen = r;
                                    break;
                                }
                                target -= ar;
                            }
                            stoich.apply_lane(chosen, 1, &mut counts, lanes, l);
                            lane.firings += 1;
                            lane.steps += 1;
                        }
                    } else {
                        // Leap: sample firings against a gathered
                        // candidate, halving τ on a negative excursion.
                        let mut leap_tau = tau;
                        'leap: loop {
                            for s in 0..n {
                                cand[s] = counts[s * lanes + l];
                            }
                            let mut fired = 0u64;
                            for r in 0..m {
                                let ar = a[r * lanes + l];
                                if ar <= 0.0 {
                                    continue;
                                }
                                let k = poisson(ar * leap_tau, &mut lane.rng);
                                if k > 0 && !stoich.apply(r, k, &mut cand) {
                                    leap_tau *= 0.5;
                                    if leap_tau * al0 < 1.0 {
                                        // Too constrained: one SSA event
                                        // next tick instead.
                                        break 'leap;
                                    }
                                    continue 'leap;
                                }
                                fired += k;
                            }
                            for s in 0..n {
                                counts[s * lanes + l] = cand[s];
                            }
                            lane.t += leap_tau;
                            lane.firings += fired;
                            lane.steps += 1;
                            break;
                        }
                    }
                }
                // Sample delivery (the scalar loop records when `t`
                // reaches each window's end).
                while lane.sample_idx < times.len() && lane.t >= times[lane.sample_idx] {
                    lane.out_times.push(times[lane.sample_idx]);
                    let mut state = Vec::with_capacity(n);
                    for s in 0..n {
                        state.push(counts[s * lanes + l]);
                    }
                    lane.out_states.push(state);
                    lane.sample_idx += 1;
                }
                if lane.sample_idx == times.len() {
                    let lane = slots[l].take().expect("lane present");
                    outcomes[lane.replicate] = Some(Ok(StochasticTrajectory {
                        times: lane.out_times,
                        states: lane.out_states,
                        firings: lane.firings,
                        steps: lane.steps,
                    }));
                    bind(l, &mut slots, &mut counts, &mut next_pending, &mut outcomes);
                }
            }
        }

        let outcomes = outcomes.into_iter().map(|o| o.expect("every replicate resolved")).collect();
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{initial_counts, StochasticSimulator, TauLeaping};
    use paraspace_rbm::{Reaction, ReactionBasedModel};

    fn two_species_model() -> ReactionBasedModel {
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 30_000.0);
        let b = m.add_species("B", 50.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 2.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 1.0)).unwrap();
        m.add_reaction(Reaction::mass_action(&[(b, 2)], &[], 0.01)).unwrap();
        m
    }

    fn streams(n: usize) -> Vec<CounterRng> {
        (0..n).map(|i| CounterRng::replicate_stream(42, 0, i as u64)).collect()
    }

    #[test]
    fn lanes_are_bitwise_equal_to_scalar_at_every_width() {
        let m = two_species_model();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let times = [0.05, 0.1, 0.3];
        let n_rep = 11; // deliberately not a multiple of any width
        let scalar: Vec<StochasticTrajectory> = (0..n_rep)
            .map(|i| {
                let mut rng = CounterRng::replicate_stream(42, 0, i as u64);
                TauLeaping::new().simulate_counts(&table, &x0, &times, &mut rng, &[]).unwrap()
            })
            .collect();
        for width in [1, 2, 4, 8] {
            let (outcomes, report) =
                TauLeapBatch::new().run(&table, &x0, &times, width, &streams(n_rep));
            assert_eq!(outcomes.len(), n_rep);
            for (i, (o, s)) in outcomes.iter().zip(&scalar).enumerate() {
                assert_eq!(o.as_ref().unwrap(), s, "width {width} replicate {i}");
            }
            assert!(report.lane_steps <= report.width as u64 * report.lockstep_iters);
            assert!(report.lane_steps > 0);
        }
    }

    #[test]
    fn compaction_keeps_retired_lanes_productive() {
        let m = two_species_model();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        // Many more replicates than lanes: occupancy should stay high
        // because retiring lanes rebind pending replicates.
        let (outcomes, report) = TauLeapBatch::new().run(&table, &x0, &[0.1], 4, &streams(32));
        assert_eq!(outcomes.len(), 32);
        assert!(outcomes.iter().all(Result::is_ok));
        let occupancy =
            report.lane_steps as f64 / (report.width as u64 * report.lockstep_iters) as f64;
        assert!(occupancy > 0.8, "occupancy {occupancy}");
    }

    #[test]
    fn zero_time_samples_record_the_initial_state() {
        let m = two_species_model();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let (outcomes, _) = TauLeapBatch::new().run(&table, &x0, &[0.0, 0.05], 2, &streams(3));
        for o in &outcomes {
            let traj = o.as_ref().unwrap();
            assert_eq!(traj.states[0], x0, "t = 0 sample is the initial state");
        }
        // And it matches the scalar simulator exactly.
        let mut rng = CounterRng::replicate_stream(42, 0, 0);
        let scalar =
            TauLeaping::new().simulate_counts(&table, &x0, &[0.0, 0.05], &mut rng, &[]).unwrap();
        assert_eq!(outcomes[0].as_ref().unwrap(), &scalar);
    }

    #[test]
    fn empty_schedules_and_empty_ensembles_are_clean() {
        let m = two_species_model();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let (outcomes, report) = TauLeapBatch::new().run(&table, &x0, &[0.1], 4, &[]);
        assert!(outcomes.is_empty());
        assert_eq!(report.lockstep_iters, 0);
        let (outcomes, _) = TauLeapBatch::new().run(&table, &x0, &[], 4, &streams(5));
        assert_eq!(outcomes.len(), 5);
        for o in outcomes {
            let traj = o.unwrap();
            assert!(traj.times.is_empty() && traj.steps == 0);
        }
    }

    #[test]
    fn bad_propensities_retire_the_lane_without_touching_others() {
        // A finite-but-huge rate constant passes model validation, then
        // overflows every lane's propensity to +∞ at the first batched
        // evaluation; each lane must retire with the typed error.
        let mut m = ReactionBasedModel::new();
        let a = m.add_species("A", 1000.0);
        m.add_reaction(Reaction::mass_action(&[(a, 1)], &[], f64::MAX)).unwrap();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let (outcomes, _) = TauLeapBatch::new().run(&table, &x0, &[1.0], 4, &streams(6));
        assert_eq!(outcomes.len(), 6);
        for o in outcomes {
            assert!(
                matches!(o, Err(StochasticError::BadPropensity { reaction: 0, .. })),
                "lane hardening must trip"
            );
        }
    }

    #[test]
    fn report_width_caps_at_replicate_count() {
        let m = two_species_model();
        let table = PropensityTable::new(&m);
        let x0 = initial_counts(&m);
        let (_, report) = TauLeapBatch::new().run(&table, &x0, &[0.05], 8, &streams(3));
        assert_eq!(report.width, 3, "no point sweeping empty lanes");
    }
}
