//! Deterministic fault injection for the stochastic simulators.
//!
//! The deterministic engines exercise their recovery ladder with
//! `paraspace_solvers::chaos` (NaN/panic/stall faults at a time or RHS
//! ordinal). The stochastic half gets the same treatment at its natural
//! seam: the propensity evaluation. A [`StochFault`] poisons one
//! reaction's propensity to NaN at a chosen *evaluation ordinal* of one
//! replicate; the hardened simulators catch the NaN as a typed
//! [`StochasticError::BadPropensity`](crate::StochasticError::BadPropensity)
//! before tau selection or event selection can consume it.
//!
//! Faults are deterministic by construction — the ordinal counter is part
//! of the replicate's own loop, and the counter-based RNG gives the
//! replicate the same draw sequence on every rerun — so a retried
//! replicate re-faults identically, exactly like the latching
//! `ChaosSystem` faults on the ODE side. The batch engine evicts
//! fault-planned replicates from lane groups and runs them on the scalar
//! path, mirroring the lockstep ODE engines' eviction discipline: one
//! poisoned replicate becomes one contained per-replicate error while
//! every other replicate's trajectory stays bitwise unchanged.

use std::collections::BTreeMap;

/// One injected propensity fault: at the `at_eval`-th propensity
/// evaluation (0-based) of the afflicted replicate, reaction `reaction`'s
/// propensity becomes NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochFault {
    /// Reaction whose propensity is poisoned.
    pub reaction: usize,
    /// Evaluation ordinal (0-based) at which the poison lands.
    pub at_eval: u64,
}

impl StochFault {
    /// A NaN poison on `reaction` at evaluation ordinal `at_eval`.
    pub fn nan(reaction: usize, at_eval: u64) -> Self {
        StochFault { reaction, at_eval }
    }
}

/// A deterministic fault plan for an ensemble: replicate index → faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StochFaultPlan {
    faults: BTreeMap<usize, Vec<StochFault>>,
}

impl StochFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        StochFaultPlan::default()
    }

    /// Adds a fault for `replicate` (builder style).
    pub fn poison(mut self, replicate: usize, fault: StochFault) -> Self {
        self.faults.entry(replicate).or_default().push(fault);
        self
    }

    /// The faults planned for `replicate` (empty slice if none).
    pub fn faults_for(&self, replicate: usize) -> &[StochFault] {
        self.faults.get(&replicate).map_or(&[], Vec::as_slice)
    }

    /// Whether `replicate` has any planned fault (lane-group eviction
    /// predicate).
    pub fn afflicts(&self, replicate: usize) -> bool {
        self.faults.contains_key(&replicate)
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The afflicted replicate indices, ascending.
    pub fn replicates(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.keys().copied()
    }
}

/// Applies the faults due at evaluation ordinal `eval` to a freshly
/// evaluated propensity vector. Returns `true` if anything was poisoned.
pub(crate) fn apply_faults(faults: &[StochFault], eval: u64, a: &mut [f64]) -> bool {
    let mut hit = false;
    for f in faults {
        if f.at_eval == eval && f.reaction < a.len() {
            a[f.reaction] = f64::NAN;
            hit = true;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_per_replicate_and_ordered() {
        let plan = StochFaultPlan::new()
            .poison(7, StochFault::nan(0, 3))
            .poison(2, StochFault::nan(1, 0))
            .poison(7, StochFault::nan(2, 5));
        assert!(plan.afflicts(7) && plan.afflicts(2) && !plan.afflicts(3));
        assert_eq!(plan.faults_for(7).len(), 2);
        assert_eq!(plan.faults_for(3), &[]);
        assert_eq!(plan.replicates().collect::<Vec<_>>(), vec![2, 7]);
        assert!(!plan.is_empty());
        assert!(StochFaultPlan::new().is_empty());
    }

    #[test]
    fn faults_land_only_at_their_ordinal() {
        let faults = [StochFault::nan(1, 2)];
        let mut a = [1.0, 2.0, 3.0];
        assert!(!apply_faults(&faults, 1, &mut a));
        assert_eq!(a, [1.0, 2.0, 3.0]);
        assert!(apply_faults(&faults, 2, &mut a));
        assert!(a[1].is_nan());
        assert_eq!((a[0], a[2]), (1.0, 3.0));
    }

    #[test]
    fn out_of_range_reactions_are_ignored() {
        let faults = [StochFault::nan(9, 0)];
        let mut a = [1.0];
        assert!(!apply_faults(&faults, 0, &mut a));
        assert_eq!(a, [1.0]);
    }
}
