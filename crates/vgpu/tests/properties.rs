//! Property-based tests of the virtual-GPU cost model: the monotonicity and
//! invariance properties every sane hardware model must satisfy.

use paraspace_vgpu::{Device, DeviceConfig, DpModel, KernelLaunch, MemorySpace, ThreadWork};
use proptest::prelude::*;

fn schedule_ns(blocks: usize, tpb: usize, work: ThreadWork) -> f64 {
    let device = Device::new(DeviceConfig::titan_x());
    device.launch(&KernelLaunch::uniform("k", blocks, tpb, work)).time_ns
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// More per-thread work never makes a launch faster.
    #[test]
    fn time_is_monotone_in_flops(
        blocks in 1usize..256, tpb in 1usize..256, flops in 1u64..1_000_000, extra in 1u64..1_000_000
    ) {
        let t1 = schedule_ns(blocks, tpb, ThreadWork::new().with_flops(flops));
        let t2 = schedule_ns(blocks, tpb, ThreadWork::new().with_flops(flops + extra));
        prop_assert!(t2 >= t1, "{t2} < {t1}");
    }

    /// More memory traffic never makes a launch faster, in any space.
    #[test]
    fn time_is_monotone_in_bytes(
        blocks in 1usize..128, tpb in 1usize..128, bytes in 1u64..100_000, which in 0usize..4
    ) {
        let space = MemorySpace::ALL[which];
        let t1 = schedule_ns(blocks, tpb, ThreadWork::new().with_read(space, bytes));
        let t2 = schedule_ns(blocks, tpb, ThreadWork::new().with_read(space, bytes * 2));
        prop_assert!(t2 >= t1, "{space}: {t2} < {t1}");
    }

    /// Cheaper memory spaces never cost more than more distant ones for the
    /// same traffic.
    #[test]
    fn memory_hierarchy_ordering(blocks in 1usize..128, tpb in 1usize..128, bytes in 64u64..50_000) {
        let t = |space| schedule_ns(blocks, tpb, ThreadWork::new().with_read(space, bytes));
        prop_assert!(t(MemorySpace::Register) <= t(MemorySpace::Constant) + 1e-9);
        prop_assert!(t(MemorySpace::Constant) <= t(MemorySpace::Shared) + 1e-9);
        prop_assert!(t(MemorySpace::Shared) <= t(MemorySpace::CachedGlobal) + 1e-9);
        prop_assert!(t(MemorySpace::CachedGlobal) <= t(MemorySpace::Global) + 1e-9);
    }

    /// SIMT lockstep: a warp is exactly as slow as its slowest lane, so
    /// zeroing every other lane's work changes nothing.
    #[test]
    fn lockstep_invariance(blocks in 1usize..32, flops in 100u64..100_000) {
        let device = Device::new(DeviceConfig::titan_x());
        let uniform = KernelLaunch::uniform("u", blocks, 32, ThreadWork::new().with_flops(flops));
        let mut skewed_work = vec![ThreadWork::new(); blocks * 32];
        for b in 0..blocks {
            for lane in (0..32).step_by(2) {
                skewed_work[b * 32 + lane] = ThreadWork::new().with_flops(flops);
            }
        }
        let skewed = KernelLaunch::per_thread("s", blocks, 32, skewed_work);
        let tu = device.launch(&uniform).time_ns;
        let ts = device.launch(&skewed).time_ns;
        prop_assert!((tu - ts).abs() <= 1e-6 * tu.max(1.0), "{tu} vs {ts}");
    }

    /// The DP congestion factor is monotone in the pending count.
    #[test]
    fn dp_factor_monotone(a in 0usize..20_000, b in 0usize..20_000) {
        let dp = DpModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(dp.launch_overhead_factor(lo) <= dp.launch_overhead_factor(hi) + 1e-12);
    }

    /// Timeline totals equal the sum of entry durations.
    #[test]
    fn timeline_is_consistent(n_launches in 1usize..10, flops in 1u64..10_000) {
        let device = Device::new(DeviceConfig::titan_x());
        let mut sum = 0.0;
        for i in 0..n_launches {
            let stats = device.launch(&KernelLaunch::uniform(
                format!("k{i}"),
                4,
                64,
                ThreadWork::new().with_flops(flops),
            ));
            sum += stats.time_ns;
        }
        prop_assert!((device.elapsed_ns() - sum).abs() < 1e-6 * sum.max(1.0));
        prop_assert_eq!(device.timeline().entries().len(), n_launches);
    }
}
