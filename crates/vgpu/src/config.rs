//! Device descriptions.

use crate::MemorySpace;

/// Architectural parameters of the simulated device.
///
/// The defaults model the GPU the original study used (a GeForce GTX
/// Titan X, Maxwell: 3072 CUDA cores as 24 SMs × 128 cores, 1.075 GHz).
///
/// # Example
///
/// ```
/// let cfg = paraspace_vgpu::DeviceConfig::titan_x();
/// assert_eq!(cfg.sm_count * cfg.cores_per_sm, 3072);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Device display name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM (one FLOP per core per cycle).
    pub cores_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Global-memory latency in cycles.
    pub global_latency_cycles: f64,
    /// L2-cache hit latency in cycles (the `CachedGlobal` space).
    pub l2_latency_cycles: f64,
    /// Global-memory bandwidth in GB/s (device-wide).
    pub global_bandwidth_gbs: f64,
    /// Shared-memory latency in cycles.
    pub shared_latency_cycles: f64,
    /// Constant-cache latency in cycles (hit).
    pub constant_latency_cycles: f64,
    /// Host-side kernel launch overhead in nanoseconds.
    pub kernel_launch_ns: f64,
    /// Base device-side (dynamic parallelism) child-launch overhead in ns.
    pub child_launch_ns: f64,
}

impl DeviceConfig {
    /// The GPU of the original evaluation: GTX Titan X (Maxwell).
    pub fn titan_x() -> Self {
        DeviceConfig {
            name: "Simulated GeForce GTX Titan X (Maxwell)".to_string(),
            sm_count: 24,
            cores_per_sm: 128,
            warp_size: 32,
            clock_ghz: 1.075,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 96 * 1024,
            global_latency_cycles: 400.0,
            l2_latency_cycles: 80.0,
            global_bandwidth_gbs: 336.5,
            shared_latency_cycles: 25.0,
            constant_latency_cycles: 8.0,
            kernel_launch_ns: 5_000.0,
            child_launch_ns: 1_600.0,
        }
    }

    /// A small educational device (one SM) for deterministic unit tests.
    pub fn minimal() -> Self {
        DeviceConfig {
            name: "Minimal test device".to_string(),
            sm_count: 1,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.0,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            registers_per_sm: 32_768,
            shared_mem_per_sm: 48 * 1024,
            global_latency_cycles: 400.0,
            l2_latency_cycles: 80.0,
            global_bandwidth_gbs: 100.0,
            shared_latency_cycles: 25.0,
            constant_latency_cycles: 8.0,
            kernel_launch_ns: 5_000.0,
            child_launch_ns: 1_600.0,
        }
    }

    /// Latency in cycles of one access batch to a memory space.
    pub fn latency_cycles(&self, space: MemorySpace) -> f64 {
        match space {
            MemorySpace::Global => self.global_latency_cycles,
            MemorySpace::CachedGlobal => self.l2_latency_cycles,
            MemorySpace::Shared => self.shared_latency_cycles,
            MemorySpace::Constant => self.constant_latency_cycles,
            MemorySpace::Register => 0.0,
        }
    }

    /// Seconds per cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1e-9 / self.clock_ghz
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }

    /// Warps that issue simultaneously per cycle on one SM.
    pub fn warp_issue_width(&self) -> usize {
        (self.cores_per_sm / self.warp_size).max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized configuration fields (a config bug).
    pub fn validate(&self) {
        assert!(self.sm_count > 0, "device needs at least one SM");
        assert!(self.warp_size > 0 && self.cores_per_sm >= self.warp_size);
        assert!(self.clock_ghz > 0.0);
        assert!(self.max_threads_per_sm >= self.warp_size);
        assert!(self.global_bandwidth_gbs > 0.0);
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_published_specs() {
        let c = DeviceConfig::titan_x();
        assert_eq!(c.sm_count * c.cores_per_sm, 3072);
        assert!((c.clock_ghz - 1.075).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn latency_ordering_register_constant_shared_global() {
        let c = DeviceConfig::titan_x();
        assert!(c.latency_cycles(MemorySpace::Register) < c.latency_cycles(MemorySpace::Constant));
        assert!(c.latency_cycles(MemorySpace::Constant) < c.latency_cycles(MemorySpace::Shared));
        assert!(
            c.latency_cycles(MemorySpace::Shared) < c.latency_cycles(MemorySpace::CachedGlobal)
        );
        assert!(
            c.latency_cycles(MemorySpace::CachedGlobal) < c.latency_cycles(MemorySpace::Global)
        );
    }

    #[test]
    fn derived_quantities() {
        let c = DeviceConfig::titan_x();
        assert_eq!(c.max_warps_per_sm(), 64);
        assert_eq!(c.warp_issue_width(), 4);
        assert!((c.cycle_time_s() - 1e-9 / 1.075).abs() < 1e-24);
    }

    #[test]
    fn minimal_device_is_consistent() {
        DeviceConfig::minimal().validate();
    }
}
