//! Kernel workload descriptors.
//!
//! Engines describe what each thread *did* (the host already computed the
//! numerics); the device model turns the description into simulated time.

use crate::MemorySpace;

/// The work performed by one thread of a kernel.
///
/// # Example
///
/// ```
/// use paraspace_vgpu::{MemorySpace, ThreadWork};
///
/// let w = ThreadWork::new()
///     .with_flops(500)
///     .with_read(MemorySpace::Constant, 64)
///     .with_global_write(8);
/// assert_eq!(w.flops, 500);
/// assert_eq!(w.bytes_read(MemorySpace::Constant), 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadWork {
    /// Floating-point operations executed by this thread.
    pub flops: u64,
    /// Bytes read from each space (indexed by [`space_index`]).
    read_bytes: [u64; 5],
    /// Bytes written to each space.
    write_bytes: [u64; 5],
    /// Block-level synchronizations this thread participates in.
    pub syncs: u64,
}

fn space_index(space: MemorySpace) -> usize {
    match space {
        MemorySpace::Global => 0,
        MemorySpace::CachedGlobal => 1,
        MemorySpace::Shared => 2,
        MemorySpace::Constant => 3,
        MemorySpace::Register => 4,
    }
}

impl ThreadWork {
    /// No work.
    pub fn new() -> Self {
        ThreadWork::default()
    }

    /// Sets the flop count (builder style).
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Adds bytes read from a space (builder style).
    pub fn with_read(mut self, space: MemorySpace, bytes: u64) -> Self {
        self.read_bytes[space_index(space)] += bytes;
        self
    }

    /// Adds bytes written to a space (builder style).
    pub fn with_write(mut self, space: MemorySpace, bytes: u64) -> Self {
        self.write_bytes[space_index(space)] += bytes;
        self
    }

    /// Shorthand for a global-memory read.
    pub fn with_global_read(self, bytes: u64) -> Self {
        self.with_read(MemorySpace::Global, bytes)
    }

    /// Shorthand for a global-memory write.
    pub fn with_global_write(self, bytes: u64) -> Self {
        self.with_write(MemorySpace::Global, bytes)
    }

    /// Adds synchronization points (builder style).
    pub fn with_syncs(mut self, syncs: u64) -> Self {
        self.syncs = syncs;
        self
    }

    /// Bytes this thread reads from `space`.
    pub fn bytes_read(&self, space: MemorySpace) -> u64 {
        self.read_bytes[space_index(space)]
    }

    /// Bytes this thread writes to `space`.
    pub fn bytes_written(&self, space: MemorySpace) -> u64 {
        self.write_bytes[space_index(space)]
    }

    /// Total bytes touched in `space`.
    pub fn bytes_touched(&self, space: MemorySpace) -> u64 {
        self.bytes_read(space) + self.bytes_written(space)
    }

    /// Merges another descriptor into this one (sequential composition).
    pub fn absorb(&mut self, other: &ThreadWork) {
        self.flops += other.flops;
        for i in 0..5 {
            self.read_bytes[i] += other.read_bytes[i];
            self.write_bytes[i] += other.write_bytes[i];
        }
        self.syncs += other.syncs;
    }

    /// Scales all counters (e.g. "this pattern repeats k times").
    pub fn repeated(mut self, k: u64) -> Self {
        self.flops *= k;
        for i in 0..5 {
            self.read_bytes[i] *= k;
            self.write_bytes[i] *= k;
        }
        self.syncs *= k;
        self
    }
}

/// A child-grid launch performed from device code (dynamic parallelism).
#[derive(Debug, Clone, PartialEq)]
pub struct ChildLaunch {
    /// Blocks in the child grid.
    pub blocks: usize,
    /// Threads per child block.
    pub threads_per_block: usize,
    /// Uniform per-thread work of the child kernel.
    pub work: ThreadWork,
    /// How many times this child launch repeats (e.g. once per solver step).
    pub repeats: u64,
}

/// A kernel launch: geometry plus per-thread work.
///
/// Threads may be uniform (one descriptor for all) or heterogeneous (one
/// descriptor per thread — how batch engines express that different
/// simulations need different step counts, which creates warp divergence).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLaunch {
    /// Kernel name for reports.
    pub name: String,
    /// Number of blocks in the grid.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Per-thread work: either one uniform descriptor or one per thread
    /// (length `blocks × threads_per_block`).
    work: WorkSpec,
    /// 32-bit registers per thread (occupancy input).
    pub registers_per_thread: usize,
    /// Shared memory per block in bytes (occupancy input).
    pub shared_mem_per_block: usize,
    /// Child launches each thread performs (dynamic parallelism).
    pub children: Vec<ChildLaunch>,
}

#[derive(Debug, Clone, PartialEq)]
enum WorkSpec {
    Uniform(ThreadWork),
    PerThread(Vec<ThreadWork>),
}

impl KernelLaunch {
    /// A launch where every thread performs the same work.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is empty.
    pub fn uniform(
        name: impl Into<String>,
        blocks: usize,
        threads_per_block: usize,
        work: ThreadWork,
    ) -> Self {
        assert!(blocks > 0 && threads_per_block > 0, "kernel geometry must be non-empty");
        KernelLaunch {
            name: name.into(),
            blocks,
            threads_per_block,
            work: WorkSpec::Uniform(work),
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            children: Vec::new(),
        }
    }

    /// A launch with per-thread work descriptors (row-major by block).
    ///
    /// # Panics
    ///
    /// Panics if `work.len() != blocks × threads_per_block` or the geometry
    /// is empty.
    pub fn per_thread(
        name: impl Into<String>,
        blocks: usize,
        threads_per_block: usize,
        work: Vec<ThreadWork>,
    ) -> Self {
        assert!(blocks > 0 && threads_per_block > 0, "kernel geometry must be non-empty");
        assert_eq!(work.len(), blocks * threads_per_block, "one descriptor per thread required");
        KernelLaunch {
            name: name.into(),
            blocks,
            threads_per_block,
            work: WorkSpec::PerThread(work),
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            children: Vec::new(),
        }
    }

    /// Sets register pressure (builder style).
    pub fn with_registers(mut self, registers_per_thread: usize) -> Self {
        self.registers_per_thread = registers_per_thread;
        self
    }

    /// Sets per-block shared memory (builder style).
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Adds a dynamic-parallelism child launch performed by every thread.
    pub fn with_child(mut self, child: ChildLaunch) -> Self {
        self.children.push(child);
        self
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }

    /// The work of thread `(block, lane)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range for a per-thread launch.
    pub fn thread_work(&self, block: usize, lane: usize) -> ThreadWork {
        match &self.work {
            WorkSpec::Uniform(w) => *w,
            WorkSpec::PerThread(v) => v[block * self.threads_per_block + lane],
        }
    }

    /// Sum of flops across all threads (useful for utilization reports).
    pub fn total_flops(&self) -> u64 {
        match &self.work {
            WorkSpec::Uniform(w) => w.flops * self.total_threads() as u64,
            WorkSpec::PerThread(v) => v.iter().map(|w| w.flops).sum(),
        }
    }

    /// Total bytes of DRAM traffic (global space only).
    pub fn total_dram_bytes(&self) -> u64 {
        let per = |w: &ThreadWork| w.bytes_touched(MemorySpace::Global);
        match &self.work {
            WorkSpec::Uniform(w) => per(w) * self.total_threads() as u64,
            WorkSpec::PerThread(v) => v.iter().map(per).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_traffic() {
        let w = ThreadWork::new()
            .with_flops(10)
            .with_read(MemorySpace::Global, 100)
            .with_read(MemorySpace::Global, 50)
            .with_write(MemorySpace::Shared, 8);
        assert_eq!(w.bytes_read(MemorySpace::Global), 150);
        assert_eq!(w.bytes_written(MemorySpace::Shared), 8);
        assert_eq!(w.bytes_touched(MemorySpace::Global), 150);
    }

    #[test]
    fn absorb_and_repeated_compose() {
        let mut a = ThreadWork::new().with_flops(5).with_global_read(10);
        let b = ThreadWork::new().with_flops(3).with_global_write(4).with_syncs(1);
        a.absorb(&b);
        assert_eq!(a.flops, 8);
        assert_eq!(a.bytes_touched(MemorySpace::Global), 14);
        let r = b.repeated(10);
        assert_eq!(r.flops, 30);
        assert_eq!(r.syncs, 10);
    }

    #[test]
    fn uniform_launch_totals() {
        let k = KernelLaunch::uniform("k", 4, 32, ThreadWork::new().with_flops(7));
        assert_eq!(k.total_threads(), 128);
        assert_eq!(k.total_flops(), 7 * 128);
        assert_eq!(k.thread_work(3, 31).flops, 7);
    }

    #[test]
    fn per_thread_launch_indexes_row_major() {
        let mut v = vec![ThreadWork::new(); 64];
        v[32 + 5] = ThreadWork::new().with_flops(99);
        let k = KernelLaunch::per_thread("k", 2, 32, v);
        assert_eq!(k.thread_work(1, 5).flops, 99);
        assert_eq!(k.thread_work(0, 5).flops, 0);
        assert_eq!(k.total_flops(), 99);
    }

    #[test]
    #[should_panic(expected = "one descriptor per thread")]
    fn per_thread_length_mismatch_panics() {
        let _ = KernelLaunch::per_thread("k", 2, 32, vec![ThreadWork::new(); 10]);
    }

    #[test]
    fn dram_accounting_ignores_on_chip_spaces() {
        let w = ThreadWork::new()
            .with_read(MemorySpace::Shared, 1000)
            .with_read(MemorySpace::Constant, 1000)
            .with_global_read(16);
        let k = KernelLaunch::uniform("k", 1, 32, w);
        assert_eq!(k.total_dram_bytes(), 16 * 32);
    }
}
