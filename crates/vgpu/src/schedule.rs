//! The SM scheduler and timing model.
//!
//! Timing follows a documented analytic model — not cycle-by-cycle
//! emulation, but one that preserves every effect the evaluation depends
//! on:
//!
//! 1. **SIMT lockstep / divergence**: a warp's compute time is the *maximum*
//!    flop count over its threads; heterogeneous batch members waste lanes.
//! 2. **Occupancy**: resident blocks per SM are limited by threads, blocks,
//!    registers and shared memory; few resident warps expose memory latency.
//! 3. **Roofline**: an SM's time is `max(compute throughput term, exposed
//!    memory latency term)`, and the whole launch is additionally floored
//!    by DRAM bandwidth.
//! 4. **Waves**: blocks beyond the resident capacity queue up in waves.

use crate::{DeviceConfig, KernelLaunch, MemorySpace};

/// Bytes one warp-level memory transaction serves per thread (coalesced
/// access approximation: 32 threads × 8 B = one 256 B transaction).
const BYTES_PER_REQUEST: f64 = 8.0;
/// Cycles charged per block-level synchronization.
const SYNC_CYCLES: f64 = 30.0;
/// Maximum latency-hiding factor from warp oversubscription.
const MAX_HIDING: f64 = 32.0;

/// Occupancy achieved by a launch on one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident simultaneously on one SM.
    pub resident_blocks: usize,
    /// Warps resident simultaneously on one SM.
    pub resident_warps: usize,
    /// Fraction of the SM's maximum warp residency.
    pub fraction: f64,
    /// Which resource bound (threads/blocks/registers/shared) bit first.
    pub limiter: OccupancyLimiter,
}

/// The resource that limited occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// Thread capacity per SM.
    Threads,
    /// Block-slot capacity per SM.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// The grid itself was too small to fill the SM.
    GridSize,
}

impl Occupancy {
    /// Computes the occupancy of `launch` on `config`.
    pub fn compute(config: &DeviceConfig, launch: &KernelLaunch) -> Occupancy {
        let tpb = launch.threads_per_block;
        let by_threads = config.max_threads_per_sm / tpb.max(1);
        let by_blocks = config.max_blocks_per_sm;
        let regs_per_block = launch.registers_per_thread * tpb;
        let by_registers =
            config.registers_per_sm.checked_div(regs_per_block).unwrap_or(usize::MAX);
        let by_shared =
            config.shared_mem_per_sm.checked_div(launch.shared_mem_per_block).unwrap_or(usize::MAX);
        let mut resident = by_threads.min(by_blocks).min(by_registers).min(by_shared).max(1);
        let mut limiter = if resident == by_threads {
            OccupancyLimiter::Threads
        } else if resident == by_blocks {
            OccupancyLimiter::Blocks
        } else if resident == by_registers {
            OccupancyLimiter::Registers
        } else {
            OccupancyLimiter::SharedMemory
        };
        // A grid smaller than the residency limit cannot fill the SM.
        let blocks_per_sm_avg = launch.blocks.div_ceil(config.sm_count);
        if blocks_per_sm_avg < resident {
            resident = blocks_per_sm_avg.max(1);
            limiter = OccupancyLimiter::GridSize;
        }
        let warps_per_block = tpb.div_ceil(config.warp_size);
        let resident_warps = resident * warps_per_block;
        Occupancy {
            resident_blocks: resident,
            resident_warps,
            fraction: resident_warps as f64 / config.max_warps_per_sm() as f64,
            limiter,
        }
    }
}

/// Timing result of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchStats {
    /// Simulated wall time of the launch in nanoseconds, including the host
    /// launch overhead.
    pub time_ns: f64,
    /// The compute-throughput term (cycles on the critical SM).
    pub compute_cycles: f64,
    /// The exposed-memory-latency term (cycles on the critical SM).
    pub memory_cycles: f64,
    /// Time implied by DRAM bandwidth alone (ns).
    pub dram_time_ns: f64,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Number of block waves on the busiest SM.
    pub waves: usize,
    /// Fraction of issued lanes doing useful work (1 − divergence waste).
    pub lane_efficiency: f64,
    /// Peak-flop utilization of the whole device over the launch.
    pub utilization: f64,
}

/// Schedules a launch (ignoring dynamic-parallelism children; the
/// [`crate::Device`] handles those) and returns its timing.
pub fn schedule(config: &DeviceConfig, launch: &KernelLaunch) -> LaunchStats {
    config.validate();
    let occ = Occupancy::compute(config, launch);
    let warp_size = config.warp_size;
    let warps_per_block = launch.threads_per_block.div_ceil(warp_size);
    let issue_width = config.warp_issue_width() as f64;
    let hiding = (occ.resident_warps as f64 / issue_width).clamp(1.0, MAX_HIDING);

    // Per-SM accumulation: blocks are distributed round-robin.
    let mut sm_compute = vec![0.0f64; config.sm_count];
    let mut sm_memory = vec![0.0f64; config.sm_count];
    let mut useful_flops = 0u64;
    let mut issued_flops = 0u64;

    for block in 0..launch.blocks {
        let sm = block % config.sm_count;
        let mut block_compute = 0.0;
        let mut block_memory = 0.0;
        let mut block_syncs = 0u64;
        for w in 0..warps_per_block {
            let lane_lo = w * warp_size;
            let lane_hi = ((w + 1) * warp_size).min(launch.threads_per_block);
            let mut max_flops = 0u64;
            let mut max_requests = 0.0f64;
            for lane in lane_lo..lane_hi {
                let tw = launch.thread_work(block, lane);
                useful_flops += tw.flops;
                max_flops = max_flops.max(tw.flops);
                let mut stall = 0.0;
                for space in MemorySpace::ALL {
                    let bytes = tw.bytes_touched(space) as f64;
                    if bytes > 0.0 {
                        let requests = (bytes / BYTES_PER_REQUEST).ceil();
                        stall += requests * config.latency_cycles(space);
                    }
                }
                max_requests = max_requests.max(stall);
                block_syncs = block_syncs.max(tw.syncs);
            }
            issued_flops += max_flops * (lane_hi - lane_lo) as u64;
            // Warp compute time: lockstep over the slowest lane, sharing
            // the SM's issue width with other resident warps.
            block_compute += max_flops as f64 / issue_width;
            // Exposed latency: stalls divided by the hiding factor.
            block_memory += max_requests / hiding;
        }
        block_compute += block_syncs as f64 * SYNC_CYCLES;
        sm_compute[sm] += block_compute;
        sm_memory[sm] += block_memory;
    }

    // Critical SM (roofline max of the two terms per SM).
    let mut worst_cycles = 0.0f64;
    let mut worst_compute = 0.0f64;
    let mut worst_memory = 0.0f64;
    for sm in 0..config.sm_count {
        let c = sm_compute[sm].max(sm_memory[sm]);
        if c > worst_cycles {
            worst_cycles = c;
            worst_compute = sm_compute[sm];
            worst_memory = sm_memory[sm];
        }
    }

    let cycle_ns = 1.0 / config.clock_ghz;
    let dram_time_ns = launch.total_dram_bytes() as f64 / config.global_bandwidth_gbs;
    let exec_ns = (worst_cycles * cycle_ns).max(dram_time_ns);
    let time_ns = exec_ns + config.kernel_launch_ns;

    let waves = launch.blocks.div_ceil(config.sm_count).div_ceil(occ.resident_blocks.max(1));
    let peak_flops_per_ns = config.sm_count as f64 * config.cores_per_sm as f64 * config.clock_ghz;
    LaunchStats {
        time_ns,
        compute_cycles: worst_compute,
        memory_cycles: worst_memory,
        dram_time_ns,
        occupancy: occ,
        waves: waves.max(1),
        lane_efficiency: if issued_flops == 0 {
            1.0
        } else {
            useful_flops as f64 / issued_flops as f64
        },
        utilization: if time_ns > 0.0 {
            (useful_flops as f64 / time_ns / peak_flops_per_ns).min(1.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadWork;

    fn cfg() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let k = KernelLaunch::uniform("k", 1000, 1024, ThreadWork::new());
        let occ = Occupancy::compute(&cfg(), &k);
        assert_eq!(occ.resident_blocks, 2); // 2048 / 1024
        assert_eq!(occ.limiter, OccupancyLimiter::Threads);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let k = KernelLaunch::uniform("k", 1000, 256, ThreadWork::new()).with_registers(255);
        let occ = Occupancy::compute(&cfg(), &k);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
        assert_eq!(occ.resident_blocks, 65_536 / (255 * 256));
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let k = KernelLaunch::uniform("k", 1000, 64, ThreadWork::new()).with_shared_mem(40 * 1024);
        let occ = Occupancy::compute(&cfg(), &k);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
        assert_eq!(occ.resident_blocks, 2);
    }

    #[test]
    fn small_grid_cannot_fill_device() {
        let k = KernelLaunch::uniform("k", 4, 64, ThreadWork::new().with_flops(100));
        let occ = Occupancy::compute(&cfg(), &k);
        assert_eq!(occ.limiter, OccupancyLimiter::GridSize);
        assert_eq!(occ.resident_blocks, 1);
    }

    #[test]
    fn more_parallelism_is_faster_until_saturation() {
        // Fixed total work spread across more threads must not be slower.
        let total_flops: u64 = 1 << 22;
        let time_for = |threads: usize| {
            let per = total_flops / threads as u64;
            let k = KernelLaunch::uniform(
                "k",
                threads.div_ceil(128),
                128.min(threads),
                ThreadWork::new().with_flops(per),
            );
            schedule(&cfg(), &k).time_ns
        };
        let t1 = time_for(128);
        let t2 = time_for(1024);
        let t3 = time_for(8192);
        assert!(t2 < t1, "1024 threads ({t2}) must beat 128 ({t1})");
        assert!(t3 <= t2 * 1.01, "8192 threads ({t3}) must not lose to 1024 ({t2})");
    }

    #[test]
    fn divergence_costs_time_and_lane_efficiency() {
        // One hot lane per warp vs uniform work: same max per warp, so the
        // launch takes the same time, but lane efficiency collapses.
        let uniform = KernelLaunch::uniform("u", 24, 32, ThreadWork::new().with_flops(1000));
        let mut skewed_work = vec![ThreadWork::new(); 24 * 32];
        for b in 0..24 {
            skewed_work[b * 32] = ThreadWork::new().with_flops(1000);
        }
        let skewed = KernelLaunch::per_thread("s", 24, 32, skewed_work);
        let su = schedule(&cfg(), &uniform);
        let ss = schedule(&cfg(), &skewed);
        assert!(
            (su.time_ns - ss.time_ns).abs() / su.time_ns < 0.05,
            "SIMT lockstep: {} vs {}",
            su.time_ns,
            ss.time_ns
        );
        assert!(su.lane_efficiency > 0.99);
        assert!(ss.lane_efficiency < 0.05);
    }

    #[test]
    fn low_occupancy_exposes_memory_latency() {
        let mem_work = ThreadWork::new().with_global_read(256);
        // Few warps: latency exposed. Many warps: hidden.
        let sparse = KernelLaunch::uniform("sparse", 24, 32, mem_work);
        let dense = KernelLaunch::uniform("dense", 24 * 64, 32, mem_work);
        let s = schedule(&cfg(), &sparse);
        let d = schedule(&cfg(), &dense);
        // Per-thread cost must be far cheaper in the dense launch.
        let per_sparse = s.time_ns / sparse.total_threads() as f64;
        let per_dense = d.time_ns / dense.total_threads() as f64;
        assert!(per_dense < per_sparse / 4.0, "{per_dense} vs {per_sparse}");
    }

    #[test]
    fn constant_memory_is_cheaper_than_global() {
        let global = KernelLaunch::uniform(
            "g",
            48,
            128,
            ThreadWork::new().with_read(MemorySpace::Global, 512),
        );
        let constant = KernelLaunch::uniform(
            "c",
            48,
            128,
            ThreadWork::new().with_read(MemorySpace::Constant, 512),
        );
        let tg = schedule(&cfg(), &global).time_ns;
        let tc = schedule(&cfg(), &constant).time_ns;
        assert!(tc < tg, "constant ({tc}) must beat global ({tg})");
    }

    #[test]
    fn bandwidth_floors_large_transfers() {
        // Huge streaming workload: time must be at least bytes / bandwidth.
        let k = KernelLaunch::uniform("k", 4096, 256, ThreadWork::new().with_global_read(4096));
        let s = schedule(&cfg(), &k);
        assert!(s.dram_time_ns > 0.0);
        assert!(s.time_ns >= s.dram_time_ns);
    }

    #[test]
    fn waves_count_queued_blocks() {
        let k = KernelLaunch::uniform("k", 24 * 32 * 3, 64, ThreadWork::new().with_flops(10));
        let s = schedule(&cfg(), &k);
        assert!(s.waves >= 2, "expected multiple waves, got {}", s.waves);
    }

    #[test]
    fn sync_points_add_cost() {
        let plain = KernelLaunch::uniform("p", 24, 128, ThreadWork::new().with_flops(100));
        let synced =
            KernelLaunch::uniform("s", 24, 128, ThreadWork::new().with_flops(100).with_syncs(50));
        assert!(schedule(&cfg(), &synced).time_ns > schedule(&cfg(), &plain).time_ns);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let k = KernelLaunch::uniform("k", 24 * 16, 256, ThreadWork::new().with_flops(100_000));
        let s = schedule(&cfg(), &k);
        assert!(s.utilization > 0.3, "big uniform launch should utilize well: {}", s.utilization);
        assert!(s.utilization <= 1.0);
    }
}
