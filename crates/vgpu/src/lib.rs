//! A software-simulated SIMT device ("virtual GPU").
//!
//! The reproduction target evaluates its engines on CUDA hardware; this
//! environment has none, and Rust GPU toolchains are immature, so the GPU
//! is **simulated**: engines execute their numerics on the host (bit-exact,
//! via `paraspace-solvers`) and *replay the measured work* through this
//! crate's cost model, which schedules it the way the real device would:
//!
//! * a [`DeviceConfig`] describes the chip — streaming multiprocessors,
//!   cores per SM, warp size, clock, register file, shared-memory size, and
//!   the latency/bandwidth of each [`MemorySpace`];
//! * a [`KernelLaunch`] carries per-thread work descriptors
//!   ([`ThreadWork`]: flops, memory traffic by space, child-kernel
//!   launches);
//! * the scheduler ([`Device::launch`]) groups threads into warps (SIMT
//!   lockstep: a warp is as slow as its slowest thread — this models the
//!   divergence penalty when batched simulations need different step
//!   counts), packs blocks onto SMs subject to occupancy limits (threads,
//!   blocks, registers, shared memory), and exposes memory latency when too
//!   few warps are resident to hide it;
//! * [`DpModel`] reproduces the published dynamic-parallelism behaviour:
//!   child-grid launch overhead grows past ~512 pending launches and blows
//!   up near ~2000 — the effect that makes 512-simulation batches the
//!   engine's sweet spot.
//!
//! Every architectural knob is explicit so the ablation benches (memory
//! placement, DP overhead, granularity) can toggle one effect at a time.
//!
//! # Example
//!
//! ```
//! use paraspace_vgpu::{Device, DeviceConfig, KernelLaunch, ThreadWork};
//!
//! let device = Device::new(DeviceConfig::titan_x());
//! let work = ThreadWork::new().with_flops(10_000).with_global_read(8 * 128);
//! let launch = KernelLaunch::uniform("rhs", 64, 128, work);
//! let stats = device.launch(&launch);
//! assert!(stats.time_ns > 0.0);
//! ```

mod config;
mod device;
mod dynamic;
mod lanes;
mod memory;
mod schedule;
mod workload;

pub use config::DeviceConfig;
pub use device::{cost_launch, Device, Timeline, TimelineShard};
pub use dynamic::DpModel;
pub use lanes::{LaneAccounting, LaneGroupStats};
pub use memory::MemorySpace;
pub use schedule::{LaunchStats, Occupancy};
pub use workload::{ChildLaunch, KernelLaunch, ThreadWork};
