//! The device memory hierarchy.

/// A memory space of the simulated device.
///
/// The coarse-grained baseline engine's advantage on small models comes
/// from placing kinetic constants in [`Constant`](MemorySpace::Constant)
/// memory and states in [`Shared`](MemorySpace::Shared) memory; the
/// fine+coarse engine cannot (dynamic parallelism does not share variables
/// between parent and child grids) and pays
/// [`Global`](MemorySpace::Global)-memory latency — the trade-off the
/// memory-placement ablation (A4) measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySpace {
    /// Off-chip DRAM: high latency, bandwidth-limited.
    Global,
    /// Global memory with a hot L2 working set: read-mostly data shared by
    /// many concurrent grids (the flat ODE encoding every simulation
    /// streams each step) is served from the on-chip L2 cache after the
    /// first touch.
    CachedGlobal,
    /// On-chip per-block scratchpad: low latency, capacity-limited.
    Shared,
    /// Cached read-only broadcast memory: very low latency on hit.
    Constant,
    /// Register file: effectively free, capacity bounds occupancy.
    Register,
}

impl MemorySpace {
    /// All spaces, for exhaustive iteration in tests and reports.
    pub const ALL: [MemorySpace; 5] = [
        MemorySpace::Global,
        MemorySpace::CachedGlobal,
        MemorySpace::Shared,
        MemorySpace::Constant,
        MemorySpace::Register,
    ];

    /// Whether traffic to this space consumes device-wide DRAM bandwidth.
    pub fn uses_dram_bandwidth(self) -> bool {
        matches!(self, MemorySpace::Global)
    }
}

impl std::fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemorySpace::Global => "global",
            MemorySpace::CachedGlobal => "cached-global",
            MemorySpace::Shared => "shared",
            MemorySpace::Constant => "constant",
            MemorySpace::Register => "register",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_global_uses_dram() {
        for s in MemorySpace::ALL {
            assert_eq!(s.uses_dram_bandwidth(), s == MemorySpace::Global);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MemorySpace::Global.to_string(), "global");
        assert_eq!(MemorySpace::Constant.to_string(), "constant");
    }
}
