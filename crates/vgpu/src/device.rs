//! The device façade: launches, child grids, and the simulated timeline.

use crate::lanes::{LaneAccounting, LaneGroupStats};
use crate::schedule::{schedule, LaunchStats};
use crate::{DeviceConfig, DpModel, KernelLaunch};
use std::cell::RefCell;

/// A named interval on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Kernel (or phase) name.
    pub name: String,
    /// Start of the interval (ns since device reset).
    pub start_ns: f64,
    /// Duration (ns).
    pub duration_ns: f64,
}

/// The accumulated execution timeline of a device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// All recorded intervals in launch order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Total simulated time (ns).
    pub fn total_ns(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.start_ns + e.duration_ns)
    }

    /// Total time attributed to kernels whose name contains `tag`.
    pub fn time_tagged_ns(&self, tag: &str) -> f64 {
        self.entries.iter().filter(|e| e.name.contains(tag)).map(|e| e.duration_ns).sum()
    }
}

/// Computes the timing of `launch` on a device described by `config` and
/// `dp` without touching any timeline.
///
/// This is the pure core of [`Device::launch`]: parent-grid execution is
/// scheduled first; each [`ChildLaunch`] contributes (a) the aggregated
/// execution time of all parents' child grids running concurrently and
/// (b) the dynamic-parallelism launch overhead for the pending-launch
/// population (= concurrent parent threads), repeated once per round.
///
/// Both inputs are `Sync`, so worker threads can cost launches concurrently
/// and record them on private [`TimelineShard`]s.
///
/// [`ChildLaunch`]: crate::ChildLaunch
pub fn cost_launch(config: &DeviceConfig, dp: &DpModel, launch: &KernelLaunch) -> LaunchStats {
    let mut stats = schedule(config, launch);
    let parents = launch.total_threads();
    for child in &launch.children {
        if child.repeats == 0 {
            continue;
        }
        // All parents' child grids of one round run concurrently.
        let agg_blocks = (child.blocks * parents).max(1);
        let agg = KernelLaunch::uniform(
            format!("{}::child", launch.name),
            agg_blocks,
            child.threads_per_block,
            child.work,
        )
        .with_registers(launch.registers_per_thread);
        let per_round = schedule(config, &agg);
        // Child rounds replace the host launch overhead with the
        // device-side DP overhead.
        let exec_ns = (per_round.time_ns - config.kernel_launch_ns).max(0.0);
        let overhead_ns = dp.total_overhead_ns(parents, child.repeats, config.child_launch_ns);
        stats.time_ns += exec_ns * child.repeats as f64 + overhead_ns;
    }
    stats
}

/// A private, mergeable slice of simulated timeline.
///
/// Worker threads record launches and host phases on their own shard
/// (`TimelineShard` is `Send` and costs launches against the shared
/// `&DeviceConfig`/`&DpModel`, which are `Sync`); the coordinating thread
/// then merges shards back into the [`Device`] timeline **in
/// simulation-index order** via [`Device::absorb_shard`], so the resulting
/// timeline is bitwise identical to a sequential run at any worker count.
///
/// Entry start times inside a shard are shard-local (first entry starts at
/// 0); merging rebases them onto the absorbing timeline's clock.
///
/// # Example
///
/// ```
/// use paraspace_vgpu::{cost_launch, Device, DeviceConfig, DpModel, KernelLaunch};
/// use paraspace_vgpu::{ThreadWork, TimelineShard};
///
/// let dev = Device::new(DeviceConfig::titan_x());
/// let mut shard = TimelineShard::new();
/// shard.launch(dev.config(), dev.dp_model(), &KernelLaunch::uniform(
///     "k", 24, 128, ThreadWork::new().with_flops(1_000)));
/// dev.absorb_shard(shard);
/// assert_eq!(dev.timeline().entries().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineShard {
    entries: Vec<TimelineEntry>,
}

impl TimelineShard {
    /// An empty shard.
    pub fn new() -> Self {
        TimelineShard::default()
    }

    /// All recorded intervals, with shard-local start times.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total simulated time covered by this shard (ns).
    pub fn total_ns(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.start_ns + e.duration_ns)
    }

    /// Costs `launch` and records it on this shard; the exact worker-side
    /// analogue of [`Device::launch`].
    pub fn launch(
        &mut self,
        config: &DeviceConfig,
        dp: &DpModel,
        launch: &KernelLaunch,
    ) -> LaunchStats {
        let stats = cost_launch(config, dp, launch);
        self.push(launch.name.clone(), stats.time_ns);
        stats
    }

    /// Records a host-side (CPU) phase on this shard.
    pub fn record_host_phase(&mut self, name: impl Into<String>, duration_ns: f64) {
        self.push(name.into(), duration_ns);
    }

    /// Appends `other`'s entries after this shard's, rebasing their start
    /// times onto this shard's clock.
    pub fn merge(&mut self, other: TimelineShard) {
        let offset = self.total_ns();
        self.entries.extend(other.entries.into_iter().map(|mut e| {
            e.start_ns += offset;
            e
        }));
    }

    fn push(&mut self, name: String, duration_ns: f64) {
        let start = self.total_ns();
        self.entries.push(TimelineEntry { name, start_ns: start, duration_ns });
    }
}

/// The simulated device: a [`DeviceConfig`] plus a running [`Timeline`].
///
/// Launching is `&self` (interior mutability) so engines can share one
/// device across batch phases without threading `&mut` everywhere; the
/// device itself mirrors a single CUDA stream and is not `Sync` — parallel
/// engines record on per-worker [`TimelineShard`]s and absorb them in
/// simulation-index order.
///
/// # Example
///
/// ```
/// use paraspace_vgpu::{Device, DeviceConfig, KernelLaunch, ThreadWork};
///
/// let dev = Device::new(DeviceConfig::titan_x());
/// dev.launch(&KernelLaunch::uniform("phase1", 24, 128, ThreadWork::new().with_flops(1_000)));
/// dev.launch(&KernelLaunch::uniform("phase2", 24, 128, ThreadWork::new().with_flops(2_000)));
/// assert_eq!(dev.timeline().entries().len(), 2);
/// assert!(dev.elapsed_ns() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    dp: DpModel,
    timeline: RefCell<Timeline>,
    lanes: RefCell<LaneAccounting>,
}

impl Device {
    /// Creates a device with the default dynamic-parallelism model.
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Device {
            config,
            dp: DpModel::default(),
            timeline: RefCell::new(Timeline::default()),
            lanes: RefCell::new(LaneAccounting::default()),
        }
    }

    /// Creates a device with a custom dynamic-parallelism model (used by
    /// the DP ablation).
    pub fn with_dp_model(config: DeviceConfig, dp: DpModel) -> Self {
        config.validate();
        Device {
            config,
            dp,
            timeline: RefCell::new(Timeline::default()),
            lanes: RefCell::new(LaneAccounting::default()),
        }
    }

    /// The architectural configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The dynamic-parallelism model.
    pub fn dp_model(&self) -> &DpModel {
        &self.dp
    }

    /// Total simulated time elapsed on this device (ns).
    pub fn elapsed_ns(&self) -> f64 {
        self.timeline.borrow().total_ns()
    }

    /// A snapshot of the timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline.borrow().clone()
    }

    /// Clears the timeline and lane accounting (between experiments).
    pub fn reset(&self) {
        self.timeline.borrow_mut().entries.clear();
        *self.lanes.borrow_mut() = LaneAccounting::default();
    }

    /// Folds one lane-group's occupancy counters into the device's
    /// run-wide [`LaneAccounting`]. Engines running the lane-batched path
    /// call this once per group, in group order.
    pub fn record_lane_group(&self, stats: &LaneGroupStats) {
        self.lanes.borrow_mut().record(stats);
    }

    /// A snapshot of the run-wide lane occupancy/divergence accounting.
    pub fn lane_accounting(&self) -> LaneAccounting {
        *self.lanes.borrow()
    }

    /// Launches a kernel, advancing the timeline, and returns its timing.
    ///
    /// Timing comes from the pure [`cost_launch`]; see it for the child-grid
    /// accounting rules.
    pub fn launch(&self, launch: &KernelLaunch) -> LaunchStats {
        let stats = cost_launch(&self.config, &self.dp, launch);
        let mut tl = self.timeline.borrow_mut();
        let start = tl.total_ns();
        tl.entries.push(TimelineEntry {
            name: launch.name.clone(),
            start_ns: start,
            duration_ns: stats.time_ns,
        });
        stats
    }

    /// Appends a worker shard's entries to the device timeline, rebasing
    /// their start times onto the device clock.
    ///
    /// Callers must absorb shards in simulation-index order to preserve the
    /// determinism guarantee.
    pub fn absorb_shard(&self, shard: TimelineShard) {
        let mut tl = self.timeline.borrow_mut();
        let offset = tl.total_ns();
        tl.entries.extend(shard.entries.into_iter().map(|mut e| {
            e.start_ns += offset;
            e
        }));
    }

    /// Records a host-side (CPU) phase on the timeline, e.g. the I/O phases
    /// P1/P5 of the batch pipeline, without device work.
    pub fn record_host_phase(&self, name: impl Into<String>, duration_ns: f64) {
        let mut tl = self.timeline.borrow_mut();
        let start = tl.total_ns();
        tl.entries.push(TimelineEntry { name: name.into(), start_ns: start, duration_ns });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChildLaunch, ThreadWork};

    fn dev() -> Device {
        Device::new(DeviceConfig::titan_x())
    }

    #[test]
    fn timeline_accumulates_in_order() {
        let d = dev();
        d.launch(&KernelLaunch::uniform("a", 24, 128, ThreadWork::new().with_flops(1000)));
        d.launch(&KernelLaunch::uniform("b", 24, 128, ThreadWork::new().with_flops(1000)));
        let tl = d.timeline();
        assert_eq!(tl.entries().len(), 2);
        assert_eq!(tl.entries()[0].name, "a");
        assert!(tl.entries()[1].start_ns >= tl.entries()[0].duration_ns);
        assert!((tl.total_ns() - d.elapsed_ns()).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_timeline() {
        let d = dev();
        d.launch(&KernelLaunch::uniform("a", 1, 32, ThreadWork::new()));
        d.reset();
        assert_eq!(d.elapsed_ns(), 0.0);
    }

    #[test]
    fn child_launches_add_time() {
        let d = dev();
        let plain = KernelLaunch::uniform("plain", 16, 32, ThreadWork::new().with_flops(100));
        let with_child = KernelLaunch::uniform("dp", 16, 32, ThreadWork::new().with_flops(100))
            .with_child(ChildLaunch {
                blocks: 1,
                threads_per_block: 64,
                work: ThreadWork::new().with_flops(50),
                repeats: 10,
            });
        let t_plain = d.launch(&plain).time_ns;
        let t_child = d.launch(&with_child).time_ns;
        assert!(t_child > t_plain);
    }

    #[test]
    fn dp_saturation_penalizes_huge_parent_populations() {
        // Same total child work split across 512 vs 4096 parents: the
        // oversubscribed configuration pays the DP penalty.
        let d = dev();
        let child = |repeats| ChildLaunch {
            blocks: 1,
            threads_per_block: 32,
            work: ThreadWork::new().with_flops(200),
            repeats,
        };
        let modest = KernelLaunch::uniform("m", 16, 32, ThreadWork::new()).with_child(child(64));
        let huge = KernelLaunch::uniform("h", 128, 32, ThreadWork::new()).with_child(child(64));
        let per_sim_modest = d.launch(&modest).time_ns / 512.0;
        let per_sim_huge = d.launch(&huge).time_ns / 4096.0;
        // Per-simulation cost must *not* keep improving past the DP knee.
        assert!(
            per_sim_huge > per_sim_modest * 0.9,
            "DP saturation should erase the scaling win: {per_sim_huge} vs {per_sim_modest}"
        );
    }

    #[test]
    fn tagged_time_accounting() {
        let d = dev();
        d.launch(&KernelLaunch::uniform(
            "integrate::dopri5",
            24,
            128,
            ThreadWork::new().with_flops(5000),
        ));
        d.record_host_phase("io::write", 1e6);
        let tl = d.timeline();
        assert!(tl.time_tagged_ns("integrate") > 0.0);
        assert_eq!(tl.time_tagged_ns("io"), 1e6);
        assert_eq!(tl.time_tagged_ns("nonexistent"), 0.0);
    }

    #[test]
    fn lane_accounting_accumulates_and_resets() {
        let d = dev();
        assert_eq!(d.lane_accounting().groups, 0);
        d.record_lane_group(&LaneGroupStats { width: 8, lockstep_iters: 10, lane_steps: 60 });
        d.record_lane_group(&LaneGroupStats { width: 8, lockstep_iters: 5, lane_steps: 40 });
        let acc = d.lane_accounting();
        assert_eq!(acc.groups, 2);
        assert_eq!(acc.slot_steps, 120);
        assert_eq!(acc.lane_steps, 100);
        assert!((acc.occupancy() - 100.0 / 120.0).abs() < 1e-12);
        d.reset();
        assert_eq!(d.lane_accounting(), LaneAccounting::default());
    }

    #[test]
    fn host_phase_advances_clock() {
        let d = dev();
        d.record_host_phase("p1", 123.0);
        assert_eq!(d.elapsed_ns(), 123.0);
    }

    #[test]
    fn cost_launch_matches_device_launch() {
        let d = dev();
        let k = KernelLaunch::uniform("k", 24, 128, ThreadWork::new().with_flops(5000)).with_child(
            ChildLaunch {
                blocks: 2,
                threads_per_block: 64,
                work: ThreadWork::new().with_flops(50),
                repeats: 3,
            },
        );
        let pure = cost_launch(d.config(), d.dp_model(), &k);
        let recorded = d.launch(&k);
        assert_eq!(pure, recorded);
    }

    #[test]
    fn shards_absorbed_in_order_reproduce_sequential_timeline() {
        let launches: Vec<KernelLaunch> = (0..6)
            .map(|i| {
                KernelLaunch::uniform(
                    format!("k{i}"),
                    4 + i,
                    64,
                    ThreadWork::new().with_flops(1000 * (i as u64 + 1)),
                )
            })
            .collect();

        let sequential = dev();
        for k in &launches {
            sequential.launch(k);
        }
        sequential.record_host_phase("tail", 42.0);

        // Same launches recorded on three shards, absorbed in index order.
        let sharded = dev();
        let mut shards = vec![TimelineShard::new(), TimelineShard::new(), TimelineShard::new()];
        for (i, k) in launches.iter().enumerate() {
            shards[i / 2].launch(sharded.config(), sharded.dp_model(), k);
        }
        // Shard order: entries 0-1, 2-3, 4-5 — index order across shards.
        for s in shards {
            sharded.absorb_shard(s);
        }
        sharded.record_host_phase("tail", 42.0);

        assert_eq!(sequential.timeline(), sharded.timeline());
    }

    #[test]
    fn shard_merge_rebases_start_times() {
        let config = DeviceConfig::titan_x();
        let dp = DpModel::default();
        let k = KernelLaunch::uniform("k", 8, 64, ThreadWork::new().with_flops(500));

        let mut merged = TimelineShard::new();
        merged.launch(&config, &dp, &k);
        let mut tail = TimelineShard::new();
        tail.launch(&config, &dp, &k);
        tail.record_host_phase("h", 10.0);
        merged.merge(tail);

        let mut flat = TimelineShard::new();
        flat.launch(&config, &dp, &k);
        flat.launch(&config, &dp, &k);
        flat.record_host_phase("h", 10.0);

        assert_eq!(merged, flat);
        assert!(merged.entries()[1].start_ns > 0.0);
    }
}
