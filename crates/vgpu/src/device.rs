//! The device façade: launches, child grids, and the simulated timeline.

use crate::schedule::{schedule, LaunchStats};
use crate::{DeviceConfig, DpModel, KernelLaunch};
use std::cell::RefCell;

/// A named interval on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Kernel (or phase) name.
    pub name: String,
    /// Start of the interval (ns since device reset).
    pub start_ns: f64,
    /// Duration (ns).
    pub duration_ns: f64,
}

/// The accumulated execution timeline of a device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// All recorded intervals in launch order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Total simulated time (ns).
    pub fn total_ns(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.start_ns + e.duration_ns)
    }

    /// Total time attributed to kernels whose name contains `tag`.
    pub fn time_tagged_ns(&self, tag: &str) -> f64 {
        self.entries.iter().filter(|e| e.name.contains(tag)).map(|e| e.duration_ns).sum()
    }
}

/// The simulated device: a [`DeviceConfig`] plus a running [`Timeline`].
///
/// Launching is `&self` (interior mutability) so engines can share one
/// device across batch phases without threading `&mut` everywhere; the
/// device is single-threaded by design, mirroring a single CUDA stream.
///
/// # Example
///
/// ```
/// use paraspace_vgpu::{Device, DeviceConfig, KernelLaunch, ThreadWork};
///
/// let dev = Device::new(DeviceConfig::titan_x());
/// dev.launch(&KernelLaunch::uniform("phase1", 24, 128, ThreadWork::new().with_flops(1_000)));
/// dev.launch(&KernelLaunch::uniform("phase2", 24, 128, ThreadWork::new().with_flops(2_000)));
/// assert_eq!(dev.timeline().entries().len(), 2);
/// assert!(dev.elapsed_ns() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    dp: DpModel,
    timeline: RefCell<Timeline>,
}

impl Device {
    /// Creates a device with the default dynamic-parallelism model.
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Device { config, dp: DpModel::default(), timeline: RefCell::new(Timeline::default()) }
    }

    /// Creates a device with a custom dynamic-parallelism model (used by
    /// the DP ablation).
    pub fn with_dp_model(config: DeviceConfig, dp: DpModel) -> Self {
        config.validate();
        Device { config, dp, timeline: RefCell::new(Timeline::default()) }
    }

    /// The architectural configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The dynamic-parallelism model.
    pub fn dp_model(&self) -> &DpModel {
        &self.dp
    }

    /// Total simulated time elapsed on this device (ns).
    pub fn elapsed_ns(&self) -> f64 {
        self.timeline.borrow().total_ns()
    }

    /// A snapshot of the timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline.borrow().clone()
    }

    /// Clears the timeline (between experiments).
    pub fn reset(&self) {
        self.timeline.borrow_mut().entries.clear();
    }

    /// Launches a kernel, advancing the timeline, and returns its timing.
    ///
    /// Parent-grid execution is scheduled first; each [`ChildLaunch`]
    /// contributes (a) the aggregated execution time of all parents' child
    /// grids running concurrently and (b) the dynamic-parallelism launch
    /// overhead for the pending-launch population (= concurrent parent
    /// threads), repeated once per round.
    ///
    /// [`ChildLaunch`]: crate::ChildLaunch
    pub fn launch(&self, launch: &KernelLaunch) -> LaunchStats {
        let mut stats = schedule(&self.config, launch);
        let parents = launch.total_threads();
        for child in &launch.children {
            if child.repeats == 0 {
                continue;
            }
            // All parents' child grids of one round run concurrently.
            let agg_blocks = (child.blocks * parents).max(1);
            let agg = KernelLaunch::uniform(
                format!("{}::child", launch.name),
                agg_blocks,
                child.threads_per_block,
                child.work,
            )
            .with_registers(launch.registers_per_thread);
            let per_round = schedule(&self.config, &agg);
            // Child rounds replace the host launch overhead with the
            // device-side DP overhead.
            let exec_ns = (per_round.time_ns - self.config.kernel_launch_ns).max(0.0);
            let overhead_ns =
                self.dp.total_overhead_ns(parents, child.repeats, self.config.child_launch_ns);
            stats.time_ns += exec_ns * child.repeats as f64 + overhead_ns;
        }
        let mut tl = self.timeline.borrow_mut();
        let start = tl.total_ns();
        tl.entries.push(TimelineEntry {
            name: launch.name.clone(),
            start_ns: start,
            duration_ns: stats.time_ns,
        });
        stats
    }

    /// Records a host-side (CPU) phase on the timeline, e.g. the I/O phases
    /// P1/P5 of the batch pipeline, without device work.
    pub fn record_host_phase(&self, name: impl Into<String>, duration_ns: f64) {
        let mut tl = self.timeline.borrow_mut();
        let start = tl.total_ns();
        tl.entries.push(TimelineEntry { name: name.into(), start_ns: start, duration_ns });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChildLaunch, ThreadWork};

    fn dev() -> Device {
        Device::new(DeviceConfig::titan_x())
    }

    #[test]
    fn timeline_accumulates_in_order() {
        let d = dev();
        d.launch(&KernelLaunch::uniform("a", 24, 128, ThreadWork::new().with_flops(1000)));
        d.launch(&KernelLaunch::uniform("b", 24, 128, ThreadWork::new().with_flops(1000)));
        let tl = d.timeline();
        assert_eq!(tl.entries().len(), 2);
        assert_eq!(tl.entries()[0].name, "a");
        assert!(tl.entries()[1].start_ns >= tl.entries()[0].duration_ns);
        assert!((tl.total_ns() - d.elapsed_ns()).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_timeline() {
        let d = dev();
        d.launch(&KernelLaunch::uniform("a", 1, 32, ThreadWork::new()));
        d.reset();
        assert_eq!(d.elapsed_ns(), 0.0);
    }

    #[test]
    fn child_launches_add_time() {
        let d = dev();
        let plain = KernelLaunch::uniform("plain", 16, 32, ThreadWork::new().with_flops(100));
        let with_child = KernelLaunch::uniform("dp", 16, 32, ThreadWork::new().with_flops(100))
            .with_child(ChildLaunch {
                blocks: 1,
                threads_per_block: 64,
                work: ThreadWork::new().with_flops(50),
                repeats: 10,
            });
        let t_plain = d.launch(&plain).time_ns;
        let t_child = d.launch(&with_child).time_ns;
        assert!(t_child > t_plain);
    }

    #[test]
    fn dp_saturation_penalizes_huge_parent_populations() {
        // Same total child work split across 512 vs 4096 parents: the
        // oversubscribed configuration pays the DP penalty.
        let d = dev();
        let child = |repeats| ChildLaunch {
            blocks: 1,
            threads_per_block: 32,
            work: ThreadWork::new().with_flops(200),
            repeats,
        };
        let modest = KernelLaunch::uniform("m", 16, 32, ThreadWork::new()).with_child(child(64));
        let huge = KernelLaunch::uniform("h", 128, 32, ThreadWork::new()).with_child(child(64));
        let per_sim_modest = d.launch(&modest).time_ns / 512.0;
        let per_sim_huge = d.launch(&huge).time_ns / 4096.0;
        // Per-simulation cost must *not* keep improving past the DP knee.
        assert!(
            per_sim_huge > per_sim_modest * 0.9,
            "DP saturation should erase the scaling win: {per_sim_huge} vs {per_sim_modest}"
        );
    }

    #[test]
    fn tagged_time_accounting() {
        let d = dev();
        d.launch(&KernelLaunch::uniform("integrate::dopri5", 24, 128, ThreadWork::new().with_flops(5000)));
        d.record_host_phase("io::write", 1e6);
        let tl = d.timeline();
        assert!(tl.time_tagged_ns("integrate") > 0.0);
        assert_eq!(tl.time_tagged_ns("io"), 1e6);
        assert_eq!(tl.time_tagged_ns("nonexistent"), 0.0);
    }

    #[test]
    fn host_phase_advances_clock() {
        let d = dev();
        d.record_host_phase("p1", 123.0);
        assert_eq!(d.elapsed_ns(), 123.0);
    }
}
