//! Lane-group occupancy and divergence accounting.
//!
//! The lane-batched host path mirrors a warp on the modeled device: `L`
//! simulations advance in lockstep through the same instruction sequence,
//! so a lockstep iteration costs `L` lane-slots of work whether or not all
//! `L` lanes are live. Lanes park when their member finishes, fails, or the
//! pending queue runs dry — the classic SIMT divergence waste. This module
//! gives the device a first-class record of that waste so comparison maps
//! can report how much of the charged lane-slot work was productive.

/// Occupancy counters for one lane-group integration.
///
/// Engines build this from the lockstep solver's report and register it
/// with [`Device::record_lane_group`](crate::Device::record_lane_group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneGroupStats {
    /// Lane width `L` the group ran at.
    pub width: usize,
    /// Lockstep iterations the group executed (each one sweeps all `L`
    /// lane slots through a full solver step).
    pub lockstep_iters: u64,
    /// Productive lane-steps: lane slots that held a live member, summed
    /// over iterations. At most `width · lockstep_iters`.
    pub lane_steps: u64,
}

impl LaneGroupStats {
    /// Fraction of swept lane slots that did productive work, in `(0, 1]`;
    /// `1.0` for an empty group.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.width as u64 * self.lockstep_iters;
        if capacity == 0 {
            1.0
        } else {
            self.lane_steps as f64 / capacity as f64
        }
    }

    /// Multiplier (`≥ 1.0`) by which divergence inflates the charged work
    /// relative to perfectly packed lanes; `1.0` for an empty group.
    pub fn divergence_factor(&self) -> f64 {
        if self.lane_steps == 0 {
            1.0
        } else {
            (self.width as u64 * self.lockstep_iters) as f64 / self.lane_steps as f64
        }
    }
}

/// Aggregate lane accounting across every lane-group of a run.
///
/// Snapshot via [`Device::lane_accounting`](crate::Device::lane_accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneAccounting {
    /// Number of lane-groups recorded.
    pub groups: u64,
    /// Total lane slots swept (`Σ width · lockstep_iters`).
    pub slot_steps: u64,
    /// Total productive lane-steps (`Σ lane_steps`).
    pub lane_steps: u64,
    /// Widest lane width seen.
    pub max_width: usize,
}

impl LaneAccounting {
    /// Folds one group's counters into the aggregate.
    pub fn record(&mut self, stats: &LaneGroupStats) {
        self.groups += 1;
        self.slot_steps += stats.width as u64 * stats.lockstep_iters;
        self.lane_steps += stats.lane_steps;
        self.max_width = self.max_width.max(stats.width);
    }

    /// Run-wide lane occupancy, in `(0, 1]`; `1.0` when nothing was
    /// recorded.
    pub fn occupancy(&self) -> f64 {
        if self.slot_steps == 0 {
            1.0
        } else {
            self.lane_steps as f64 / self.slot_steps as f64
        }
    }

    /// Run-wide divergence multiplier (`≥ 1.0`).
    pub fn divergence_factor(&self) -> f64 {
        if self.lane_steps == 0 {
            1.0
        } else {
            self.slot_steps as f64 / self.lane_steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lanes_have_unit_occupancy() {
        let s = LaneGroupStats { width: 4, lockstep_iters: 100, lane_steps: 400 };
        assert_eq!(s.occupancy(), 1.0);
        assert_eq!(s.divergence_factor(), 1.0);
    }

    #[test]
    fn divergence_shows_up_as_sub_unit_occupancy() {
        let s = LaneGroupStats { width: 4, lockstep_iters: 100, lane_steps: 300 };
        assert!((s.occupancy() - 0.75).abs() < 1e-12);
        assert!((s.divergence_factor() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_is_neutral() {
        let s = LaneGroupStats::default();
        assert_eq!(s.occupancy(), 1.0);
        assert_eq!(s.divergence_factor(), 1.0);
    }

    #[test]
    fn accounting_aggregates_groups() {
        let mut acc = LaneAccounting::default();
        acc.record(&LaneGroupStats { width: 4, lockstep_iters: 10, lane_steps: 40 });
        acc.record(&LaneGroupStats { width: 4, lockstep_iters: 10, lane_steps: 20 });
        assert_eq!(acc.groups, 2);
        assert_eq!(acc.slot_steps, 80);
        assert_eq!(acc.lane_steps, 60);
        assert_eq!(acc.max_width, 4);
        assert!((acc.occupancy() - 0.75).abs() < 1e-12);
        assert!((acc.divergence_factor() - 80.0 / 60.0).abs() < 1e-12);
    }
}
