//! Dynamic-parallelism (device-side child launch) overhead model.
//!
//! The fine+coarse engine launches child grids from every parent thread at
//! every solver step. Published characterizations of dynamic parallelism
//! (Wang & Yalamanchili, IISWC 2014 — the study the original paper cites)
//! show that child-kernel launch time is flat up to a few hundred pending
//! launches, grows noticeably past ~512, and degrades dramatically around
//! ~2000; this model reproduces that curve, which is what makes
//! 512-simulation batches optimal and >2048 counterproductive in the
//! reproduction experiments.

/// The dynamic-parallelism launch-overhead curve.
///
/// # Example
///
/// ```
/// use paraspace_vgpu::DpModel;
///
/// let dp = DpModel::default();
/// let cheap = dp.launch_overhead_factor(256);
/// let knee = dp.launch_overhead_factor(1024);
/// let blown = dp.launch_overhead_factor(4096);
/// assert!(cheap <= knee && knee < blown);
/// assert_eq!(cheap, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DpModel {
    /// Pending-launch count up to which overhead stays at the base value.
    pub flat_until: usize,
    /// Pending-launch count where severe degradation begins.
    pub severe_at: usize,
    /// Overhead multiplier reached at `severe_at` (linear ramp in between).
    pub knee_factor: f64,
    /// Quadratic growth rate beyond `severe_at`.
    pub severe_exponent: f64,
    /// Queue-dispatch cost per pending launch (ns): concurrent child
    /// launches of one round serialize through the device's launch queue,
    /// so a round with `p` parents costs `p × dispatch` on top of the base
    /// latency — the term that makes >2048-parent rounds degrade.
    pub dispatch_ns: f64,
}

impl Default for DpModel {
    fn default() -> Self {
        DpModel {
            flat_until: 512,
            severe_at: 2048,
            knee_factor: 4.0,
            severe_exponent: 2.0,
            dispatch_ns: 30.0,
        }
    }
}

impl DpModel {
    /// The overhead multiplier applied to the base child-launch cost when
    /// `pending` launches are in flight.
    pub fn launch_overhead_factor(&self, pending: usize) -> f64 {
        if pending <= self.flat_until {
            1.0
        } else if pending <= self.severe_at {
            let t = (pending - self.flat_until) as f64 / (self.severe_at - self.flat_until) as f64;
            1.0 + t * (self.knee_factor - 1.0)
        } else {
            self.knee_factor * (pending as f64 / self.severe_at as f64).powf(self.severe_exponent)
        }
    }

    /// Total wall-clock overhead (ns) for `rounds` sequential child-launch
    /// rounds issued by `parents` concurrent parent threads, with a base
    /// per-launch cost of `base_ns`.
    ///
    /// Launch rounds are sequential within a parent (one per solver step);
    /// within a round, the `parents` concurrent launches serialize through
    /// the pending queue (`parents × dispatch_ns`) and the whole round's
    /// latency is inflated by the congestion factor.
    pub fn total_overhead_ns(&self, parents: usize, rounds: u64, base_ns: f64) -> f64 {
        if parents == 0 || rounds == 0 {
            return 0.0;
        }
        let factor = self.launch_overhead_factor(parents);
        rounds as f64 * factor * (base_ns + parents as f64 * self.dispatch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_region_has_unit_factor() {
        let dp = DpModel::default();
        for p in [0, 1, 100, 512] {
            assert_eq!(dp.launch_overhead_factor(p), 1.0, "pending={p}");
        }
    }

    #[test]
    fn knee_region_ramps_linearly() {
        let dp = DpModel::default();
        let mid = dp.launch_overhead_factor(1280); // halfway between 512 and 2048
        assert!((mid - 2.5).abs() < 1e-12, "expected midpoint 2.5, got {mid}");
        assert!((dp.launch_overhead_factor(2048) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn severe_region_grows_quadratically() {
        let dp = DpModel::default();
        let at_4096 = dp.launch_overhead_factor(4096);
        assert!((at_4096 - 16.0).abs() < 1e-9, "4 × (2×)² = 16, got {at_4096}");
        assert!(dp.launch_overhead_factor(8192) > 3.9 * at_4096);
    }

    #[test]
    fn factor_is_monotone() {
        let dp = DpModel::default();
        let mut prev = 0.0;
        for p in (0..10_000).step_by(64) {
            let f = dp.launch_overhead_factor(p);
            assert!(f >= prev, "non-monotone at pending={p}");
            prev = f;
        }
    }

    #[test]
    fn total_overhead_scales_with_rounds_and_dispatch() {
        let dp = DpModel::default();
        let a = dp.total_overhead_ns(128, 100, 1000.0);
        let b = dp.total_overhead_ns(512, 100, 1000.0);
        // Below the knee the congestion factor is flat; the dispatch term
        // grows linearly with parents.
        assert!((a - 100.0 * (1000.0 + 128.0 * 30.0)).abs() < 1e-9);
        assert!((b - 100.0 * (1000.0 + 512.0 * 30.0)).abs() < 1e-9);
        let c = dp.total_overhead_ns(512, 200, 1000.0);
        assert_eq!(c, 2.0 * b);
    }

    #[test]
    fn per_parent_overhead_degrades_past_saturation() {
        // The published behaviour: amortized per-parent launch cost is flat
        // up to ~2048 parents, then degrades.
        let dp = DpModel::default();
        let per_parent = |p: usize| dp.total_overhead_ns(p, 1, 1600.0) / p as f64;
        assert!(per_parent(512) < per_parent(256) * 1.5);
        assert!(
            per_parent(4096) > 3.0 * per_parent(1024),
            "{} vs {}",
            per_parent(4096),
            per_parent(1024)
        );
    }

    #[test]
    fn zero_work_costs_nothing() {
        let dp = DpModel::default();
        assert_eq!(dp.total_overhead_ns(0, 10, 1000.0), 0.0);
        assert_eq!(dp.total_overhead_ns(10, 0, 1000.0), 0.0);
    }
}
