//! Sampled solutions and integration statistics.

/// Work counters accumulated during one integration.
///
/// These feed both the comparison tables (RHS evaluations dominate the cost
/// of large networks) and the virtual-GPU cost model, which converts the
/// counters into simulated device time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Attempted steps (accepted + rejected).
    pub steps: usize,
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected steps (error test or nonlinear failure).
    pub rejected: usize,
    /// Right-hand-side evaluations.
    pub rhs_evals: usize,
    /// Jacobian evaluations.
    pub jacobian_evals: usize,
    /// LU decompositions (real + complex count as one each).
    pub lu_decompositions: usize,
    /// Triangular back-substitutions.
    pub linear_solves: usize,
    /// Newton / functional-iteration sweeps.
    pub nonlinear_iters: usize,
    /// `true` when an explicit solver's stiffness detector fired.
    pub stiffness_detected: bool,
}

impl StepStats {
    /// Merges another run's counters into this one (batch aggregation).
    pub fn absorb(&mut self, other: &StepStats) {
        self.steps += other.steps;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.rhs_evals += other.rhs_evals;
        self.jacobian_evals += other.jacobian_evals;
        self.lu_decompositions += other.lu_decompositions;
        self.linear_solves += other.linear_solves;
        self.nonlinear_iters += other.nonlinear_iters;
        self.stiffness_detected |= other.stiffness_detected;
    }
}

/// A solution sampled at requested time points.
///
/// Row `i` of [`states`](Solution::states) is the full state at
/// [`times`](Solution::times)`[i]`.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSolver, Rk4, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0]);
/// let sol = Rk4::with_step(1e-3).solve(&sys, 0.0, &[1.0], &[0.5, 1.0], &SolverOptions::default())?;
/// assert_eq!(sol.len(), 2);
/// assert!((sol.state_at(1)[0] - 1.0f64.exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Solution {
    /// The sample times, as requested.
    pub times: Vec<f64>,
    /// One state vector per sample time.
    pub states: Vec<Vec<f64>>,
    /// Work counters for the whole integration.
    pub stats: StepStats,
}

impl Solution {
    /// Creates an empty solution shell with capacity for `n` samples.
    pub(crate) fn with_capacity(n: usize) -> Self {
        Solution {
            times: Vec::with_capacity(n),
            states: Vec::with_capacity(n),
            stats: StepStats::default(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the solution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The state at sample index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state_at(&self, i: usize) -> &[f64] {
        &self.states[i]
    }

    /// The trajectory of a single component across all samples.
    ///
    /// # Panics
    ///
    /// Panics if `component` exceeds the system dimension.
    pub fn component(&self, component: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[component]).collect()
    }

    /// The final sampled state, if any samples were requested.
    pub fn last_state(&self) -> Option<&[f64]> {
        self.states.last().map(|s| s.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_counters() {
        let mut a = StepStats { steps: 3, rhs_evals: 10, ..StepStats::default() };
        let b =
            StepStats { steps: 2, rhs_evals: 5, stiffness_detected: true, ..StepStats::default() };
        a.absorb(&b);
        assert_eq!(a.steps, 5);
        assert_eq!(a.rhs_evals, 15);
        assert!(a.stiffness_detected);
    }

    #[test]
    fn component_extraction() {
        let sol = Solution {
            times: vec![0.0, 1.0],
            states: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            stats: StepStats::default(),
        };
        assert_eq!(sol.component(1), vec![2.0, 4.0]);
        assert_eq!(sol.last_state(), Some(&[3.0, 4.0][..]));
        assert_eq!(sol.len(), 2);
        assert!(!sol.is_empty());
    }
}
