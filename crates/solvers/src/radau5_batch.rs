//! Lockstep Radau IIA (order 5) over a lane-group with batched
//! simplified-Newton and per-lane LU reuse.
//!
//! [`Radau5Batch`] advances all `L` lanes of a [`BatchOdeSystem`] through
//! the same 3-stage Radau IIA step machinery simultaneously. One *lockstep
//! tick* executes one simplified-Newton iteration for every lane currently
//! inside a Newton solve — three lane-wide
//! [`rhs_batch`](BatchOdeSystem::rhs_batch) stage sweeps plus one masked
//! real and one masked complex batched-LU substitution
//! ([`BatchLuFactor`] / [`BatchCluFactor`], the getrs-style substrate the
//! scalar [`Radau5`](crate::Radau5) docs promise) — while every piece of
//! *control* state stays per-lane: step size, Newton convergence rate `θ`,
//! Jacobian / factorization reuse decisions, the Gustafsson controller
//! memory, error acceptance, and sample delivery each evolve independently
//! per lane. Lanes at different Newton iteration counts share the same
//! sweeps; a lane whose iteration converged runs its error estimate and
//! accept/reject logic in the same tick, then re-enters step start, where
//! masked lane-wide sweeps rebuild only the Jacobians
//! ([`jacobian_batch`](BatchOdeSystem::jacobian_batch)) and LU
//! factorizations of the lanes whose `θ` or step ratio demands it — every
//! other lane keeps its factorization, exactly like the scalar reuse
//! policy.
//!
//! # Numerical contract
//!
//! Per-member results are **bitwise identical** to the scalar
//! [`Radau5`](crate::Radau5) solve of the same member, at any lane width —
//! the same contract [`Dopri5Batch`](crate::Dopri5Batch) upholds, and by
//! the same two invariants: every per-lane arithmetic expression here
//! mirrors the scalar implementation operation-for-operation (including the
//! elimination branch guards inside the batched LU kernels), and no
//! expression mixes values from two lanes. One caveat follows from the
//! batched Jacobian: this kernel requires
//! [`supports_jacobian_batch`](BatchOdeSystem::supports_jacobian_batch)
//! and charges it as *analytic* (no finite-difference RHS surcharge), so
//! the scalar twin of a member must also have an analytic Jacobian for
//! work counters to agree — true for every mass-action network the engines
//! route here.
//!
//! Masked (parked or never-bound) lanes still flow through the stage
//! arithmetic with whatever state they last held; their results are
//! discarded, and the masked LU kernels skip them outright so a retired
//! lane's garbage can never raise a spurious singularity.

use crate::batch::{BatchOdeSystem, BatchState};
use crate::dopri5_batch::{lane_wrms, LaneReport};
use crate::radau5::{
    ALPH, BETA, FACL, FACR, NIT, QUOT1, QUOT2, SAFE, SQ6, T11, T12, T13, T21, T22, T23, T31, THET,
    TI11, TI12, TI13, TI21, TI22, TI23, TI31, TI32, TI33, U1,
};
use crate::system::check_inputs;
use crate::{Solution, SolveFailure, SolverError, SolverOptions, SolverScratch, StepStats};
use paraspace_linalg::{
    BatchCluFactor, BatchLuFactor, BatchSparseCluFactor, BatchSparseLuFactor, Complex64, SymbolicLu,
};
use std::sync::Arc;

/// Pooled working storage for one lockstep Radau lane-group integration:
/// SoA blocks for the state, stage values, transformed Newton variables and
/// residuals, the dense-output polynomial, per-lane Jacobian storage, the
/// two batched LU factorizations, and per-lane control vectors.
#[derive(Debug, Default)]
pub(crate) struct RadauBatchScratch {
    y: BatchState,
    f0: BatchState,
    z1: BatchState,
    z2: BatchState,
    z3: BatchState,
    w1: BatchState,
    w2: BatchState,
    w3: BatchState,
    f1: BatchState,
    f2: BatchState,
    f3: BatchState,
    stage: BatchState,
    tmp: BatchState,
    err_v: BatchState,
    f_ref: BatchState,
    scale: BatchState,
    probe_y: BatchState,
    probe_f: BatchState,
    rhs_real: BatchState,
    rhs_cplx: Vec<Complex64>,
    cont0: BatchState,
    cont1: BatchState,
    cont2: BatchState,
    cont3: BatchState,
    /// Per-lane Jacobians, `(i·n + j)·L + l`; refreshed lanes copy their
    /// column out of `jac_probe` so untouched lanes keep their stored `J`.
    jac_lanes: Vec<f64>,
    jac_probe: Vec<f64>,
    /// Dense iteration-matrix factorizations; allocated only when the
    /// group runs in dense mode (see the sparse/dense selection in
    /// `solve_group_impl`).
    lu_real: BatchLuFactor,
    lu_cplx: BatchCluFactor,
    /// Sparse iteration-matrix factorizations over the model's symbolic
    /// analysis; populated only when the group runs in sparse mode, and
    /// reused across groups of the same model (pattern equality is checked
    /// by `ensure`).
    sparse_real: Option<BatchSparseLuFactor>,
    sparse_cplx: Option<BatchSparseCluFactor>,
    member_buf: Vec<f64>,
    aux_y: Vec<f64>,
    aux_f: Vec<f64>,
    aux_sc: Vec<f64>,
    aux_d: Vec<f64>,
    sample_buf: Vec<f64>,
    t: Vec<f64>,
    h: Vec<f64>,
    t_stage: Vec<f64>,
    fac1v: Vec<f64>,
    alphnv: Vec<f64>,
    betanv: Vec<f64>,
    dyno_acc: Vec<f64>,
    err_norm: Vec<f64>,
    jac_mask: Vec<bool>,
    factor_mask: Vec<bool>,
    newton_mask: Vec<bool>,
    conv_mask: Vec<bool>,
    refine_mask: Vec<bool>,
    refresh_mask: Vec<bool>,
}

impl RadauBatchScratch {
    /// Sizes every buffer for dimension `n` × `lanes` lanes (stale contents
    /// are harmless: live lanes fully rewrite their columns before reads).
    fn ensure(&mut self, n: usize, lanes: usize) {
        for b in [
            &mut self.y,
            &mut self.f0,
            &mut self.z1,
            &mut self.z2,
            &mut self.z3,
            &mut self.w1,
            &mut self.w2,
            &mut self.w3,
            &mut self.f1,
            &mut self.f2,
            &mut self.f3,
            &mut self.stage,
            &mut self.tmp,
            &mut self.err_v,
            &mut self.f_ref,
            &mut self.scale,
            &mut self.probe_y,
            &mut self.probe_f,
            &mut self.rhs_real,
            &mut self.cont0,
            &mut self.cont1,
            &mut self.cont2,
            &mut self.cont3,
        ] {
            if b.dim() != n || b.lanes() != lanes {
                b.resize(n, lanes);
            }
        }
        self.rhs_cplx.clear();
        self.rhs_cplx.resize(n * lanes, Complex64::ZERO);
        self.jac_lanes.resize(n * n * lanes, 0.0);
        self.jac_probe.resize(n * n * lanes, 0.0);
        // The LU factors (dense or sparse) are sized by the mode decision
        // in `solve_group_impl`, so a sparse-mode group never allocates the
        // n²·L dense blocks.
        for v in [
            &mut self.member_buf,
            &mut self.aux_y,
            &mut self.aux_f,
            &mut self.aux_sc,
            &mut self.aux_d,
            &mut self.sample_buf,
        ] {
            v.resize(n, 0.0);
        }
        for v in [
            &mut self.t,
            &mut self.h,
            &mut self.t_stage,
            &mut self.fac1v,
            &mut self.alphnv,
            &mut self.betanv,
            &mut self.dyno_acc,
            &mut self.err_norm,
        ] {
            v.resize(lanes, 0.0);
        }
        for v in [
            &mut self.jac_mask,
            &mut self.factor_mask,
            &mut self.newton_mask,
            &mut self.conv_mask,
            &mut self.refine_mask,
            &mut self.refresh_mask,
        ] {
            v.clear();
            v.resize(lanes, false);
        }
    }
}

/// The group's iteration-matrix factorization backend, selected once per
/// group from the model's Jacobian sparsity: dense SoA LU for small or
/// dense patterns, symbolic-pattern sparse LU when the structure pays
/// (`SymbolicLu::prefers_sparse`). Both backends produce bitwise-identical
/// solves on the same inputs (the sparse kernels replicate the dense pivot
/// and elimination branches over the closed fill pattern), so the choice
/// is invisible to trajectories, step statistics, and the determinism
/// contract — it only changes how many values each Newton refresh streams.
enum LaneLu<'a> {
    Dense { real: &'a mut BatchLuFactor, cplx: &'a mut BatchCluFactor },
    Sparse { real: &'a mut BatchSparseLuFactor, cplx: &'a mut BatchSparseCluFactor },
}

impl LaneLu<'_> {
    /// Builds both Radau iteration matrices — `E1 = U1/h·I − J` (real) and
    /// `E2 = (α + iβ)/h·I − J` (complex) — in the masked lanes' columns
    /// from the dense per-lane Jacobian block, then factors them batched.
    /// The dense backend streams all `n²` entries per lane; the sparse
    /// backend streams only the symbolic pattern's `nnz` (every position
    /// outside it holds an exact zero in `jac_lanes`, which the dense
    /// elimination guards skip anyway).
    fn build_and_factor(
        &mut self,
        n: usize,
        lanes: usize,
        jac_lanes: &[f64],
        h: &[f64],
        mask: &[bool],
    ) {
        match self {
            LaneLu::Dense { real, cplx } => {
                {
                    let m1 = real.matrix_mut();
                    for lane in 0..lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let fac1 = U1 / h[lane];
                        for i in 0..n {
                            for j in 0..n {
                                let e = (i * n + j) * lanes + lane;
                                m1[e] = -jac_lanes[e];
                            }
                            m1[(i * n + i) * lanes + lane] += fac1;
                        }
                    }
                }
                real.factor(mask);
                {
                    let m2 = cplx.matrix_mut();
                    for lane in 0..lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let alphn = ALPH / h[lane];
                        let betan = BETA / h[lane];
                        for i in 0..n {
                            for j in 0..n {
                                let e = (i * n + j) * lanes + lane;
                                m2[e] = Complex64::new(-jac_lanes[e], 0.0);
                            }
                            m2[(i * n + i) * lanes + lane] += Complex64::new(alphn, betan);
                        }
                    }
                }
                cplx.factor(mask);
            }
            LaneLu::Sparse { real, cplx } => {
                {
                    let (sym, vals) = real.parts_mut();
                    for lane in 0..lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let fac1 = U1 / h[lane];
                        for i in 0..n {
                            for e in sym.row_range(i) {
                                let j = sym.col_of(e);
                                vals[e * lanes + lane] = -jac_lanes[(i * n + j) * lanes + lane];
                            }
                            vals[sym.diag_entry(i) * lanes + lane] += fac1;
                        }
                    }
                }
                real.factor(mask);
                {
                    let (sym, vals) = cplx.parts_mut();
                    for lane in 0..lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let alphn = ALPH / h[lane];
                        let betan = BETA / h[lane];
                        for i in 0..n {
                            for e in sym.row_range(i) {
                                let j = sym.col_of(e);
                                vals[e * lanes + lane] =
                                    Complex64::new(-jac_lanes[(i * n + j) * lanes + lane], 0.0);
                            }
                            vals[sym.diag_entry(i) * lanes + lane] += Complex64::new(alphn, betan);
                        }
                    }
                }
                cplx.factor(mask);
            }
        }
    }

    /// Whether either of lane `lane`'s factorizations came out singular.
    fn is_singular(&self, lane: usize) -> bool {
        match self {
            LaneLu::Dense { real, cplx } => real.is_singular(lane) || cplx.is_singular(lane),
            LaneLu::Sparse { real, cplx } => real.is_singular(lane) || cplx.is_singular(lane),
        }
    }

    /// Masked batched solve against the real factorization.
    fn solve_real(&self, b: &mut [f64], mask: &[bool]) {
        match self {
            LaneLu::Dense { real, .. } => real.solve_lanes(b, mask),
            LaneLu::Sparse { real, .. } => real.solve_lanes(b, mask),
        }
    }

    /// Masked batched solve against the complex factorization.
    fn solve_cplx(&self, b: &mut [Complex64], mask: &[bool]) {
        match self {
            LaneLu::Dense { cplx, .. } => cplx.solve_lanes(b, mask),
            LaneLu::Sparse { cplx, .. } => cplx.solve_lanes(b, mask),
        }
    }
}

/// Per-lane control state: everything the scalar RADAU5 keeps in local
/// variables for its single trajectory, plus the lane's position inside the
/// step state machine (between ticks a lane is either at *step start* or
/// mid-Newton).
struct LaneCtl {
    member: usize,
    sol: Solution,
    next_sample: usize,
    steps_since_sample: usize,
    need_jacobian: bool,
    need_factor: bool,
    first: bool,
    last_rejected: bool,
    faccon: f64,
    hacc: f64,
    erracc: f64,
    singular_retries: usize,
    newton_failures: usize,
    have_cont: bool,
    cont_h: f64,
    in_newton: bool,
    newt: usize,
    newton_iters: usize,
    theta: f64,
    dyno_old: f64,
    thq_old: f64,
}

/// The lockstep lane-batched RADAU5 solver.
///
/// # Example
///
/// Integrating several decay rates of the same stiff one-species network in
/// lockstep (see [`BatchOdeSystem`] for the system contract; the implicit
/// kernel additionally requires
/// [`jacobian_batch`](BatchOdeSystem::jacobian_batch)):
///
/// ```
/// use paraspace_solvers::{
///     BatchOdeSystem, BatchState, Radau5Batch, SolverOptions, SolverScratch,
/// };
///
/// struct Decays {
///     rates: Vec<f64>,
///     bound: Vec<f64>,
/// }
///
/// impl BatchOdeSystem for Decays {
///     fn dim(&self) -> usize { 1 }
///     fn lanes(&self) -> usize { self.bound.len() }
///     fn members(&self) -> usize { self.rates.len() }
///     fn initial_state(&self, _member: usize, y0: &mut [f64]) { y0[0] = 1.0; }
///     fn bind_lane(&mut self, lane: usize, member: usize) {
///         self.bound[lane] = self.rates[member];
///     }
///     fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
///         for l in 0..self.bound.len() {
///             dydt.set(0, l, -self.bound[l] * y.at(0, l));
///         }
///     }
///     fn supports_jacobian_batch(&self) -> bool { true }
///     fn jacobian_batch(&mut self, _t: &[f64], _y: &BatchState, jac: &mut [f64]) {
///         for l in 0..self.bound.len() {
///             jac[l] = -self.bound[l];
///         }
///     }
/// }
///
/// let mut sys = Decays { rates: vec![0.5, 1.0, 2.0], bound: vec![0.0; 2] };
/// let (results, report) = Radau5Batch::new().solve_group(
///     &mut sys, 0.0, &[1.0], &SolverOptions::default(), &mut SolverScratch::new(),
/// );
/// for (m, r) in results.iter().enumerate() {
///     let sol = r.as_ref().unwrap();
///     let exact = (-sys.rates[m]).exp();
///     assert!((sol.state_at(0)[0] - exact).abs() < 1e-6);
/// }
/// assert_eq!(report.width, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radau5Batch {
    _private: (),
}

impl Radau5Batch {
    /// Creates the solver.
    pub fn new() -> Self {
        Radau5Batch { _private: () }
    }

    /// The solver's name for engine reporting.
    pub fn name(&self) -> &'static str {
        "radau5-lanes"
    }

    /// Integrates every member of `system`'s queue, `system.lanes()` at a
    /// time, sampling each at `sample_times`.
    ///
    /// Returns one result per member (index-aligned with the member queue)
    /// plus the group's lane-occupancy accounting
    /// ([`LaneReport::lockstep_iters`] counts Newton-iteration ticks here).
    /// Member failures are per-lane: one diverging member parks with its
    /// error while the rest of the group continues.
    ///
    /// # Panics
    ///
    /// Panics if `system` does not advertise
    /// [`supports_jacobian_batch`](BatchOdeSystem::supports_jacobian_batch).
    pub fn solve_group(
        &self,
        system: &mut dyn BatchOdeSystem,
        t0: f64,
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> (Vec<Result<Solution, SolveFailure>>, LaneReport) {
        assert!(
            system.supports_jacobian_batch(),
            "Radau5Batch requires a BatchOdeSystem with an analytic jacobian_batch"
        );
        solve_group_impl(system, t0, sample_times, options, &mut scratch.radau_batch)
    }
}

#[allow(clippy::too_many_lines)]
fn solve_group_impl(
    system: &mut dyn BatchOdeSystem,
    t0: f64,
    sample_times: &[f64],
    options: &SolverOptions,
    ws: &mut RadauBatchScratch,
) -> (Vec<Result<Solution, SolveFailure>>, LaneReport) {
    let n = system.dim();
    let lanes = system.lanes();
    let members = system.members();
    assert!(lanes >= 1, "lane width must be at least 1");
    let mut report = LaneReport { width: lanes, ..LaneReport::default() };
    let mut results: Vec<Option<Result<Solution, SolveFailure>>> =
        (0..members).map(|_| None).collect();

    ws.ensure(n, lanes);

    // Factorization-mode decision: one symbolic analysis per group. When the
    // system publishes a structurally fixed Jacobian pattern that is sparse
    // enough to pay (`prefers_sparse`), the Newton iteration matrices are
    // factored by the pattern-sharing sparse kernels; otherwise the dense SoA
    // kernels are used. Both produce bitwise-identical solves, so this choice
    // never changes trajectories or step statistics.
    let symbolic: Option<Arc<SymbolicLu>> = system
        .jacobian_sparsity()
        .map(|p| {
            assert_eq!(p.dim(), n, "jacobian_sparsity dimension must match system dim");
            Arc::new(SymbolicLu::analyze(&p))
        })
        .filter(|sym| sym.prefers_sparse());
    if let Some(sym) = &symbolic {
        match &mut ws.sparse_real {
            Some(f) => f.ensure(sym, lanes),
            slot => {
                *slot = Some(BatchSparseLuFactor::new(sym.clone(), lanes).expect("lanes >= 1"));
            }
        }
        match &mut ws.sparse_cplx {
            Some(f) => f.ensure(sym, lanes),
            slot => {
                *slot = Some(BatchSparseCluFactor::new(sym.clone(), lanes).expect("lanes >= 1"));
            }
        }
    } else {
        ws.lu_real.ensure(n, lanes);
        ws.lu_cplx.ensure(n, lanes);
    }

    let RadauBatchScratch {
        y,
        f0,
        z1,
        z2,
        z3,
        w1,
        w2,
        w3,
        f1,
        f2,
        f3,
        stage,
        tmp,
        err_v,
        f_ref,
        scale,
        probe_y,
        probe_f,
        rhs_real,
        rhs_cplx,
        cont0,
        cont1,
        cont2,
        cont3,
        jac_lanes,
        jac_probe,
        lu_real,
        lu_cplx,
        sparse_real,
        sparse_cplx,
        member_buf,
        aux_y,
        aux_f,
        aux_sc,
        aux_d,
        sample_buf,
        t,
        h,
        t_stage,
        fac1v,
        alphnv,
        betanv,
        dyno_acc,
        err_norm,
        jac_mask,
        factor_mask,
        newton_mask,
        conv_mask,
        refine_mask,
        refresh_mask,
    } = ws;

    let mut lane_lu = if symbolic.is_some() {
        LaneLu::Sparse {
            real: sparse_real.as_mut().expect("sparse real factor ensured above"),
            cplx: sparse_cplx.as_mut().expect("sparse complex factor ensured above"),
        }
    } else {
        LaneLu::Dense { real: lu_real, cplx: lu_cplx }
    };

    // Method constants derived exactly as the scalar preamble derives them.
    let c1 = (4.0 - SQ6) / 10.0;
    let c2 = (4.0 + SQ6) / 10.0;
    let c1mc2 = c1 - c2;
    let dd1 = -(13.0 + 7.0 * SQ6) / 3.0;
    let dd2 = (-13.0 + 7.0 * SQ6) / 3.0;
    let dd3 = -1.0 / 3.0;
    let c1m1 = c1 - 1.0;
    let c2m1 = c2 - 1.0;
    let uround = f64::EPSILON;
    let fnewt = (10.0 * uround / options.rel_tol).max(0.03f64.min(options.rel_tol.sqrt()));

    // Up-front validation, one member at a time (mirrors the scalar
    // preamble; invalid members never occupy a lane).
    for (m, slot) in results.iter_mut().enumerate() {
        system.initial_state(m, member_buf);
        if let Err(error) = check_inputs(n, member_buf, t0, sample_times, options) {
            *slot = Some(Err(SolveFailure { error, stats: StepStats::default() }));
        }
    }

    let t_end = match sample_times.last() {
        Some(&te) => te,
        None => {
            // No samples requested: every valid member is an empty success.
            let out = results
                .into_iter()
                .map(|r| r.unwrap_or_else(|| Ok(Solution::with_capacity(0))))
                .collect();
            return (out, report);
        }
    };

    let mut ctl: Vec<Option<LaneCtl>> = (0..lanes).map(|_| None).collect();
    let mut next_member = 0usize;

    loop {
        // --- Lane compaction: bind pending members into free lanes. ---
        let mut fresh: Vec<usize> = Vec::new();
        for lane in 0..lanes {
            if ctl[lane].is_some() {
                continue;
            }
            while next_member < members {
                let m = next_member;
                next_member += 1;
                if results[m].is_some() {
                    continue; // failed validation
                }
                system.initial_state(m, member_buf);
                let mut sol = Solution::with_capacity(sample_times.len());
                sol.stats.rhs_evals += 1; // f(t0, y0), evaluated lane-wide below
                let mut next_sample = 0;
                while next_sample < sample_times.len() && sample_times[next_sample] <= t0 {
                    sol.times.push(sample_times[next_sample]);
                    sol.states.push(member_buf.clone());
                    next_sample += 1;
                }
                if next_sample == sample_times.len() {
                    results[m] = Some(Ok(sol)); // every sample was at/before t0
                    continue;
                }
                system.bind_lane(lane, m);
                y.scatter_lane(lane, member_buf);
                t[lane] = t0;
                h[lane] = 0.0;
                ctl[lane] = Some(LaneCtl {
                    member: m,
                    sol,
                    next_sample,
                    steps_since_sample: 0,
                    need_jacobian: true,
                    need_factor: true,
                    first: true,
                    last_rejected: false,
                    faccon: 1.0,
                    hacc: 0.0, // finalized after hinit
                    erracc: 1e-2,
                    singular_retries: 0,
                    newton_failures: 0,
                    have_cont: false,
                    cont_h: 0.0,
                    in_newton: false,
                    newt: 0,
                    newton_iters: 0,
                    theta: 2.0 * THET,
                    dyno_old: 0.0,
                    thq_old: 0.0,
                });
                fresh.push(lane);
                break;
            }
        }

        // --- Initialize fresh lanes: f0 seed + Hairer hinit (order 3). ---
        if !fresh.is_empty() {
            // One sweep computes f(t0, y0) for every fresh lane; live lanes'
            // stored f0 stays untouched (the sweep output goes to a
            // temporary block).
            system.rhs_batch(t, y, probe_f);
            report.refill_sweeps += 1;
            for &lane in &fresh {
                f0.copy_lane_from(probe_f, lane);
            }
            if let Some(h0) = options.initial_step {
                for &lane in &fresh {
                    h[lane] = h0;
                }
            } else {
                // Lane-wise `initial_step_size` at error-estimator order 3:
                // same arithmetic, with the Euler probe batched into a
                // single sweep for all fresh lanes.
                probe_y.as_mut_slice().copy_from_slice(y.as_slice());
                t_stage.copy_from_slice(t);
                for &lane in &fresh {
                    y.gather_lane(lane, aux_y);
                    f0.gather_lane(lane, aux_f);
                    for i in 0..n {
                        aux_sc[i] = options.abs_tol + options.rel_tol * aux_y[i].abs();
                    }
                    let d0 = paraspace_linalg::weighted_rms_norm(aux_y, aux_sc);
                    let d1 = paraspace_linalg::weighted_rms_norm(aux_f, aux_sc);
                    let h0 = if d0 < 1e-5 || d1 < 1e-5 { 1e-6 } else { 0.01 * (d0 / d1) };
                    let h0 = h0.min(options.max_step);
                    for i in 0..n {
                        aux_d[i] = aux_y[i] + h0 * aux_f[i];
                    }
                    probe_y.scatter_lane(lane, aux_d);
                    t_stage[lane] = t[lane] + h0;
                    h[lane] = h0; // provisional; finalized after the probe
                }
                system.rhs_batch(t_stage, probe_y, probe_f);
                report.refill_sweeps += 1;
                for &lane in &fresh {
                    let h0 = h[lane];
                    y.gather_lane(lane, aux_y);
                    f0.gather_lane(lane, aux_f);
                    for i in 0..n {
                        aux_sc[i] = options.abs_tol + options.rel_tol * aux_y[i].abs();
                    }
                    probe_f.gather_lane(lane, aux_d);
                    for i in 0..n {
                        aux_d[i] -= aux_f[i];
                    }
                    let d1 = paraspace_linalg::weighted_rms_norm(aux_f, aux_sc);
                    let d2 = paraspace_linalg::weighted_rms_norm(aux_d, aux_sc) / h0;
                    let dmax = d1.max(d2);
                    let h1 = if dmax <= 1e-15 {
                        (h0 * 1e-3).max(1e-6)
                    } else {
                        (0.01 / dmax).powf(1.0 / 4.0)
                    };
                    h[lane] = (100.0 * h0).min(h1).min(options.max_step);
                    let c = ctl[lane].as_mut().expect("fresh lane is bound");
                    c.sol.stats.rhs_evals += 1;
                }
            }
            // Post-hinit clamp, Gustafsson memory seed, and error scale
            // (the scalar preamble's tail).
            for &lane in &fresh {
                h[lane] = h[lane].min(options.max_step).min(t_end - t[lane]);
                let c = ctl[lane].as_mut().expect("fresh lane is bound");
                c.hacc = h[lane];
                let (yv, sc) = (y.as_slice(), scale.as_mut_slice());
                for i in 0..n {
                    let il = i * lanes + lane;
                    sc[il] = options.abs_tol + options.rel_tol * yv[il].abs();
                }
            }
        }

        if ctl.iter().all(|c| c.is_none()) {
            break; // no live lanes and no pending members
        }

        // --- Per-lane pre-step control for lanes at step start (mirrors
        // the scalar loop head; mid-Newton lanes skip it). ---
        for lane in 0..lanes {
            let mut park: Option<SolverError> = None;
            if let Some(c) = ctl[lane].as_mut() {
                if !c.in_newton {
                    if options.step_budget.is_some_and(|budget| c.sol.stats.steps >= budget) {
                        let budget = options.step_budget.expect("checked above");
                        park = Some(SolverError::StepBudgetExhausted { t: t[lane], budget });
                    } else if c.steps_since_sample >= options.max_steps {
                        park = Some(SolverError::MaxStepsExceeded {
                            t: t[lane],
                            max_steps: options.max_steps,
                        });
                    } else {
                        h[lane] = h[lane].min(options.max_step).min(t_end - t[lane]);
                        if h[lane] <= uround * t[lane].abs().max(1.0) {
                            park = Some(SolverError::StepSizeUnderflow { t: t[lane] });
                        }
                    }
                }
            }
            if let Some(error) = park {
                let c = ctl[lane].take().expect("parked lane was live");
                results[c.member] = Some(Err(SolveFailure { error, stats: c.sol.stats }));
                h[lane] = 0.0;
            }
        }
        if ctl.iter().all(|c| c.is_none()) {
            continue; // refill (or terminate) at the loop head
        }

        // --- Masked Jacobian refresh: one lane-wide sweep, columns copied
        // out only for the lanes that asked. ---
        let mut any_jac = false;
        for lane in 0..lanes {
            jac_mask[lane] = ctl[lane].as_ref().is_some_and(|c| !c.in_newton && c.need_jacobian);
            any_jac |= jac_mask[lane];
        }
        if any_jac {
            system.jacobian_batch(t, y, jac_probe);
            for lane in 0..lanes {
                if !jac_mask[lane] {
                    continue;
                }
                for e in 0..n * n {
                    jac_lanes[e * lanes + lane] = jac_probe[e * lanes + lane];
                }
                let c = ctl[lane].as_mut().expect("jacobian lane is live");
                c.sol.stats.jacobian_evals += 1;
                c.need_jacobian = false;
                c.need_factor = true;
            }
        }

        // --- Masked factorization: build E1 = γ/h·I − J and
        // E2 = (α+iβ)/h·I − J in the requesting lanes' columns only, then
        // factor them batched. ---
        let mut any_factor = false;
        for lane in 0..lanes {
            factor_mask[lane] = ctl[lane].as_ref().is_some_and(|c| !c.in_newton && c.need_factor);
            any_factor |= factor_mask[lane];
        }
        if any_factor {
            lane_lu.build_and_factor(n, lanes, jac_lanes, h, factor_mask);
            for lane in 0..lanes {
                if !factor_mask[lane] {
                    continue;
                }
                let mut park: Option<SolverError> = None;
                {
                    let c = ctl[lane].as_mut().expect("factor lane is live");
                    if lane_lu.is_singular(lane) {
                        c.singular_retries += 1;
                        if c.singular_retries > 8 {
                            park = Some(SolverError::SingularIterationMatrix { t: t[lane] });
                        } else {
                            // Halve h and retry from step start next tick
                            // (the scalar path's `continue 'steps`, which
                            // re-runs the pre-step checks first).
                            h[lane] *= 0.5;
                        }
                    } else {
                        c.sol.stats.lu_decompositions += 2;
                        c.singular_retries = 0;
                        c.need_factor = false;
                    }
                }
                if let Some(error) = park {
                    let c = ctl[lane].take().expect("parked lane was live");
                    results[c.member] = Some(Err(SolveFailure { error, stats: c.sol.stats }));
                    h[lane] = 0.0;
                }
            }
        }

        // --- Newton start: lanes at step start with a valid factorization
        // initialize z, w and the iteration bookkeeping. ---
        for lane in 0..lanes {
            let Some(c) = ctl[lane].as_mut() else { continue };
            if c.in_newton || c.need_factor {
                continue; // mid-Newton, or waiting out a singular retry
            }
            if c.first || !c.have_cont {
                let (z1v, z2v, z3v) = (z1.as_mut_slice(), z2.as_mut_slice(), z3.as_mut_slice());
                let (w1v, w2v, w3v) = (w1.as_mut_slice(), w2.as_mut_slice(), w3.as_mut_slice());
                for i in 0..n {
                    let il = i * lanes + lane;
                    z1v[il] = 0.0;
                    z2v[il] = 0.0;
                    z3v[il] = 0.0;
                    w1v[il] = 0.0;
                    w2v[il] = 0.0;
                    w3v[il] = 0.0;
                }
            } else {
                // Extrapolate the previous collocation polynomial.
                let ratio = h[lane] / c.cont_h;
                let (c0v, c1v, c2v, c3v) =
                    (cont0.as_slice(), cont1.as_slice(), cont2.as_slice(), cont3.as_slice());
                for (ci, which) in [(c1, 0usize), (c2, 1), (1.0, 2)] {
                    let s_eval = ci * ratio;
                    let zv = match which {
                        0 => z1.as_mut_slice(),
                        1 => z2.as_mut_slice(),
                        _ => z3.as_mut_slice(),
                    };
                    for i in 0..n {
                        let il = i * lanes + lane;
                        let q = c0v[il]
                            + s_eval
                                * (c1v[il]
                                    + (s_eval - c2m1) * (c2v[il] + (s_eval - c1m1) * c3v[il]));
                        zv[il] = q - c0v[il];
                    }
                }
                let (z1v, z2v, z3v) = (z1.as_slice(), z2.as_slice(), z3.as_slice());
                let (w1v, w2v, w3v) = (w1.as_mut_slice(), w2.as_mut_slice(), w3.as_mut_slice());
                for i in 0..n {
                    let il = i * lanes + lane;
                    w1v[il] = TI11 * z1v[il] + TI12 * z2v[il] + TI13 * z3v[il];
                    w2v[il] = TI21 * z1v[il] + TI22 * z2v[il] + TI23 * z3v[il];
                    w3v[il] = TI31 * z1v[il] + TI32 * z2v[il] + TI33 * z3v[il];
                }
            }
            c.faccon = c.faccon.max(uround).powf(0.8);
            c.theta = 2.0 * THET; // pessimistic until measured
            c.dyno_old = 0.0;
            c.thq_old = 0.0;
            c.newt = 0;
            c.newton_iters = 0;
            c.in_newton = true;
        }

        // --- The lockstep Newton iteration: three lane-wide stage sweeps,
        // two masked batched solves, per-lane convergence control. Lanes may
        // sit at different iteration counts; the arithmetic is identical. ---
        let mut n_newton = 0u64;
        for lane in 0..lanes {
            newton_mask[lane] = ctl[lane].as_ref().is_some_and(|c| c.in_newton);
            n_newton += u64::from(newton_mask[lane]);
        }
        if n_newton == 0 {
            continue; // every live lane is waiting out a singular retry
        }
        report.lockstep_iters += 1;
        report.lane_steps += n_newton;

        for lane in 0..lanes {
            if !newton_mask[lane] {
                continue;
            }
            let c = ctl[lane].as_mut().expect("newton lane is live");
            c.newton_iters = c.newt + 1;
            c.sol.stats.rhs_evals += 3;
            c.sol.stats.nonlinear_iters += 1;
            c.sol.stats.linear_solves += 2;
        }

        // Stage right-hand sides.
        {
            let (yv, zv) = (y.as_slice(), z1.as_slice());
            let st = stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    st[b + l] = yv[b + l] + zv[b + l];
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + c1 * h[l];
            }
        }
        system.rhs_batch(t_stage, stage, f1);
        {
            let (yv, zv) = (y.as_slice(), z2.as_slice());
            let st = stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    st[b + l] = yv[b + l] + zv[b + l];
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + c2 * h[l];
            }
        }
        system.rhs_batch(t_stage, stage, f2);
        {
            let (yv, zv) = (y.as_slice(), z3.as_slice());
            let st = stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    st[b + l] = yv[b + l] + zv[b + l];
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + h[l];
            }
        }
        system.rhs_batch(t_stage, stage, f3);

        // Transformed residuals, lane-wide.
        for l in 0..lanes {
            fac1v[l] = U1 / h[l];
            alphnv[l] = ALPH / h[l];
            betanv[l] = BETA / h[l];
        }
        {
            let (f1v, f2v, f3v) = (f1.as_slice(), f2.as_slice(), f3.as_slice());
            let (w1v, w2v, w3v) = (w1.as_slice(), w2.as_slice(), w3.as_slice());
            let rr = rhs_real.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    let fw1 = TI11 * f1v[b + l] + TI12 * f2v[b + l] + TI13 * f3v[b + l];
                    let fw2 = TI21 * f1v[b + l] + TI22 * f2v[b + l] + TI23 * f3v[b + l];
                    let fw3 = TI31 * f1v[b + l] + TI32 * f2v[b + l] + TI33 * f3v[b + l];
                    rr[b + l] = fw1 - fac1v[l] * w1v[b + l];
                    rhs_cplx[b + l] = Complex64::new(
                        fw2 - (alphnv[l] * w2v[b + l] - betanv[l] * w3v[b + l]),
                        fw3 - (alphnv[l] * w3v[b + l] + betanv[l] * w2v[b + l]),
                    );
                }
            }
        }
        lane_lu.solve_real(rhs_real.as_mut_slice(), newton_mask);
        lane_lu.solve_cplx(rhs_cplx, newton_mask);

        // Update w and accumulate the displacement norm, lane-wide.
        {
            let rr = rhs_real.as_slice();
            let (w1v, w2v, w3v) = (w1.as_mut_slice(), w2.as_mut_slice(), w3.as_mut_slice());
            let sc = scale.as_slice();
            dyno_acc.fill(0.0);
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    let d1 = rr[b + l];
                    let d2 = rhs_cplx[b + l].re;
                    let d3 = rhs_cplx[b + l].im;
                    w1v[b + l] += d1;
                    w2v[b + l] += d2;
                    w3v[b + l] += d3;
                    let sv = sc[b + l];
                    dyno_acc[l] += (d1 / sv).powi(2) + (d2 / sv).powi(2) + (d3 / sv).powi(2);
                }
            }
        }
        // Back-transform to z, lane-wide.
        {
            let (w1v, w2v, w3v) = (w1.as_slice(), w2.as_slice(), w3.as_slice());
            let (z1v, z2v, z3v) = (z1.as_mut_slice(), z2.as_mut_slice(), z3.as_mut_slice());
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    z1v[b + l] = T11 * w1v[b + l] + T12 * w2v[b + l] + T13 * w3v[b + l];
                    z2v[b + l] = T21 * w1v[b + l] + T22 * w2v[b + l] + T23 * w3v[b + l];
                    z3v[b + l] = T31 * w1v[b + l] + w2v[b + l];
                }
            }
        }

        // Per-lane convergence control (the scalar iteration's tail).
        for lane in 0..lanes {
            conv_mask[lane] = false;
            if !newton_mask[lane] {
                continue;
            }
            let mut park: Option<SolverError> = None;
            {
                let c = ctl[lane].as_mut().expect("newton lane is live");
                let dyno = (dyno_acc[lane] / (3 * n) as f64).sqrt();
                enum Outcome {
                    Continue,
                    Converged,
                    Failed,
                }
                let mut outcome = Outcome::Continue;
                if !dyno.is_finite() {
                    outcome = Outcome::Failed; // divergence handled below
                } else {
                    let mut broke = false;
                    if c.newt > 0 {
                        let thq = dyno / c.dyno_old.max(f64::MIN_POSITIVE);
                        c.theta = if c.newt == 1 { thq } else { (thq * c.thq_old).sqrt() };
                        c.thq_old = thq;
                        if c.theta < 0.99 {
                            c.faccon = c.theta / (1.0 - c.theta);
                            let remaining = (NIT - 1 - c.newt) as i32;
                            let dyth = c.faccon * dyno * c.theta.powi(remaining) / fnewt;
                            if dyth >= 1.0 {
                                broke = true; // predicted to miss the tolerance
                            }
                        } else {
                            broke = true; // diverging
                        }
                    }
                    if broke {
                        outcome = Outcome::Failed;
                    } else {
                        c.dyno_old = dyno.max(uround);
                        if c.faccon * dyno <= fnewt && c.newt > 0 {
                            outcome = Outcome::Converged;
                        } else if c.newt == 0 && dyno <= 1e-1 * fnewt {
                            // First iteration can also converge immediately.
                            outcome = Outcome::Converged;
                        } else if c.newt + 1 >= NIT {
                            outcome = Outcome::Failed; // iteration budget spent
                        }
                    }
                }
                match outcome {
                    Outcome::Continue => c.newt += 1,
                    Outcome::Converged => {
                        c.newton_failures = 0;
                        c.in_newton = false;
                        conv_mask[lane] = true;
                    }
                    Outcome::Failed => {
                        // Newton failed: fresh Jacobian if stale, halve the
                        // step, retry from step start.
                        c.newton_failures += 1;
                        if c.newton_failures > 20 {
                            park = Some(SolverError::NonlinearSolveFailed {
                                t: t[lane],
                                failures: c.newton_failures,
                            });
                        } else {
                            c.sol.stats.rejected += 1;
                            c.sol.stats.steps += 1;
                            c.steps_since_sample += 1;
                            c.need_jacobian = true; // conservative: rebuild at current y
                            c.need_factor = true;
                            h[lane] *= 0.5;
                            c.have_cont = false;
                            c.in_newton = false;
                        }
                    }
                }
            }
            if let Some(error) = park {
                let c = ctl[lane].take().expect("parked lane was live");
                results[c.member] = Some(Err(SolveFailure { error, stats: c.sol.stats }));
                h[lane] = 0.0;
            }
        }

        // --- Error estimate for the lanes that converged this tick:
        // err = || E1⁻¹ (f0 + Σ ddᵢ zᵢ / h) ||, masked batched solve. ---
        let any_conv = conv_mask.iter().any(|&m| m);
        if any_conv {
            {
                let (z1v, z2v, z3v) = (z1.as_slice(), z2.as_slice(), z3.as_slice());
                let f0v = f0.as_slice();
                let (tv, ev) = (tmp.as_mut_slice(), err_v.as_mut_slice());
                for lane in 0..lanes {
                    if !conv_mask[lane] {
                        continue;
                    }
                    let hee1 = dd1 / h[lane];
                    let hee2 = dd2 / h[lane];
                    let hee3 = dd3 / h[lane];
                    for i in 0..n {
                        let il = i * lanes + lane;
                        tv[il] = hee1 * z1v[il] + hee2 * z2v[il] + hee3 * z3v[il];
                        ev[il] = tv[il] + f0v[il];
                    }
                }
            }
            lane_lu.solve_real(err_v.as_mut_slice(), conv_mask);
            let mut any_refine = false;
            for lane in 0..lanes {
                refine_mask[lane] = false;
                if !conv_mask[lane] {
                    continue;
                }
                let c = ctl[lane].as_mut().expect("converged lane is live");
                c.sol.stats.linear_solves += 1;
                err_norm[lane] =
                    lane_wrms(err_v.as_slice(), scale.as_slice(), n, lanes, lane).max(1e-10);
                refine_mask[lane] = err_norm[lane] >= 1.0 && (c.first || c.last_rejected);
                any_refine |= refine_mask[lane];
            }
            if any_refine {
                // Refined estimate: evaluate f at the corrected point.
                {
                    let (yv, ev) = (y.as_slice(), err_v.as_slice());
                    let st = stage.as_mut_slice();
                    for lane in 0..lanes {
                        if !refine_mask[lane] {
                            continue;
                        }
                        for i in 0..n {
                            let il = i * lanes + lane;
                            st[il] = yv[il] + ev[il];
                        }
                    }
                    t_stage.copy_from_slice(t);
                }
                system.rhs_batch(t_stage, stage, f_ref);
                {
                    let (fv, tv) = (f_ref.as_slice(), tmp.as_slice());
                    let ev = err_v.as_mut_slice();
                    for lane in 0..lanes {
                        if !refine_mask[lane] {
                            continue;
                        }
                        for i in 0..n {
                            let il = i * lanes + lane;
                            ev[il] = fv[il] + tv[il];
                        }
                    }
                }
                lane_lu.solve_real(err_v.as_mut_slice(), refine_mask);
                for lane in 0..lanes {
                    if !refine_mask[lane] {
                        continue;
                    }
                    let c = ctl[lane].as_mut().expect("refining lane is live");
                    c.sol.stats.rhs_evals += 1;
                    c.sol.stats.linear_solves += 1;
                    err_norm[lane] =
                        lane_wrms(err_v.as_slice(), scale.as_slice(), n, lanes, lane).max(1e-10);
                }
            }
        }

        // --- Per-lane acceptance, Gustafsson controller, dense output,
        // sampling, and the Jacobian/LU reuse policy. ---
        for lane in 0..lanes {
            refresh_mask[lane] = false;
            if !conv_mask[lane] {
                continue;
            }
            enum Park {
                Done,
                Fail(SolverError),
            }
            let mut park: Option<Park> = None;
            {
                let c = ctl[lane].as_mut().expect("converged lane is live");
                c.sol.stats.steps += 1;
                c.steps_since_sample += 1;
                let err = err_norm[lane];

                // Step-size proposal (radau5's controller).
                let fac = SAFE.min(
                    SAFE * (1.0 + 2.0 * NIT as f64) / (c.newton_iters as f64 + 2.0 * NIT as f64),
                );
                let mut quot = (err.powf(0.25) / fac).clamp(FACR, FACL);
                let mut h_new = h[lane] / quot;

                if err < 1.0 {
                    // Accept.
                    c.sol.stats.accepted += 1;
                    if !c.first {
                        // Gustafsson predictive controller.
                        let facgus = ((c.hacc / h[lane]) * (err * err / c.erracc).powf(0.25)
                            / SAFE)
                            .clamp(FACR, FACL);
                        quot = quot.max(facgus);
                        h_new = h[lane] / quot;
                    }
                    c.hacc = h[lane];
                    c.erracc = err.max(1e-2);

                    // Dense-output coefficients from the collocation
                    // polynomial, this lane's columns only.
                    {
                        let yv = y.as_slice();
                        let (z1v, z2v, z3v) = (z1.as_slice(), z2.as_slice(), z3.as_slice());
                        let (c0v, c1v, c2v, c3v) = (
                            cont0.as_mut_slice(),
                            cont1.as_mut_slice(),
                            cont2.as_mut_slice(),
                            cont3.as_mut_slice(),
                        );
                        for i in 0..n {
                            let il = i * lanes + lane;
                            let y_new = yv[il] + z3v[il];
                            c0v[il] = y_new;
                            let c1_term = (z2v[il] - z3v[il]) / c2m1;
                            let ak = (z1v[il] - z2v[il]) / c1mc2;
                            let mut acont3 = z1v[il] / c1;
                            acont3 = (ak - acont3) / c2;
                            let c2_term = (ak - c1_term) / c1m1;
                            c1v[il] = c1_term;
                            c2v[il] = c2_term;
                            c3v[il] = c2_term - acont3;
                        }
                    }
                    c.cont_h = h[lane];
                    c.have_cont = true;

                    let t_new = t[lane] + h[lane];
                    // Serve samples inside (t, t_new].
                    {
                        let (c0v, c1v, c2v, c3v) = (
                            cont0.as_slice(),
                            cont1.as_slice(),
                            cont2.as_slice(),
                            cont3.as_slice(),
                        );
                        while c.next_sample < sample_times.len()
                            && sample_times[c.next_sample] <= t_new
                        {
                            let ts = sample_times[c.next_sample];
                            let sv = ((ts - t_new) / h[lane]).clamp(-1.0, 0.0);
                            for i in 0..n {
                                let il = i * lanes + lane;
                                sample_buf[i] = c0v[il]
                                    + sv * (c1v[il]
                                        + (sv - c2m1) * (c2v[il] + (sv - c1m1) * c3v[il]));
                            }
                            c.sol.times.push(ts);
                            c.sol.states.push(sample_buf.clone());
                            c.next_sample += 1;
                            c.steps_since_sample = 0;
                        }
                    }

                    // Advance the state (stiffly accurate: y_new = y + z3).
                    {
                        let z3v = z3.as_slice();
                        let yv = y.as_mut_slice();
                        for i in 0..n {
                            let il = i * lanes + lane;
                            yv[il] += z3v[il];
                        }
                    }
                    let finite = (0..n).all(|i| y.as_slice()[i * lanes + lane].is_finite());
                    if !finite {
                        park = Some(Park::Fail(SolverError::NonFiniteState { t: t_new }));
                    } else {
                        t[lane] = t_new;
                        if c.next_sample == sample_times.len() {
                            park = Some(Park::Done);
                        } else {
                            // f0 refresh is deferred to one lane-wide sweep
                            // below; the reuse policy is pure control state.
                            refresh_mask[lane] = true;
                            c.need_jacobian = c.theta > THET;
                            let quot_ratio = h_new / h[lane];
                            if !c.need_jacobian && (QUOT1..=QUOT2).contains(&quot_ratio) {
                                h_new = h[lane]; // keep the factorization
                            } else {
                                c.need_factor = true;
                            }
                            if h_new > options.max_step {
                                c.need_factor = true;
                            }
                            h[lane] = h_new;
                            c.first = false;
                            c.last_rejected = false;
                        }
                    }
                } else {
                    // Reject.
                    c.sol.stats.rejected += 1;
                    c.last_rejected = true;
                    h[lane] = if c.first { 0.1 * h[lane] } else { h_new };
                    c.need_factor = true;
                    if c.theta > THET {
                        c.need_jacobian = true;
                    }
                }
            }
            if let Some(p) = park {
                let c = ctl[lane].take().expect("parked lane was live");
                results[c.member] = Some(match p {
                    Park::Done => Ok(c.sol),
                    Park::Fail(error) => Err(SolveFailure { error, stats: c.sol.stats }),
                });
                h[lane] = 0.0;
            }
        }

        // --- Deferred f0 refresh for accepted, still-running lanes: one
        // lane-wide sweep at the new (t, y), then per-lane error scale. ---
        if refresh_mask.iter().any(|&m| m) {
            system.rhs_batch(t, y, probe_f);
            for lane in 0..lanes {
                if !refresh_mask[lane] {
                    continue;
                }
                f0.copy_lane_from(probe_f, lane);
                let c = ctl[lane].as_mut().expect("refreshed lane is live");
                c.sol.stats.rhs_evals += 1;
                let (yv, sc) = (y.as_slice(), scale.as_mut_slice());
                for i in 0..n {
                    let il = i * lanes + lane;
                    sc[il] = options.abs_tol + options.rel_tol * yv[il].abs();
                }
            }
        }
    }

    let out = results
        .into_iter()
        .enumerate()
        .map(|(m, r)| r.unwrap_or_else(|| panic!("member {m} never scheduled")))
        .collect();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OdeSolver, OdeSystem, Radau5};
    use paraspace_linalg::Matrix;

    /// A family of van der Pol oscillators: member `m` has its own
    /// stiffness parameter `μ_m`, so lanes genuinely diverge in step size,
    /// Newton iteration count, and Jacobian-refresh cadence.
    ///
    ///   dy0/dt = y1
    ///   dy1/dt = μ·((1 − y0²)·y1) − y0
    struct VdpFamily {
        mus: Vec<f64>,
        y0s: Vec<[f64; 2]>,
        bound: Vec<f64>,
    }

    impl VdpFamily {
        fn new(mus: Vec<f64>, lanes: usize) -> Self {
            let y0s = mus.iter().enumerate().map(|(i, _)| [2.0 + i as f64 * 0.0625, 0.0]).collect();
            VdpFamily { mus, y0s, bound: vec![0.0; lanes] }
        }

        /// The scalar twin of member `m`, with identical arithmetic and an
        /// analytic Jacobian (as the batch kernel requires).
        fn scalar(&self, m: usize) -> (VdpScalar, [f64; 2]) {
            (VdpScalar { mu: self.mus[m] }, self.y0s[m])
        }
    }

    struct VdpScalar {
        mu: f64,
    }

    impl OdeSystem for VdpScalar {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = y[1];
            d[1] = self.mu * ((1.0 - y[0] * y[0]) * y[1]) - y[0];
        }
        fn jacobian(&self, _t: f64, y: &[f64], jac: &mut Matrix) {
            jac[(0, 0)] = 0.0;
            jac[(0, 1)] = 1.0;
            jac[(1, 0)] = self.mu * (-2.0 * y[0] * y[1]) - 1.0;
            jac[(1, 1)] = self.mu * (1.0 - y[0] * y[0]);
        }
        fn has_analytic_jacobian(&self) -> bool {
            true
        }
    }

    impl BatchOdeSystem for VdpFamily {
        fn dim(&self) -> usize {
            2
        }
        fn lanes(&self) -> usize {
            self.bound.len()
        }
        fn members(&self) -> usize {
            self.mus.len()
        }
        fn initial_state(&self, member: usize, y0: &mut [f64]) {
            y0.copy_from_slice(&self.y0s[member]);
        }
        fn bind_lane(&mut self, lane: usize, member: usize) {
            self.bound[lane] = self.mus[member];
        }
        fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
            let lanes = self.bound.len();
            let (yv, dv) = (y.as_slice(), dydt.as_mut_slice());
            for l in 0..lanes {
                let mu = self.bound[l];
                dv[l] = yv[lanes + l];
                dv[lanes + l] = mu * ((1.0 - yv[l] * yv[l]) * yv[lanes + l]) - yv[l];
            }
        }
        fn supports_jacobian_batch(&self) -> bool {
            true
        }
        fn jacobian_batch(&mut self, _t: &[f64], y: &BatchState, jac: &mut [f64]) {
            let lanes = self.bound.len();
            let yv = y.as_slice();
            for l in 0..lanes {
                let mu = self.bound[l];
                jac[l] = 0.0;
                jac[lanes + l] = 1.0;
                jac[2 * lanes + l] = mu * (-2.0 * yv[l] * yv[lanes + l]) - 1.0;
                jac[3 * lanes + l] = mu * (1.0 - yv[l] * yv[l]);
            }
        }
    }

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    fn sample_grid() -> Vec<f64> {
        vec![0.25, 0.5, 1.0, 2.0]
    }

    /// Stiffness spread: mildly to severely stiff members in one group.
    fn mu_spread(count: usize) -> Vec<f64> {
        (0..count).map(|i| 5.0 + 23.0 * i as f64).collect()
    }

    #[test]
    fn lockstep_is_bitwise_identical_to_scalar_at_any_width() {
        let mus = mu_spread(10);
        let times = sample_grid();
        let proto = VdpFamily::new(mus.clone(), 1);
        let reference: Vec<Solution> = (0..mus.len())
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Radau5::new().solve(&sys, 0.0, &y0, &times, &opts()).unwrap()
            })
            .collect();
        // The reference solves must themselves exercise the reuse policy,
        // or this test would not cover the masked refresh machinery.
        assert!(reference.iter().any(|s| s.stats.jacobian_evals < s.stats.steps));
        assert!(reference
            .iter()
            .any(|s| s.stats.lu_decompositions < 2 * (s.stats.accepted + s.stats.rejected)));
        for width in [1, 2, 4, 8] {
            let mut family = VdpFamily::new(mus.clone(), width);
            let (results, report) = Radau5Batch::new().solve_group(
                &mut family,
                0.0,
                &times,
                &opts(),
                &mut SolverScratch::new(),
            );
            assert_eq!(report.width, width);
            for (m, r) in results.iter().enumerate() {
                let sol = r.as_ref().expect("member must succeed");
                assert_eq!(sol.times, reference[m].times, "width={width} member={m}");
                assert_eq!(sol.states, reference[m].states, "width={width} member={m}");
                assert_eq!(sol.stats, reference[m].stats, "width={width} member={m}");
            }
        }
    }

    #[test]
    fn lane_compaction_keeps_group_busy() {
        // 13 members through 4 lanes: compaction must schedule all of them.
        let mut family = VdpFamily::new(mu_spread(13), 4);
        let times = sample_grid();
        let (results, report) = Radau5Batch::new().solve_group(
            &mut family,
            0.0,
            &times,
            &opts(),
            &mut SolverScratch::new(),
        );
        assert!(results.iter().all(|r| r.is_ok()));
        assert!(report.lockstep_iters > 0);
        assert!(report.lane_steps <= report.width as u64 * report.lockstep_iters);
        assert!(report.occupancy() > 0.0 && report.occupancy() <= 1.0);
        // Refill sweeps happened (initial fill plus at least one refill
        // round), each costing 2 sweeps under automatic hinit.
        assert!(report.refill_sweeps >= 4);
    }

    #[test]
    fn failing_member_parks_without_poisoning_the_group() {
        // A brutal step budget makes the stiffer members fail while the
        // mildest finishes; outcomes must match the scalar path member for
        // member, stats included.
        let mus = vec![1.0, 400.0, 900.0, 2.0];
        let o = SolverOptions { step_budget: Some(45), ..opts() };
        let times = sample_grid();
        let proto = VdpFamily::new(mus.clone(), 1);
        let reference: Vec<Result<Solution, SolveFailure>> = (0..mus.len())
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Radau5::new().solve(&sys, 0.0, &y0, &times, &o)
            })
            .collect();
        assert!(reference.iter().any(|r| r.is_err()), "budget must bite some member");
        assert!(reference.iter().any(|r| r.is_ok()), "some member must finish");
        let mut family = VdpFamily::new(mus.clone(), 2);
        let (results, _) =
            Radau5Batch::new().solve_group(&mut family, 0.0, &times, &o, &mut SolverScratch::new());
        for (m, (got, want)) in results.iter().zip(reference.iter()).enumerate() {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.states, w.states, "member={m}");
                    assert_eq!(g.stats, w.stats, "member={m}");
                }
                (Err(g), Err(w)) => {
                    assert_eq!(
                        std::mem::discriminant(&g.error),
                        std::mem::discriminant(&w.error),
                        "member={m}: {:?} vs {:?}",
                        g.error,
                        w.error
                    );
                    assert_eq!(g.stats, w.stats, "member={m}");
                }
                _ => panic!("member {m}: outcome kind differs from scalar"),
            }
        }
    }

    #[test]
    fn empty_sample_times_yield_empty_solutions() {
        let mut family = VdpFamily::new(vec![5.0, 10.0, 20.0], 2);
        let (results, report) = Radau5Batch::new().solve_group(
            &mut family,
            0.0,
            &[],
            &opts(),
            &mut SolverScratch::new(),
        );
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.as_ref().is_ok_and(|s| s.is_empty())));
        assert_eq!(report.lockstep_iters, 0);
    }

    #[test]
    fn samples_at_t0_deliver_initial_state() {
        let mut family = VdpFamily::new(vec![5.0, 10.0], 2);
        let (results, _) = Radau5Batch::new().solve_group(
            &mut family,
            0.0,
            &[0.0, 0.5],
            &opts(),
            &mut SolverScratch::new(),
        );
        for (m, r) in results.iter().enumerate() {
            let sol = r.as_ref().unwrap();
            assert_eq!(sol.state_at(0)[0], 2.0 + m as f64 * 0.0625);
        }
    }

    #[test]
    fn invalid_member_fails_alone() {
        let mut family = VdpFamily::new(vec![5.0, 10.0, 20.0], 2);
        family.y0s[1] = [f64::NAN, 0.0];
        let times = sample_grid();
        let (results, _) = Radau5Batch::new().solve_group(
            &mut family,
            0.0,
            &times,
            &opts(),
            &mut SolverScratch::new(),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1].as_ref().unwrap_err().error, SolverError::InvalidInput { .. }));
        assert!(results[2].is_ok());
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        // Two back-to-back groups through the same scratch must match two
        // fresh-scratch runs exactly — including the reused BatchLu storage.
        let times = sample_grid();
        let mut scratch = SolverScratch::new();
        let run = |scratch: &mut SolverScratch, mus: Vec<f64>| {
            let mut family = VdpFamily::new(mus, 4);
            Radau5Batch::new().solve_group(&mut family, 0.0, &times, &opts(), scratch).0
        };
        let a1 = run(&mut scratch, mu_spread(5));
        let a2 = run(&mut scratch, vec![3.0, 70.0]);
        let b1 = run(&mut SolverScratch::new(), mu_spread(5));
        let b2 = run(&mut SolverScratch::new(), vec![3.0, 70.0]);
        let unwrap_all = |v: Vec<Result<Solution, SolveFailure>>| -> Vec<Solution> {
            v.into_iter().map(|r| r.unwrap()).collect()
        };
        assert_eq!(unwrap_all(a1), unwrap_all(b1));
        assert_eq!(unwrap_all(a2), unwrap_all(b2));
    }

    #[test]
    fn fixed_initial_step_is_honored() {
        let o = SolverOptions { initial_step: Some(1e-3), ..opts() };
        let times = sample_grid();
        let proto = VdpFamily::new(vec![5.0, 40.0], 1);
        let reference: Vec<Solution> = (0..2)
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Radau5::new().solve(&sys, 0.0, &y0, &times, &o).unwrap()
            })
            .collect();
        let mut family = VdpFamily::new(vec![5.0, 40.0], 2);
        let (results, report) =
            Radau5Batch::new().solve_group(&mut family, 0.0, &times, &o, &mut SolverScratch::new());
        for (m, r) in results.iter().enumerate() {
            let sol = r.as_ref().unwrap();
            assert_eq!(sol.states, reference[m].states, "member={m}");
            assert_eq!(sol.stats, reference[m].stats, "member={m}");
        }
        // Fixed h0 skips the hinit probe: exactly one sweep per fill round.
        assert_eq!(report.refill_sweeps, 1);
    }

    #[test]
    fn systems_without_jacobian_batch_are_rejected() {
        struct NoJac;
        impl BatchOdeSystem for NoJac {
            fn dim(&self) -> usize {
                1
            }
            fn lanes(&self) -> usize {
                1
            }
            fn members(&self) -> usize {
                1
            }
            fn initial_state(&self, _member: usize, y0: &mut [f64]) {
                y0[0] = 1.0;
            }
            fn bind_lane(&mut self, _lane: usize, _member: usize) {}
            fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
                dydt.set(0, 0, -y.at(0, 0));
            }
        }
        let result = std::panic::catch_unwind(|| {
            Radau5Batch::new().solve_group(
                &mut NoJac,
                0.0,
                &[1.0],
                &opts(),
                &mut SolverScratch::new(),
            )
        });
        assert!(result.is_err(), "missing jacobian_batch must be rejected loudly");
    }

    const CHAIN_N: usize = 28;
    const CHAIN_BLOCK: usize = 4;

    /// Seven independent 4-species decay chains:
    ///
    ///   dy_s/dt = −c_s·k·y_s + c_{s−1}·k·y_{s−1}   (within each block)
    ///
    /// with per-species coefficients `c_s = n − s` (decreasing, so the
    /// subdiagonal entry of the iteration matrix can win partial pivoting
    /// at large `h` and the sparse/dense pivot agreement is actually
    /// exercised). The block structure matters: the symbolic analysis
    /// closes fill over *every* pivot sequence, and on one unbroken chain a
    /// row that keeps losing the pivot race cascades fill across the whole
    /// matrix — the closed pattern goes dense and `prefers_sparse`
    /// (correctly) declines. Independent 4×4 blocks confine the cascade, so
    /// the closure tops out at 13 entries per block (91 of 784 total) and
    /// the sparse kernels are actually selected. Member `m` scales the
    /// rate `k`.
    struct ChainFamily {
        ks: Vec<f64>,
        bound: Vec<f64>,
        /// When false, `jacobian_sparsity` returns `None`, forcing the
        /// dense factorization path for the comparison run.
        sparse: bool,
    }

    impl ChainFamily {
        fn new(ks: Vec<f64>, lanes: usize, sparse: bool) -> Self {
            ChainFamily { ks, bound: vec![0.0; lanes], sparse }
        }

        fn y0() -> Vec<f64> {
            let mut y0 = vec![0.0; CHAIN_N];
            y0[0] = 1.0;
            y0[1] = 0.5;
            y0
        }
    }

    struct ChainScalar {
        k: f64,
    }

    impl OdeSystem for ChainScalar {
        fn dim(&self) -> usize {
            CHAIN_N
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            for s in 0..CHAIN_N {
                let c = (CHAIN_N - s) as f64;
                d[s] = -c * self.k * y[s];
                if s % CHAIN_BLOCK != 0 {
                    let cp = (CHAIN_N - (s - 1)) as f64;
                    d[s] += cp * self.k * y[s - 1];
                }
            }
        }
        fn jacobian(&self, _t: f64, _y: &[f64], jac: &mut Matrix) {
            for i in 0..CHAIN_N {
                for j in 0..CHAIN_N {
                    jac[(i, j)] = 0.0;
                }
            }
            for s in 0..CHAIN_N {
                let c = (CHAIN_N - s) as f64;
                jac[(s, s)] = -c * self.k;
                if s % CHAIN_BLOCK != 0 {
                    let cp = (CHAIN_N - (s - 1)) as f64;
                    jac[(s, s - 1)] = cp * self.k;
                }
            }
        }
        fn has_analytic_jacobian(&self) -> bool {
            true
        }
    }

    impl BatchOdeSystem for ChainFamily {
        fn dim(&self) -> usize {
            CHAIN_N
        }
        fn lanes(&self) -> usize {
            self.bound.len()
        }
        fn members(&self) -> usize {
            self.ks.len()
        }
        fn initial_state(&self, _member: usize, y0: &mut [f64]) {
            y0.copy_from_slice(&ChainFamily::y0());
        }
        fn bind_lane(&mut self, lane: usize, member: usize) {
            self.bound[lane] = self.ks[member];
        }
        fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
            let lanes = self.bound.len();
            let (yv, dv) = (y.as_slice(), dydt.as_mut_slice());
            for s in 0..CHAIN_N {
                let c = (CHAIN_N - s) as f64;
                for l in 0..lanes {
                    let k = self.bound[l];
                    dv[s * lanes + l] = -c * k * yv[s * lanes + l];
                    if s % CHAIN_BLOCK != 0 {
                        let cp = (CHAIN_N - (s - 1)) as f64;
                        dv[s * lanes + l] += cp * k * yv[(s - 1) * lanes + l];
                    }
                }
            }
        }
        fn supports_jacobian_batch(&self) -> bool {
            true
        }
        fn jacobian_batch(&mut self, _t: &[f64], _y: &BatchState, jac: &mut [f64]) {
            let lanes = self.bound.len();
            jac.fill(0.0);
            for s in 0..CHAIN_N {
                let c = (CHAIN_N - s) as f64;
                for l in 0..lanes {
                    let k = self.bound[l];
                    jac[(s * CHAIN_N + s) * lanes + l] = -c * k;
                    if s % CHAIN_BLOCK != 0 {
                        let cp = (CHAIN_N - (s - 1)) as f64;
                        jac[(s * CHAIN_N + (s - 1)) * lanes + l] = cp * k;
                    }
                }
            }
        }
        fn jacobian_sparsity(&self) -> Option<paraspace_linalg::SparsityPattern> {
            if !self.sparse {
                return None;
            }
            let entries = (0..CHAIN_N)
                .map(|s| (s, s))
                .chain((1..CHAIN_N).filter(|s| s % CHAIN_BLOCK != 0).map(|s| (s, s - 1)));
            Some(paraspace_linalg::SparsityPattern::from_entries(CHAIN_N, entries))
        }
    }

    #[test]
    fn sparse_factorization_path_is_bitwise_identical_to_dense_and_scalar() {
        let ks = vec![0.5, 2.0, 8.0, 32.0, 128.0];
        let times = sample_grid();
        // Sanity: the published pattern must actually select the sparse path.
        let pattern = ChainFamily::new(ks.clone(), 1, true).jacobian_sparsity().unwrap();
        let sym = paraspace_linalg::SymbolicLu::analyze(&pattern);
        assert!(sym.prefers_sparse(), "chain pattern must choose the sparse kernels");
        let y0 = ChainFamily::y0();
        let reference: Vec<Solution> = ks
            .iter()
            .map(|&k| Radau5::new().solve(&ChainScalar { k }, 0.0, &y0, &times, &opts()).unwrap())
            .collect();
        for width in [2, 4, 8] {
            for sparse in [false, true] {
                let mut family = ChainFamily::new(ks.clone(), width, sparse);
                let (results, report) = Radau5Batch::new().solve_group(
                    &mut family,
                    0.0,
                    &times,
                    &opts(),
                    &mut SolverScratch::new(),
                );
                assert_eq!(report.width, width);
                for (m, r) in results.iter().enumerate() {
                    let sol = r.as_ref().expect("member must succeed");
                    assert_eq!(sol.times, reference[m].times, "sparse={sparse} w={width} m={m}");
                    assert_eq!(sol.states, reference[m].states, "sparse={sparse} w={width} m={m}");
                    assert_eq!(sol.stats, reference[m].stats, "sparse={sparse} w={width} m={m}");
                }
            }
        }
    }

    #[test]
    fn sparse_scratch_reuse_across_modes_is_bitwise_stable() {
        // One scratch alternating dense-mode and sparse-mode groups must
        // match fresh-scratch runs exactly: the mode decision re-sizes
        // whichever factor family the group uses.
        let times = sample_grid();
        let ks = vec![1.0, 50.0];
        let run = |scratch: &mut SolverScratch, sparse: bool| {
            let mut family = ChainFamily::new(ks.clone(), 2, sparse);
            Radau5Batch::new().solve_group(&mut family, 0.0, &times, &opts(), scratch).0
        };
        let mut scratch = SolverScratch::new();
        let a_dense = run(&mut scratch, false);
        let a_sparse = run(&mut scratch, true);
        let a_dense2 = run(&mut scratch, false);
        let b_dense = run(&mut SolverScratch::new(), false);
        let b_sparse = run(&mut SolverScratch::new(), true);
        let unwrap_all = |v: Vec<Result<Solution, SolveFailure>>| -> Vec<Solution> {
            v.into_iter().map(|r| r.unwrap()).collect()
        };
        let (a_dense, a_sparse, a_dense2) =
            (unwrap_all(a_dense), unwrap_all(a_sparse), unwrap_all(a_dense2));
        assert_eq!(a_dense, unwrap_all(b_dense));
        assert_eq!(a_sparse, unwrap_all(b_sparse));
        assert_eq!(a_dense, a_dense2);
        // And both modes agree with each other (bitwise, stats included).
        assert_eq!(a_dense, a_sparse);
    }
}
