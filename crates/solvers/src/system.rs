//! The ODE-system abstraction all solvers consume, and the object-safe
//! solver interface the simulation engines dispatch over.

use crate::{Solution, SolveFailure, SolverError, SolverOptions, SolverScratch};
use paraspace_linalg::{finite_difference_jacobian_into, Matrix};

/// A first-order ODE system `dy/dt = f(t, y)` of fixed dimension.
///
/// Implementors must provide the right-hand side; the Jacobian defaults to
/// forward finite differences but should be overridden when an analytic form
/// exists (mass-action networks always have one).
///
/// # Example
///
/// ```
/// use paraspace_solvers::OdeSystem;
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, y: &[f64], dydt: &mut [f64]) { dydt[0] = -y[0]; }
/// }
/// let mut d = [0.0];
/// Decay.rhs(0.0, &[3.0], &mut d);
/// assert_eq!(d[0], -3.0);
/// ```
pub trait OdeSystem {
    /// The system dimension `n`.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dydt` (length `n`).
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);

    /// Writes the Jacobian `∂f/∂y` into `jac` (`n × n`).
    ///
    /// The default uses forward finite differences (n extra RHS
    /// evaluations).
    fn jacobian(&self, t: f64, y: &[f64], jac: &mut Matrix) {
        finite_difference_jacobian_into(|tt, yy, dd| self.rhs(tt, yy, dd), t, y, jac);
    }

    /// Whether [`jacobian`](OdeSystem::jacobian) is analytic (used by cost
    /// accounting; finite differences charge `n` RHS evaluations).
    fn has_analytic_jacobian(&self) -> bool {
        false
    }
}

/// Blanket impl so `&S` works wherever `S: OdeSystem` does.
impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (**self).rhs(t, y, dydt)
    }
    fn jacobian(&self, t: f64, y: &[f64], jac: &mut Matrix) {
        (**self).jacobian(t, y, jac)
    }
    fn has_analytic_jacobian(&self) -> bool {
        (**self).has_analytic_jacobian()
    }
}

/// Adapts a closure into an [`OdeSystem`].
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSystem};
///
/// let harmonic = FnSystem::new(2, |_t, y, d| { d[0] = y[1]; d[1] = -y[0]; });
/// assert_eq!(harmonic.dim(), 2);
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps `f(t, y, dydt)` as a system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.f)(t, y, dydt)
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

/// The object-safe interface every solver in this crate implements: sample
/// the solution of `system` from `(t0, y0)` at the (strictly increasing)
/// `sample_times`.
///
/// Solvers integrate with internally chosen steps and evaluate their dense
/// output at each requested time, so output resolution never constrains the
/// step-size controller.
///
/// Solvers are `Send + Sync`: they carry only configuration (method order,
/// tolerance defaults), never integration state, so one solver
/// value can be shared by every worker of a host-parallel batch. Per-run
/// state lives on the stack or in a [`SolverScratch`].
pub trait OdeSolver: Send + Sync {
    /// Solver name for reports and comparison maps (e.g. `"dopri5"`).
    fn name(&self) -> &'static str;

    /// Integrates and samples.
    ///
    /// # Errors
    ///
    /// A [`SolveFailure`] carrying the [`SolverError`] (step-count
    /// exhaustion, step-size underflow, Newton failure, singular iteration
    /// matrix, stiffness diagnosis, or non-finite state) together with the
    /// work counters accumulated before the failure.
    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure>;

    /// Like [`solve`](OdeSolver::solve), but drawing working storage from a
    /// caller-owned [`SolverScratch`] pool instead of allocating it.
    ///
    /// Results are bitwise identical to `solve`. Solvers with pooled
    /// workspaces (DOPRI5, RADAU5, the multistep family) override this; the
    /// default simply delegates to `solve`, so pooling is always safe to
    /// request.
    ///
    /// # Errors
    ///
    /// Identical to [`solve`](OdeSolver::solve).
    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        let _ = scratch;
        self.solve(system, t0, y0, sample_times, options)
    }
}

/// Validates common `solve` preconditions shared by all solvers.
pub(crate) fn check_inputs(
    dim: usize,
    y0: &[f64],
    t0: f64,
    sample_times: &[f64],
    options: &SolverOptions,
) -> Result<(), SolverError> {
    if y0.len() != dim {
        return Err(SolverError::InvalidInput {
            message: format!("initial state has length {}, system dimension is {dim}", y0.len()),
        });
    }
    if !y0.iter().all(|v| v.is_finite()) || !t0.is_finite() {
        return Err(SolverError::InvalidInput {
            message: "initial condition must be finite".into(),
        });
    }
    if options.rel_tol <= 0.0 || options.abs_tol <= 0.0 {
        return Err(SolverError::InvalidInput { message: "tolerances must be positive".into() });
    }
    let mut prev = t0;
    for &t in sample_times {
        if t < prev {
            return Err(SolverError::InvalidInput {
                message: format!(
                    "sample times must be non-decreasing and ≥ t0 (saw {t} after {prev})"
                ),
            });
        }
        prev = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jacobian_is_finite_difference() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[0] * y[1];
            d[1] = -y[1];
        });
        let mut jac = Matrix::zeros(2, 2);
        sys.jacobian(0.0, &[2.0, 3.0], &mut jac);
        assert!((jac[(0, 0)] - 3.0).abs() < 1e-5);
        assert!((jac[(0, 1)] - 2.0).abs() < 1e-5);
        assert!((jac[(1, 1)] + 1.0).abs() < 1e-5);
        assert!(!sys.has_analytic_jacobian());
    }

    #[test]
    fn reference_blanket_impl_works() {
        fn dim_of<S: OdeSystem>(s: S) -> usize {
            s.dim()
        }
        let sys = FnSystem::new(3, |_t, _y, d| d.fill(0.0));
        assert_eq!(dim_of(&sys), 3);
        let by_ref: &FnSystem<_> = &sys;
        assert_eq!(dim_of(by_ref), 3, "the &S blanket impl must apply");
    }

    #[test]
    fn input_validation_catches_misuse() {
        let opts = SolverOptions::default();
        assert!(check_inputs(2, &[1.0], 0.0, &[1.0], &opts).is_err());
        assert!(check_inputs(1, &[f64::NAN], 0.0, &[1.0], &opts).is_err());
        assert!(check_inputs(1, &[1.0], 0.0, &[2.0, 1.0], &opts).is_err());
        assert!(check_inputs(1, &[1.0], 5.0, &[4.0], &opts).is_err());
        assert!(check_inputs(1, &[1.0], 0.0, &[0.5, 1.5], &opts).is_ok());
        let bad = SolverOptions { rel_tol: -1.0, ..SolverOptions::default() };
        assert!(check_inputs(1, &[1.0], 0.0, &[1.0], &bad).is_err());
    }
}
