//! Solver error type.

use crate::StepStats;
use std::error::Error;
use std::fmt;

/// Failures an adaptive solver can report.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{Dopri5, FnSystem, OdeSolver, SolverError, SolverOptions};
///
/// // Finite-time blow-up: dy/dt = y², y(0)=1 explodes at t=1.
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0]);
/// let err = Dopri5::new()
///     .solve(&sys, 0.0, &[1.0], &[2.0], &SolverOptions::default())
///     .unwrap_err();
/// assert!(matches!(
///     err.error,
///     SolverError::MaxStepsExceeded { .. } | SolverError::StepSizeUnderflow { .. }
/// ));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// The step budget was exhausted before reaching the next sample time.
    MaxStepsExceeded {
        /// Time reached when the budget ran out.
        t: f64,
        /// The step budget.
        max_steps: usize,
    },
    /// The controller drove the step below the representable minimum.
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        t: f64,
    },
    /// Newton (or functional) iteration failed repeatedly.
    NonlinearSolveFailed {
        /// Time of the failing step.
        t: f64,
        /// Consecutive failures observed.
        failures: usize,
    },
    /// The Newton iteration matrix was singular even after step reduction.
    SingularIterationMatrix {
        /// Time of the failing factorization.
        t: f64,
    },
    /// The state became NaN or infinite.
    NonFiniteState {
        /// Time at which the state left the finite range.
        t: f64,
    },
    /// An explicit solver's stiffness detector fired repeatedly; the problem
    /// should be handed to an implicit method (the engine re-routes these
    /// simulations to Radau IIA).
    StiffnessDetected {
        /// Time at which stiffness was diagnosed.
        t: f64,
    },
    /// The per-member total-step budget
    /// ([`SolverOptions::step_budget`](crate::SolverOptions::step_budget))
    /// was exhausted before the integration finished. Unlike
    /// [`MaxStepsExceeded`](SolverError::MaxStepsExceeded) (a per-interval
    /// cap that a stiffness reroute may cure), a spent budget is final: the
    /// recovery ladder never retries it with the same budget, so no single
    /// member can stall a batch.
    StepBudgetExhausted {
        /// Time reached when the budget ran out.
        t: f64,
        /// The total-step budget that was exhausted.
        budget: usize,
    },
    /// Caller-provided inputs were malformed.
    InvalidInput {
        /// Description of the problem.
        message: String,
    },
    /// An internal fault — typically a panic contained by the batch
    /// executor — surfaced as a per-member outcome instead of aborting the
    /// run.
    Internal {
        /// The contained panic payload or fault description.
        message: String,
    },
}

impl SolverError {
    /// The integration time associated with the failure, if meaningful.
    pub fn time(&self) -> Option<f64> {
        match *self {
            SolverError::MaxStepsExceeded { t, .. }
            | SolverError::StepSizeUnderflow { t }
            | SolverError::NonlinearSolveFailed { t, .. }
            | SolverError::SingularIterationMatrix { t }
            | SolverError::NonFiniteState { t }
            | SolverError::StiffnessDetected { t }
            | SolverError::StepBudgetExhausted { t, .. } => Some(t),
            SolverError::InvalidInput { .. } | SolverError::Internal { .. } => None,
        }
    }
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::MaxStepsExceeded { t, max_steps } => {
                write!(f, "exceeded {max_steps} steps at t = {t}")
            }
            SolverError::StepSizeUnderflow { t } => write!(f, "step size underflow at t = {t}"),
            SolverError::NonlinearSolveFailed { t, failures } => {
                write!(f, "nonlinear iteration failed {failures} times at t = {t}")
            }
            SolverError::SingularIterationMatrix { t } => {
                write!(f, "singular iteration matrix at t = {t}")
            }
            SolverError::NonFiniteState { t } => write!(f, "state became non-finite at t = {t}"),
            SolverError::StiffnessDetected { t } => {
                write!(f, "problem diagnosed as stiff at t = {t}; use an implicit solver")
            }
            SolverError::StepBudgetExhausted { t, budget } => {
                write!(f, "member step budget of {budget} exhausted at t = {t}")
            }
            SolverError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            SolverError::Internal { message } => write!(f, "internal fault: {message}"),
        }
    }
}

impl Error for SolverError {}

/// A solver failure together with the work performed *before* failing.
///
/// The batch engines bill failed integrations for the steps they actually
/// consumed (a DOPRI5 run that diagnoses stiffness after a thousand steps
/// costs a thousand steps, not the whole step budget), so failures carry
/// their partial counters.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{Dopri5, FnSystem, OdeSolver, SolverError, SolverOptions};
///
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e6 * (y[0] - 1.0));
/// let opts = SolverOptions { stiffness_check_interval: 1, ..SolverOptions::default() };
/// let failure = Dopri5::new().solve(&sys, 0.0, &[0.0], &[10.0], &opts).unwrap_err();
/// assert!(matches!(
///     failure.error,
///     SolverError::StiffnessDetected { .. } | SolverError::MaxStepsExceeded { .. }
/// ));
/// assert!(failure.stats.steps > 0, "partial work is reported");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolveFailure {
    /// What went wrong.
    pub error: SolverError,
    /// Work counters accumulated up to the failure.
    pub stats: StepStats,
}

impl fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (after {} steps)", self.error, self.stats.steps)
    }
}

impl Error for SolveFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

impl From<SolverError> for SolveFailure {
    fn from(error: SolverError) -> Self {
        SolveFailure { error, stats: StepStats::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accessor_reports_failure_location() {
        assert_eq!(SolverError::StepSizeUnderflow { t: 2.5 }.time(), Some(2.5));
        assert_eq!(SolverError::InvalidInput { message: "x".into() }.time(), None);
    }

    #[test]
    fn messages_mention_time() {
        let e = SolverError::NonFiniteState { t: 1.25 };
        assert!(e.to_string().contains("1.25"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<SolverError>();
    }
}
