//! The Dormand–Prince 5(4) explicit Runge–Kutta method (DOPRI5).
//!
//! Implements the classical Hairer–Nørsett–Wanner design: the 7-stage FSAL
//! tableau, embedded 4th-order error estimate, PI step-size controller
//! (β = 0.04), 4th-order dense output, and the two-stage stiffness detector
//! (`h·λ > 3.25` observed 15 times ⇒ stiff). This is the engine's non-stiff
//! workhorse; stiff simulations are re-routed to [`crate::Radau5`].

use crate::system::check_inputs;
use crate::{
    initial_step_size, OdeSolver, OdeSystem, Solution, SolveFailure, SolverError, SolverOptions,
    SolverScratch,
};
use paraspace_linalg::weighted_rms_norm;

// Nodes.
pub(crate) const C2: f64 = 1.0 / 5.0;
pub(crate) const C3: f64 = 3.0 / 10.0;
pub(crate) const C4: f64 = 4.0 / 5.0;
pub(crate) const C5: f64 = 8.0 / 9.0;

// Runge–Kutta matrix.
pub(crate) const A21: f64 = 1.0 / 5.0;
pub(crate) const A31: f64 = 3.0 / 40.0;
pub(crate) const A32: f64 = 9.0 / 40.0;
pub(crate) const A41: f64 = 44.0 / 45.0;
pub(crate) const A42: f64 = -56.0 / 15.0;
pub(crate) const A43: f64 = 32.0 / 9.0;
pub(crate) const A51: f64 = 19372.0 / 6561.0;
pub(crate) const A52: f64 = -25360.0 / 2187.0;
pub(crate) const A53: f64 = 64448.0 / 6561.0;
pub(crate) const A54: f64 = -212.0 / 729.0;
pub(crate) const A61: f64 = 9017.0 / 3168.0;
pub(crate) const A62: f64 = -355.0 / 33.0;
pub(crate) const A63: f64 = 46732.0 / 5247.0;
pub(crate) const A64: f64 = 49.0 / 176.0;
pub(crate) const A65: f64 = -5103.0 / 18656.0;
// 5th-order weights (also the 7th stage: FSAL).
pub(crate) const A71: f64 = 35.0 / 384.0;
pub(crate) const A73: f64 = 500.0 / 1113.0;
pub(crate) const A74: f64 = 125.0 / 192.0;
pub(crate) const A75: f64 = -2187.0 / 6784.0;
pub(crate) const A76: f64 = 11.0 / 84.0;

// Error coefficients e = b5 − b4.
pub(crate) const E1: f64 = 71.0 / 57600.0;
pub(crate) const E3: f64 = -71.0 / 16695.0;
pub(crate) const E4: f64 = 71.0 / 1920.0;
pub(crate) const E5: f64 = -17253.0 / 339200.0;
pub(crate) const E6: f64 = 22.0 / 525.0;
pub(crate) const E7: f64 = -1.0 / 40.0;

// Dense-output coefficients.
pub(crate) const D1: f64 = -12715105075.0 / 11282082432.0;
pub(crate) const D3: f64 = 87487479700.0 / 32700410799.0;
pub(crate) const D4: f64 = -10690763975.0 / 1880347072.0;
pub(crate) const D5: f64 = 701980252875.0 / 199316789632.0;
pub(crate) const D6: f64 = -1453857185.0 / 822651844.0;
pub(crate) const D7: f64 = 69997945.0 / 29380423.0;

// Controller constants (dopri5.f defaults).
pub(crate) const SAFETY: f64 = 0.9;
pub(crate) const BETA: f64 = 0.04;
pub(crate) const EXPO1: f64 = 0.2 - BETA * 0.75;
pub(crate) const FAC_MIN_INV: f64 = 5.0; // 1/0.2: max shrink factor denominator
pub(crate) const FAC_MAX_INV: f64 = 0.1; // 1/10: max growth factor denominator
pub(crate) const STIFF_THRESHOLD: f64 = 3.25;
pub(crate) const STIFF_STRIKES: usize = 15;
// Consecutive non-finite rejections before the step is declared
// unsalvageable. Each rejection shrinks h by 10×; a state that is still
// non-finite after this many shrinks is NaN/Inf independent of h, which
// step reduction can never fix — fail fast as `NonFiniteState` instead of
// grinding h down to the underflow threshold.
pub(crate) const NONFINITE_STRIKES: usize = 5;

/// The DOPRI5 solver.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{Dopri5, FnSystem, OdeSolver, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// // Harmonic oscillator: period 2π.
/// let sys = FnSystem::new(2, |_t, y, d| { d[0] = y[1]; d[1] = -y[0]; });
/// let two_pi = std::f64::consts::TAU;
/// let sol = Dopri5::new().solve(&sys, 0.0, &[1.0, 0.0], &[two_pi], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dopri5 {
    _private: (),
}

impl Dopri5 {
    /// Creates the solver.
    pub fn new() -> Self {
        Dopri5 { _private: () }
    }
}

/// Pooled working storage for one DOPRI5 integration: the 7 stage
/// derivative vectors, state/stage/error buffers, and the 5 dense-output
/// coefficient vectors. Reused across solves of the same dimension with no
/// reallocation.
#[derive(Debug, Default)]
pub(crate) struct DopriScratch {
    k: Vec<Vec<f64>>,
    y: Vec<f64>,
    y_stage: Vec<f64>,
    y_new: Vec<f64>,
    y_sti: Vec<f64>,
    err_vec: Vec<f64>,
    scale: Vec<f64>,
    r: Vec<Vec<f64>>,
}

impl DopriScratch {
    /// Sizes every buffer for dimension `n` (stale contents are harmless:
    /// each buffer is fully written before it is read).
    fn ensure(&mut self, n: usize) {
        if self.k.len() != 7 {
            self.k = (0..7).map(|_| vec![0.0; n]).collect();
        }
        if self.r.len() != 5 {
            self.r = (0..5).map(|_| vec![0.0; n]).collect();
        }
        for v in self.k.iter_mut().chain(self.r.iter_mut()) {
            v.resize(n, 0.0);
        }
        for v in [
            &mut self.y,
            &mut self.y_stage,
            &mut self.y_new,
            &mut self.y_sti,
            &mut self.err_vec,
            &mut self.scale,
        ] {
            v.resize(n, 0.0);
        }
    }
}

impl OdeSolver for Dopri5 {
    fn name(&self) -> &'static str {
        "dopri5"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        self.solve_impl(system, t0, y0, sample_times, options, &mut DopriScratch::default())
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        self.solve_impl(system, t0, y0, sample_times, options, &mut scratch.dopri)
    }
}

impl Dopri5 {
    fn solve_impl(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        ws: &mut DopriScratch,
    ) -> Result<Solution, SolveFailure> {
        let n = system.dim();
        check_inputs(n, y0, t0, sample_times, options)?;
        let mut sol = Solution::with_capacity(sample_times.len());
        let t_end = match sample_times.last() {
            Some(&t) => t,
            None => return Ok(sol),
        };

        let mut t = t0;
        ws.ensure(n);
        let DopriScratch { k, y, y_stage, y_new, y_sti, err_vec, scale, r } = ws;
        y.copy_from_slice(y0);

        system.rhs(t, y, &mut k[0]);
        sol.stats.rhs_evals += 1;

        // Deliver any samples at (or numerically at) t0.
        let mut next_sample = 0;
        while next_sample < sample_times.len() && sample_times[next_sample] <= t {
            sol.times.push(sample_times[next_sample]);
            sol.states.push(y.clone());
            next_sample += 1;
        }
        if next_sample == sample_times.len() {
            return Ok(sol);
        }

        let mut h = options
            .initial_step
            .unwrap_or_else(|| initial_step_size(&system, t, y, &k[0], 1.0, 5, options));
        sol.stats.rhs_evals += usize::from(options.initial_step.is_none());
        let mut fac_old = 1e-4f64;
        let mut steps_since_sample = 0usize;
        let mut stiff_strikes = 0usize;
        let mut nonstiff_strikes = 0usize;
        let mut nonfinite_strikes = 0usize;
        let mut last_rejected = false;

        loop {
            if let Some(budget) = options.step_budget {
                if sol.stats.steps >= budget {
                    sol.stats.stiffness_detected |= stiff_strikes > 0;
                    return Err(SolveFailure {
                        error: SolverError::StepBudgetExhausted { t, budget },
                        stats: sol.stats,
                    });
                }
            }
            if steps_since_sample >= options.max_steps {
                sol.stats.stiffness_detected |= stiff_strikes > 0;
                return Err(SolveFailure {
                    error: SolverError::MaxStepsExceeded { t, max_steps: options.max_steps },
                    stats: sol.stats,
                });
            }
            h = h.min(options.max_step).min(t_end - t);
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(SolveFailure {
                    error: SolverError::StepSizeUnderflow { t },
                    stats: sol.stats,
                });
            }

            // Stages 2..6.
            for i in 0..n {
                y_stage[i] = y[i] + h * A21 * k[0][i];
            }
            system.rhs(t + C2 * h, y_stage, &mut k[1]);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A31 * k[0][i] + A32 * k[1][i]);
            }
            system.rhs(t + C3 * h, y_stage, &mut k[2]);
            for i in 0..n {
                y_stage[i] = y[i] + h * (A41 * k[0][i] + A42 * k[1][i] + A43 * k[2][i]);
            }
            system.rhs(t + C4 * h, y_stage, &mut k[3]);
            for i in 0..n {
                y_stage[i] =
                    y[i] + h * (A51 * k[0][i] + A52 * k[1][i] + A53 * k[2][i] + A54 * k[3][i]);
            }
            system.rhs(t + C5 * h, y_stage, &mut k[4]);
            for i in 0..n {
                y_sti[i] = y[i]
                    + h * (A61 * k[0][i]
                        + A62 * k[1][i]
                        + A63 * k[2][i]
                        + A64 * k[3][i]
                        + A65 * k[4][i]);
            }
            system.rhs(t + h, y_sti, &mut k[5]);
            // 5th-order solution (stage 7 argument) and FSAL derivative.
            for i in 0..n {
                y_new[i] = y[i]
                    + h * (A71 * k[0][i]
                        + A73 * k[2][i]
                        + A74 * k[3][i]
                        + A75 * k[4][i]
                        + A76 * k[5][i]);
            }
            system.rhs(t + h, y_new, &mut k[6]);
            sol.stats.rhs_evals += 6;
            sol.stats.steps += 1;
            steps_since_sample += 1;

            // Embedded error estimate.
            for i in 0..n {
                err_vec[i] = h
                    * (E1 * k[0][i]
                        + E3 * k[2][i]
                        + E4 * k[3][i]
                        + E5 * k[4][i]
                        + E6 * k[5][i]
                        + E7 * k[6][i]);
            }
            options.error_scale_pair(y, y_new, scale);
            let err = weighted_rms_norm(err_vec, scale);

            if !err.is_finite() || !y_new.iter().all(|v| v.is_finite()) {
                // Treat as a hard rejection with aggressive shrink.
                sol.stats.rejected += 1;
                h *= 0.1;
                last_rejected = true;
                nonfinite_strikes += 1;
                if nonfinite_strikes >= NONFINITE_STRIKES || h <= f64::MIN_POSITIVE * 1e4 {
                    return Err(SolveFailure {
                        error: SolverError::NonFiniteState { t },
                        stats: sol.stats,
                    });
                }
                continue;
            }
            nonfinite_strikes = 0;

            // PI controller.
            let fac11 = err.powf(EXPO1);
            let fac = (fac11 / fac_old.powf(BETA) / SAFETY).clamp(FAC_MAX_INV, FAC_MIN_INV);
            let mut h_new = h / fac;

            if err <= 1.0 {
                // Accepted.
                fac_old = err.max(1e-4);
                sol.stats.accepted += 1;

                // Stiffness detection (Hairer): compare f at the two
                // distinct t+h arguments.
                if options.stiffness_check_interval > 0
                    && (sol.stats.accepted.is_multiple_of(options.stiffness_check_interval)
                        || stiff_strikes > 0)
                {
                    let mut st_num = 0.0;
                    let mut st_den = 0.0;
                    for i in 0..n {
                        let dk = k[6][i] - k[5][i];
                        let dy = y_new[i] - y_sti[i];
                        st_num += dk * dk;
                        st_den += dy * dy;
                    }
                    if st_den > 0.0 {
                        let h_lambda = h * (st_num / st_den).sqrt();
                        if h_lambda > STIFF_THRESHOLD {
                            nonstiff_strikes = 0;
                            stiff_strikes += 1;
                            if stiff_strikes >= STIFF_STRIKES {
                                sol.stats.stiffness_detected = true;
                                return Err(SolveFailure {
                                    error: SolverError::StiffnessDetected { t },
                                    stats: sol.stats,
                                });
                            }
                        } else {
                            nonstiff_strikes += 1;
                            if nonstiff_strikes >= 6 {
                                stiff_strikes = 0;
                            }
                        }
                    }
                }

                // Serve sample times inside (t, t+h] through dense output.
                let t_new = t + h;
                if next_sample < sample_times.len() && sample_times[next_sample] <= t_new {
                    // Dense-output coefficient vectors (lazy: only when a
                    // sample falls inside this step; pooled in the scratch).
                    for i in 0..n {
                        let ydiff = y_new[i] - y[i];
                        let bspl = h * k[0][i] - ydiff;
                        r[0][i] = y[i];
                        r[1][i] = ydiff;
                        r[2][i] = bspl;
                        r[3][i] = ydiff - h * k[6][i] - bspl;
                        r[4][i] = h
                            * (D1 * k[0][i]
                                + D3 * k[2][i]
                                + D4 * k[3][i]
                                + D5 * k[4][i]
                                + D6 * k[5][i]
                                + D7 * k[6][i]);
                    }
                    while next_sample < sample_times.len() && sample_times[next_sample] <= t_new {
                        let ts = sample_times[next_sample];
                        let theta = ((ts - t) / h).clamp(0.0, 1.0);
                        let om_theta = 1.0 - theta;
                        let state: Vec<f64> = (0..n)
                            .map(|i| {
                                r[0][i]
                                    + theta
                                        * (r[1][i]
                                            + om_theta
                                                * (r[2][i]
                                                    + theta * (r[3][i] + om_theta * r[4][i])))
                            })
                            .collect();
                        sol.times.push(ts);
                        sol.states.push(state);
                        next_sample += 1;
                        steps_since_sample = 0;
                    }
                }

                t = t_new;
                std::mem::swap(y, y_new);
                k.swap(0, 6); // FSAL: k7 becomes k1 of the next step.

                if next_sample == sample_times.len() {
                    sol.stats.stiffness_detected |= stiff_strikes > 0;
                    return Ok(sol);
                }
                if last_rejected {
                    h_new = h_new.min(h);
                    last_rejected = false;
                }
                h = h_new;
            } else {
                // Rejected.
                sol.stats.rejected += 1;
                h_new = h / (fac11 / SAFETY).min(FAC_MIN_INV);
                last_rejected = true;
                h = h_new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn exponential_decay_matches_analytic() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -2.0 * y[0]);
        let times = [0.25, 0.5, 1.0, 2.0];
        let sol = Dopri5::new().solve(&sys, 0.0, &[1.0], &times, &opts()).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let exact = (-2.0 * t).exp();
            assert!(
                (sol.state_at(i)[0] - exact).abs() < 1e-7,
                "t={t}: {} vs {exact}",
                sol.state_at(i)[0]
            );
        }
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let times: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let sol = Dopri5::new().solve(&sys, 0.0, &[1.0, 0.0], &times, &opts()).unwrap();
        for s in &sol.states {
            let energy = s[0] * s[0] + s[1] * s[1];
            assert!((energy - 1.0).abs() < 1e-4, "energy drift: {energy}");
        }
        // Exact solution check.
        let last = sol.last_state().unwrap();
        assert!((last[0] - 20.0f64.cos()).abs() < 1e-5);
        assert!((last[1] + 20.0f64.sin()).abs() < 1e-5);
    }

    #[test]
    fn dense_output_is_accurate_between_steps() {
        // Many closely spaced samples must all hit the analytic curve even
        // though the solver takes large steps.
        let sys = FnSystem::new(1, |t, _y, d| d[0] = t.cos());
        let times: Vec<f64> = (1..200).map(|i| i as f64 * 0.05).collect();
        let sol = Dopri5::new().solve(&sys, 0.0, &[0.0], &times, &opts()).unwrap();
        for (i, &t) in times.iter().enumerate() {
            assert!((sol.state_at(i)[0] - t.sin()).abs() < 2e-5, "t={t}");
        }
        // Large steps: far fewer steps than samples.
        assert!(
            sol.stats.accepted < times.len(),
            "dense output must decouple sampling from stepping"
        );
    }

    #[test]
    fn tolerance_controls_error() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0]);
        let loose = Dopri5::new()
            .solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::with_tolerances(1e-3, 1e-6))
            .unwrap();
        let tight = Dopri5::new()
            .solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::with_tolerances(1e-10, 1e-12))
            .unwrap();
        let exact = 1.0f64.exp();
        let err_loose = (loose.state_at(0)[0] - exact).abs();
        let err_tight = (tight.state_at(0)[0] - exact).abs();
        assert!(err_tight < err_loose);
        assert!(err_tight < 1e-9);
        assert!(tight.stats.accepted > loose.stats.accepted);
    }

    #[test]
    fn stiffness_detector_fires_on_stiff_problem() {
        // Very stiff linear problem; DOPRI5 must report stiffness (the
        // engine then re-routes to Radau).
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e6 * (y[0] - 1.0));
        let o = SolverOptions { stiffness_check_interval: 1, ..opts() };
        let result = Dopri5::new().solve(&sys, 0.0, &[0.0], &[10.0], &o);
        match result {
            Err(f) => {
                assert!(matches!(
                    f.error,
                    SolverError::StiffnessDetected { .. } | SolverError::MaxStepsExceeded { .. }
                ));
                assert!(f.stats.steps > 0, "partial work must be reported");
                assert!(
                    f.stats.steps < o.max_steps * 2,
                    "failure cost must be the actual work, not the whole budget"
                );
            }
            Ok(_) => panic!("expected stiffness/step failure"),
        }
    }

    #[test]
    fn sample_at_t0_returns_initial_state() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let sol = Dopri5::new().solve(&sys, 0.0, &[7.0], &[0.0, 1.0], &opts()).unwrap();
        assert_eq!(sol.state_at(0)[0], 7.0);
    }

    #[test]
    fn empty_sample_times_is_empty_solution() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let sol = Dopri5::new().solve(&sys, 0.0, &[1.0], &[], &opts()).unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn nonautonomous_system_integrates() {
        // dy/dt = t ⇒ y = t²/2.
        let sys = FnSystem::new(1, |t, _y, d| d[0] = t);
        let sol = Dopri5::new().solve(&sys, 0.0, &[0.0], &[3.0], &opts()).unwrap();
        assert!((sol.state_at(0)[0] - 4.5).abs() < 1e-8);
    }

    #[test]
    fn fsal_economy_is_visible_in_stats() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let sol = Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &opts()).unwrap();
        // 6 evaluations per step (FSAL) + initialization overhead.
        assert!(sol.stats.rhs_evals <= 6 * sol.stats.steps + 3);
    }

    #[test]
    fn stats_track_rejections_under_tight_tolerance() {
        let sys = FnSystem::new(2, |t, y, d| {
            d[0] = y[1];
            d[1] = -y[0] * (1.0 + 5.0 * (10.0 * t).sin());
        });
        let sol = Dopri5::new()
            .solve(&sys, 0.0, &[1.0, 0.0], &[10.0], &SolverOptions::with_tolerances(1e-10, 1e-12))
            .unwrap();
        assert_eq!(sol.stats.steps, sol.stats.accepted + sol.stats.rejected);
        assert!(sol.stats.accepted > 0);
    }
}
