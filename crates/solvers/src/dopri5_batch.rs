//! Lockstep DOPRI5 over a lane-group with masked per-lane step control.
//!
//! [`Dopri5Batch`] advances all `L` lanes of a [`BatchOdeSystem`] through
//! the same 7-stage tableau simultaneously — one lane-wide
//! [`rhs_batch`](BatchOdeSystem::rhs_batch) sweep per stage — while every
//! piece of *control* state stays per-lane: step size, PI controller
//! memory, error acceptance, sample delivery, and the stiffness detector
//! each evolve independently per lane, exactly as in the scalar
//! [`Dopri5`](crate::Dopri5). Lanes whose step was rejected simply retry at
//! their own smaller `h` in the next lockstep iteration; lanes that finish
//! (or fail) park — their mask slot empties — and a lane-compaction pass
//! rebinds the freed lane to the next pending member of the group's queue,
//! so a long-running member never serializes the group behind it.
//!
//! # Numerical contract
//!
//! Per-member results are **bitwise identical** to the scalar `Dopri5`
//! solve of the same member, at any lane width. This falls out of two
//! invariants: every per-lane arithmetic expression in this file mirrors
//! the scalar implementation operation-for-operation, and no expression
//! mixes values from two lanes, so a member's dependency chain is the same
//! IEEE-754 sequence whether it runs in lane 3 of 8 or alone. The
//! determinism suite asserts `==` across lane widths and against the
//! scalar path.
//!
//! Masked (parked or never-bound) lanes still flow through the stage
//! arithmetic — with `h = 0` and whatever state they last held — because
//! skipping them would require cross-lane branches in the hot loops. Their
//! results are discarded; non-finite values they may produce cannot leak
//! into live lanes (no cross-lane operations exist).

use crate::batch::{BatchOdeSystem, BatchState};
use crate::dopri5::{
    A21, A31, A32, A41, A42, A43, A51, A52, A53, A54, A61, A62, A63, A64, A65, A71, A73, A74, A75,
    A76, BETA, C2, C3, C4, C5, D1, D3, D4, D5, D6, D7, E1, E3, E4, E5, E6, E7, EXPO1, FAC_MAX_INV,
    FAC_MIN_INV, NONFINITE_STRIKES, SAFETY, STIFF_STRIKES, STIFF_THRESHOLD,
};
use crate::system::check_inputs;
use crate::{Solution, SolveFailure, SolverError, SolverOptions, SolverScratch, StepStats};
use paraspace_linalg::weighted_rms_norm;

/// Work accounting for one lane-group integration, consumed by the vgpu
/// device model's occupancy/divergence bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneReport {
    /// Lane width `L` the group ran at.
    pub width: usize,
    /// Lockstep iterations: lane-wide stage sweeps executed (each costs one
    /// full 6-evaluation DOPRI5 step across all `L` lanes, live or masked).
    pub lockstep_iters: u64,
    /// Productive lane-steps: `Σ` over iterations of the number of live
    /// lanes. `lane_steps / (width · lockstep_iters)` is the group's lane
    /// occupancy; the shortfall is divergence waste.
    pub lane_steps: u64,
    /// Lane-wide RHS sweeps spent binding/initializing lanes (initial fill
    /// and compaction refills; 2 per refill round with automatic `hinit`).
    pub refill_sweeps: u64,
}

impl LaneReport {
    /// Fraction of lane slots that did productive work, in `(0, 1]`; `1.0`
    /// for an empty report.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.width as u64 * self.lockstep_iters;
        if capacity == 0 {
            1.0
        } else {
            self.lane_steps as f64 / capacity as f64
        }
    }
}

/// Pooled working storage for one lockstep lane-group integration: the 7
/// stage blocks, state/error blocks, probe buffers for lane (re)binding,
/// per-lane control vectors, and scalar gather buffers for the
/// lane-initialization arithmetic.
#[derive(Debug, Default)]
pub(crate) struct DopriBatchScratch {
    k: Vec<BatchState>,
    y: BatchState,
    y_stage: BatchState,
    y_new: BatchState,
    y_sti: BatchState,
    err_vec: BatchState,
    scale: BatchState,
    probe_y: BatchState,
    probe_f: BatchState,
    member_buf: Vec<f64>,
    aux_y: Vec<f64>,
    aux_f: Vec<f64>,
    aux_sc: Vec<f64>,
    aux_d: Vec<f64>,
    r: Vec<Vec<f64>>,
    t: Vec<f64>,
    h: Vec<f64>,
    t_stage: Vec<f64>,
}

impl DopriBatchScratch {
    /// Sizes every buffer for dimension `n` × `lanes` lanes (stale contents
    /// are harmless: live lanes fully rewrite their columns before reads).
    fn ensure(&mut self, n: usize, lanes: usize) {
        if self.k.len() != 7 {
            self.k = (0..7).map(|_| BatchState::zeros(n, lanes)).collect();
        }
        if self.r.len() != 5 {
            self.r = (0..5).map(|_| vec![0.0; n]).collect();
        }
        for b in self.k.iter_mut() {
            if b.dim() != n || b.lanes() != lanes {
                b.resize(n, lanes);
            }
        }
        for b in [
            &mut self.y,
            &mut self.y_stage,
            &mut self.y_new,
            &mut self.y_sti,
            &mut self.err_vec,
            &mut self.scale,
            &mut self.probe_y,
            &mut self.probe_f,
        ] {
            if b.dim() != n || b.lanes() != lanes {
                b.resize(n, lanes);
            }
        }
        for v in self.r.iter_mut() {
            v.resize(n, 0.0);
        }
        for v in [
            &mut self.member_buf,
            &mut self.aux_y,
            &mut self.aux_f,
            &mut self.aux_sc,
            &mut self.aux_d,
        ] {
            v.resize(n, 0.0);
        }
        for v in [&mut self.t, &mut self.h, &mut self.t_stage] {
            v.resize(lanes, 0.0);
        }
    }
}

/// Per-lane control state: everything the scalar DOPRI5 keeps in local
/// variables for its single trajectory.
struct LaneCtl {
    member: usize,
    sol: Solution,
    next_sample: usize,
    steps_since_sample: usize,
    fac_old: f64,
    last_rejected: bool,
    stiff_strikes: usize,
    nonstiff_strikes: usize,
    nonfinite_strikes: usize,
}

/// The lockstep lane-batched DOPRI5 solver.
///
/// # Example
///
/// Integrating several decay rates of the same one-species network in
/// lockstep (see [`BatchOdeSystem`] for the system contract):
///
/// ```
/// use paraspace_solvers::{
///     BatchOdeSystem, BatchState, Dopri5Batch, SolverOptions, SolverScratch,
/// };
///
/// struct Decays {
///     rates: Vec<f64>,
///     bound: Vec<f64>,
/// }
///
/// impl BatchOdeSystem for Decays {
///     fn dim(&self) -> usize { 1 }
///     fn lanes(&self) -> usize { self.bound.len() }
///     fn members(&self) -> usize { self.rates.len() }
///     fn initial_state(&self, _member: usize, y0: &mut [f64]) { y0[0] = 1.0; }
///     fn bind_lane(&mut self, lane: usize, member: usize) {
///         self.bound[lane] = self.rates[member];
///     }
///     fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
///         for l in 0..self.bound.len() {
///             dydt.set(0, l, -self.bound[l] * y.at(0, l));
///         }
///     }
/// }
///
/// let mut sys = Decays { rates: vec![0.5, 1.0, 2.0], bound: vec![0.0; 2] };
/// let (results, report) = Dopri5Batch::new().solve_group(
///     &mut sys, 0.0, &[1.0], &SolverOptions::default(), &mut SolverScratch::new(),
/// );
/// for (m, r) in results.iter().enumerate() {
///     let sol = r.as_ref().unwrap();
///     let exact = (-sys.rates[m]).exp();
///     assert!((sol.state_at(0)[0] - exact).abs() < 1e-6);
/// }
/// assert_eq!(report.width, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dopri5Batch {
    _private: (),
}

impl Dopri5Batch {
    /// Creates the solver.
    pub fn new() -> Self {
        Dopri5Batch { _private: () }
    }

    /// The solver's name for engine reporting.
    pub fn name(&self) -> &'static str {
        "dopri5-lanes"
    }

    /// Integrates every member of `system`'s queue, `system.lanes()` at a
    /// time, sampling each at `sample_times`.
    ///
    /// Returns one result per member (index-aligned with the member queue)
    /// plus the group's lane-occupancy accounting. Member failures are
    /// per-lane: one diverging member parks with its error while the rest
    /// of the group continues.
    pub fn solve_group(
        &self,
        system: &mut dyn BatchOdeSystem,
        t0: f64,
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> (Vec<Result<Solution, SolveFailure>>, LaneReport) {
        solve_group_impl(system, t0, sample_times, options, &mut scratch.dopri_batch)
    }
}

fn solve_group_impl(
    system: &mut dyn BatchOdeSystem,
    t0: f64,
    sample_times: &[f64],
    options: &SolverOptions,
    ws: &mut DopriBatchScratch,
) -> (Vec<Result<Solution, SolveFailure>>, LaneReport) {
    let n = system.dim();
    let lanes = system.lanes();
    let members = system.members();
    assert!(lanes >= 1, "lane width must be at least 1");
    let mut report = LaneReport { width: lanes, ..LaneReport::default() };
    let mut results: Vec<Option<Result<Solution, SolveFailure>>> =
        (0..members).map(|_| None).collect();

    ws.ensure(n, lanes);
    let DopriBatchScratch {
        k,
        y,
        y_stage,
        y_new,
        y_sti,
        err_vec,
        scale,
        probe_y,
        probe_f,
        member_buf,
        aux_y,
        aux_f,
        aux_sc,
        aux_d,
        r,
        t,
        h,
        t_stage,
    } = ws;

    // Up-front validation, one member at a time (mirrors the scalar
    // preamble; invalid members never occupy a lane).
    for (m, slot) in results.iter_mut().enumerate() {
        system.initial_state(m, member_buf);
        if let Err(error) = check_inputs(n, member_buf, t0, sample_times, options) {
            *slot = Some(Err(SolveFailure { error, stats: StepStats::default() }));
        }
    }

    let t_end = match sample_times.last() {
        Some(&te) => te,
        None => {
            // No samples requested: every valid member is an empty success.
            let out = results
                .into_iter()
                .map(|r| r.unwrap_or_else(|| Ok(Solution::with_capacity(0))))
                .collect();
            return (out, report);
        }
    };

    let mut ctl: Vec<Option<LaneCtl>> = (0..lanes).map(|_| None).collect();
    let mut next_member = 0usize;

    loop {
        // --- Lane compaction: bind pending members into free lanes. ---
        let mut fresh: Vec<usize> = Vec::new();
        for lane in 0..lanes {
            if ctl[lane].is_some() {
                continue;
            }
            while next_member < members {
                let m = next_member;
                next_member += 1;
                if results[m].is_some() {
                    continue; // failed validation
                }
                system.initial_state(m, member_buf);
                let mut sol = Solution::with_capacity(sample_times.len());
                sol.stats.rhs_evals += 1; // f(t0, y0), evaluated lane-wide below
                let mut next_sample = 0;
                while next_sample < sample_times.len() && sample_times[next_sample] <= t0 {
                    sol.times.push(sample_times[next_sample]);
                    sol.states.push(member_buf.clone());
                    next_sample += 1;
                }
                if next_sample == sample_times.len() {
                    results[m] = Some(Ok(sol)); // every sample was at/before t0
                    continue;
                }
                system.bind_lane(lane, m);
                y.scatter_lane(lane, member_buf);
                t[lane] = t0;
                h[lane] = 0.0;
                ctl[lane] = Some(LaneCtl {
                    member: m,
                    sol,
                    next_sample,
                    steps_since_sample: 0,
                    fac_old: 1e-4,
                    last_rejected: false,
                    stiff_strikes: 0,
                    nonstiff_strikes: 0,
                    nonfinite_strikes: 0,
                });
                fresh.push(lane);
                break;
            }
        }

        // --- Initialize fresh lanes: FSAL seed + Hairer hinit, lane-wide. ---
        if !fresh.is_empty() {
            // One sweep computes f(t0, y0) for every fresh lane; live lanes'
            // FSAL derivatives stay untouched in k[0] (the sweep output goes
            // to a temporary block).
            system.rhs_batch(t, y, probe_f);
            report.refill_sweeps += 1;
            for &lane in &fresh {
                k[0].copy_lane_from(probe_f, lane);
            }
            if let Some(h0) = options.initial_step {
                for &lane in &fresh {
                    h[lane] = h0;
                }
            } else {
                // Lane-wise `initial_step_size`: same arithmetic, with the
                // Euler probe batched into a single sweep for all fresh
                // lanes (live lanes pass through with their current state).
                probe_y.as_mut_slice().copy_from_slice(y.as_slice());
                t_stage.copy_from_slice(t);
                for &lane in &fresh {
                    y.gather_lane(lane, aux_y);
                    k[0].gather_lane(lane, aux_f);
                    for i in 0..n {
                        aux_sc[i] = options.abs_tol + options.rel_tol * aux_y[i].abs();
                    }
                    let d0 = weighted_rms_norm(aux_y, aux_sc);
                    let d1 = weighted_rms_norm(aux_f, aux_sc);
                    let h0 = if d0 < 1e-5 || d1 < 1e-5 { 1e-6 } else { 0.01 * (d0 / d1) };
                    let h0 = h0.min(options.max_step);
                    for i in 0..n {
                        aux_d[i] = aux_y[i] + h0 * aux_f[i];
                    }
                    probe_y.scatter_lane(lane, aux_d);
                    t_stage[lane] = t[lane] + h0;
                    h[lane] = h0; // provisional; finalized after the probe
                }
                system.rhs_batch(t_stage, probe_y, probe_f);
                report.refill_sweeps += 1;
                for &lane in &fresh {
                    let h0 = h[lane];
                    y.gather_lane(lane, aux_y);
                    k[0].gather_lane(lane, aux_f);
                    for i in 0..n {
                        aux_sc[i] = options.abs_tol + options.rel_tol * aux_y[i].abs();
                    }
                    probe_f.gather_lane(lane, aux_d);
                    for i in 0..n {
                        aux_d[i] -= aux_f[i];
                    }
                    let d1 = weighted_rms_norm(aux_f, aux_sc);
                    let d2 = weighted_rms_norm(aux_d, aux_sc) / h0;
                    let dmax = d1.max(d2);
                    let h1 = if dmax <= 1e-15 {
                        (h0 * 1e-3).max(1e-6)
                    } else {
                        (0.01 / dmax).powf(1.0 / 6.0)
                    };
                    h[lane] = (100.0 * h0).min(h1).min(options.max_step);
                    let c = ctl[lane].as_mut().expect("fresh lane is bound");
                    c.sol.stats.rhs_evals += 1;
                }
            }
        }

        if ctl.iter().all(|c| c.is_none()) {
            break; // no live lanes and no pending members
        }

        // --- Per-lane pre-step control (mirrors the scalar loop head). ---
        for lane in 0..lanes {
            let mut park: Option<SolverError> = None;
            if let Some(c) = ctl[lane].as_mut() {
                if options.step_budget.is_some_and(|budget| c.sol.stats.steps >= budget) {
                    let budget = options.step_budget.expect("checked above");
                    c.sol.stats.stiffness_detected |= c.stiff_strikes > 0;
                    park = Some(SolverError::StepBudgetExhausted { t: t[lane], budget });
                } else if c.steps_since_sample >= options.max_steps {
                    c.sol.stats.stiffness_detected |= c.stiff_strikes > 0;
                    park = Some(SolverError::MaxStepsExceeded {
                        t: t[lane],
                        max_steps: options.max_steps,
                    });
                } else {
                    h[lane] = h[lane].min(options.max_step).min(t_end - t[lane]);
                    if h[lane] <= f64::EPSILON * t[lane].abs().max(1.0) {
                        park = Some(SolverError::StepSizeUnderflow { t: t[lane] });
                    }
                }
            }
            if let Some(error) = park {
                let c = ctl[lane].take().expect("parked lane was live");
                results[c.member] = Some(Err(SolveFailure { error, stats: c.sol.stats }));
                h[lane] = 0.0;
            }
        }
        let live = ctl.iter().filter(|c| c.is_some()).count();
        if live == 0 {
            continue; // refill (or terminate) at the loop head
        }
        report.lockstep_iters += 1;
        report.lane_steps += live as u64;

        // --- Lockstep stages 2..7: lane-wide sweeps, per-lane h. ---
        {
            let (yv, k0) = (y.as_slice(), k[0].as_slice());
            let ys = y_stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] = yv[b + l] + h[l] * A21 * k0[b + l];
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + C2 * h[l];
            }
        }
        system.rhs_batch(t_stage, y_stage, &mut k[1]);
        {
            let (yv, k0, k1) = (y.as_slice(), k[0].as_slice(), k[1].as_slice());
            let ys = y_stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] = yv[b + l] + h[l] * (A31 * k0[b + l] + A32 * k1[b + l]);
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + C3 * h[l];
            }
        }
        system.rhs_batch(t_stage, y_stage, &mut k[2]);
        {
            let (yv, k0, k1, k2) =
                (y.as_slice(), k[0].as_slice(), k[1].as_slice(), k[2].as_slice());
            let ys = y_stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] =
                        yv[b + l] + h[l] * (A41 * k0[b + l] + A42 * k1[b + l] + A43 * k2[b + l]);
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + C4 * h[l];
            }
        }
        system.rhs_batch(t_stage, y_stage, &mut k[3]);
        {
            let (yv, k0, k1, k2, k3) =
                (y.as_slice(), k[0].as_slice(), k[1].as_slice(), k[2].as_slice(), k[3].as_slice());
            let ys = y_stage.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] = yv[b + l]
                        + h[l]
                            * (A51 * k0[b + l]
                                + A52 * k1[b + l]
                                + A53 * k2[b + l]
                                + A54 * k3[b + l]);
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + C5 * h[l];
            }
        }
        system.rhs_batch(t_stage, y_stage, &mut k[4]);
        {
            let (yv, k0, k1, k2, k3, k4) = (
                y.as_slice(),
                k[0].as_slice(),
                k[1].as_slice(),
                k[2].as_slice(),
                k[3].as_slice(),
                k[4].as_slice(),
            );
            let ys = y_sti.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] = yv[b + l]
                        + h[l]
                            * (A61 * k0[b + l]
                                + A62 * k1[b + l]
                                + A63 * k2[b + l]
                                + A64 * k3[b + l]
                                + A65 * k4[b + l]);
                }
            }
            for l in 0..lanes {
                t_stage[l] = t[l] + h[l];
            }
        }
        system.rhs_batch(t_stage, y_sti, &mut k[5]);
        {
            let (yv, k0, k2, k3, k4, k5) = (
                y.as_slice(),
                k[0].as_slice(),
                k[2].as_slice(),
                k[3].as_slice(),
                k[4].as_slice(),
                k[5].as_slice(),
            );
            let ys = y_new.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ys[b + l] = yv[b + l]
                        + h[l]
                            * (A71 * k0[b + l]
                                + A73 * k2[b + l]
                                + A74 * k3[b + l]
                                + A75 * k4[b + l]
                                + A76 * k5[b + l]);
                }
            }
        }
        system.rhs_batch(t_stage, y_new, &mut k[6]);

        // --- Embedded error estimate and scale, lane-wide. ---
        {
            let (k0, k2, k3, k4, k5, k6) = (
                k[0].as_slice(),
                k[2].as_slice(),
                k[3].as_slice(),
                k[4].as_slice(),
                k[5].as_slice(),
                k[6].as_slice(),
            );
            let ev = err_vec.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    ev[b + l] = h[l]
                        * (E1 * k0[b + l]
                            + E3 * k2[b + l]
                            + E4 * k3[b + l]
                            + E5 * k4[b + l]
                            + E6 * k5[b + l]
                            + E7 * k6[b + l]);
                }
            }
            let (yv, ynv) = (y.as_slice(), y_new.as_slice());
            let sc = scale.as_mut_slice();
            for s in 0..n {
                let b = s * lanes;
                for l in 0..lanes {
                    sc[b + l] =
                        options.abs_tol + options.rel_tol * yv[b + l].abs().max(ynv[b + l].abs());
                }
            }
        }

        // --- Per-lane acceptance, controller, sampling, FSAL. ---
        let (k_head, k_tail) = k.split_at_mut(1);
        let k0m = k_head[0].as_mut_slice();
        let (k2s, k3s, k4s, k5s, k6s) = (
            k_tail[1].as_slice(),
            k_tail[2].as_slice(),
            k_tail[3].as_slice(),
            k_tail[4].as_slice(),
            k_tail[5].as_slice(),
        );
        let ys = y.as_mut_slice();
        let yns = y_new.as_slice();
        let ystis = y_sti.as_slice();
        let evs = err_vec.as_slice();
        let scs = scale.as_slice();
        for lane in 0..lanes {
            enum Park {
                Done,
                Fail(SolverError),
            }
            let mut park: Option<Park> = None;
            if let Some(c) = ctl[lane].as_mut() {
                c.sol.stats.rhs_evals += 6;
                c.sol.stats.steps += 1;
                c.steps_since_sample += 1;

                let err = lane_wrms(evs, scs, n, lanes, lane);
                let finite = err.is_finite() && (0..n).all(|s| yns[s * lanes + lane].is_finite());
                if !finite {
                    // Hard rejection with aggressive shrink.
                    c.sol.stats.rejected += 1;
                    h[lane] *= 0.1;
                    c.last_rejected = true;
                    c.nonfinite_strikes += 1;
                    if c.nonfinite_strikes >= NONFINITE_STRIKES
                        || h[lane] <= f64::MIN_POSITIVE * 1e4
                    {
                        park = Some(Park::Fail(SolverError::NonFiniteState { t: t[lane] }));
                    }
                } else {
                    c.nonfinite_strikes = 0;
                    // PI controller.
                    let fac11 = err.powf(EXPO1);
                    let fac =
                        (fac11 / c.fac_old.powf(BETA) / SAFETY).clamp(FAC_MAX_INV, FAC_MIN_INV);
                    let mut h_new = h[lane] / fac;

                    if err <= 1.0 {
                        // Accepted.
                        c.fac_old = err.max(1e-4);
                        c.sol.stats.accepted += 1;

                        if options.stiffness_check_interval > 0
                            && (c
                                .sol
                                .stats
                                .accepted
                                .is_multiple_of(options.stiffness_check_interval)
                                || c.stiff_strikes > 0)
                        {
                            let mut st_num = 0.0;
                            let mut st_den = 0.0;
                            for s in 0..n {
                                let i = s * lanes + lane;
                                let dk = k6s[i] - k5s[i];
                                let dy = yns[i] - ystis[i];
                                st_num += dk * dk;
                                st_den += dy * dy;
                            }
                            if st_den > 0.0 {
                                let h_lambda = h[lane] * (st_num / st_den).sqrt();
                                if h_lambda > STIFF_THRESHOLD {
                                    c.nonstiff_strikes = 0;
                                    c.stiff_strikes += 1;
                                    if c.stiff_strikes >= STIFF_STRIKES {
                                        c.sol.stats.stiffness_detected = true;
                                        park = Some(Park::Fail(SolverError::StiffnessDetected {
                                            t: t[lane],
                                        }));
                                    }
                                } else {
                                    c.nonstiff_strikes += 1;
                                    if c.nonstiff_strikes >= 6 {
                                        c.stiff_strikes = 0;
                                    }
                                }
                            }
                        }

                        if park.is_none() {
                            let t_new = t[lane] + h[lane];
                            if c.next_sample < sample_times.len()
                                && sample_times[c.next_sample] <= t_new
                            {
                                // Dense-output coefficients for this lane.
                                for s in 0..n {
                                    let i = s * lanes + lane;
                                    let ydiff = yns[i] - ys[i];
                                    let bspl = h[lane] * k0m[i] - ydiff;
                                    r[0][s] = ys[i];
                                    r[1][s] = ydiff;
                                    r[2][s] = bspl;
                                    r[3][s] = ydiff - h[lane] * k6s[i] - bspl;
                                    r[4][s] = h[lane]
                                        * (D1 * k0m[i]
                                            + D3 * k2s[i]
                                            + D4 * k3s[i]
                                            + D5 * k4s[i]
                                            + D6 * k5s[i]
                                            + D7 * k6s[i]);
                                }
                                while c.next_sample < sample_times.len()
                                    && sample_times[c.next_sample] <= t_new
                                {
                                    let ts = sample_times[c.next_sample];
                                    let theta = ((ts - t[lane]) / h[lane]).clamp(0.0, 1.0);
                                    let om_theta = 1.0 - theta;
                                    let state: Vec<f64> = (0..n)
                                        .map(|s| {
                                            r[0][s]
                                                + theta
                                                    * (r[1][s]
                                                        + om_theta
                                                            * (r[2][s]
                                                                + theta
                                                                    * (r[3][s]
                                                                        + om_theta * r[4][s])))
                                        })
                                        .collect();
                                    c.sol.times.push(ts);
                                    c.sol.states.push(state);
                                    c.next_sample += 1;
                                    c.steps_since_sample = 0;
                                }
                            }

                            t[lane] = t_new;
                            for s in 0..n {
                                let i = s * lanes + lane;
                                ys[i] = yns[i]; // y ← y_new
                                k0m[i] = k6s[i]; // FSAL: k7 becomes k1
                            }

                            if c.next_sample == sample_times.len() {
                                c.sol.stats.stiffness_detected |= c.stiff_strikes > 0;
                                park = Some(Park::Done);
                            } else {
                                if c.last_rejected {
                                    h_new = h_new.min(h[lane]);
                                    c.last_rejected = false;
                                }
                                h[lane] = h_new;
                            }
                        }
                    } else {
                        // Rejected: retry this lane at smaller h next sweep.
                        c.sol.stats.rejected += 1;
                        h_new = h[lane] / (fac11 / SAFETY).min(FAC_MIN_INV);
                        c.last_rejected = true;
                        h[lane] = h_new;
                    }
                }
            }
            if let Some(p) = park {
                let c = ctl[lane].take().expect("parked lane was live");
                results[c.member] = Some(match p {
                    Park::Done => Ok(c.sol),
                    Park::Fail(error) => Err(SolveFailure { error, stats: c.sol.stats }),
                });
                h[lane] = 0.0;
            }
        }
    }

    let out = results
        .into_iter()
        .enumerate()
        .map(|(m, r)| r.unwrap_or_else(|| panic!("member {m} never scheduled")))
        .collect();
    (out, report)
}

/// The per-lane strided equivalent of
/// [`weighted_rms_norm`]: identical summation order over components.
/// Shared with the lockstep Radau kernel.
#[inline]
pub(crate) fn lane_wrms(x: &[f64], w: &[f64], n: usize, lanes: usize, lane: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for s in 0..n {
        let rr = x[s * lanes + lane] / w[s * lanes + lane];
        sum += rr * rr;
    }
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dopri5, FnSystem, OdeSolver};

    /// A family of damped oscillators sharing one structure: member `m` has
    /// its own stiffness-free rate `k_m`.
    ///
    ///   dy0/dt = y1
    ///   dy1/dt = -k·y0 - 0.1·y1
    struct OscFamily {
        rates: Vec<f64>,
        y0s: Vec<[f64; 2]>,
        bound: Vec<f64>,
    }

    impl OscFamily {
        fn new(rates: Vec<f64>, lanes: usize) -> Self {
            let y0s =
                rates.iter().enumerate().map(|(i, _)| [1.0 + i as f64 * 0.125, 0.0]).collect();
            OscFamily { rates, y0s, bound: vec![0.0; lanes] }
        }

        /// The scalar twin of member `m`, with identical arithmetic.
        #[allow(clippy::type_complexity)]
        fn scalar(&self, m: usize) -> (FnSystem<impl Fn(f64, &[f64], &mut [f64])>, [f64; 2]) {
            let k = self.rates[m];
            let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = y[1];
                d[1] = -k * y[0] - 0.1 * y[1];
            });
            (sys, self.y0s[m])
        }
    }

    impl BatchOdeSystem for OscFamily {
        fn dim(&self) -> usize {
            2
        }
        fn lanes(&self) -> usize {
            self.bound.len()
        }
        fn members(&self) -> usize {
            self.rates.len()
        }
        fn initial_state(&self, member: usize, y0: &mut [f64]) {
            y0.copy_from_slice(&self.y0s[member]);
        }
        fn bind_lane(&mut self, lane: usize, member: usize) {
            self.bound[lane] = self.rates[member];
        }
        fn rhs_batch(&mut self, _t: &[f64], y: &BatchState, dydt: &mut BatchState) {
            let lanes = self.bound.len();
            let (yv, dv) = (y.as_slice(), dydt.as_mut_slice());
            for l in 0..lanes {
                let kv = self.bound[l];
                dv[l] = yv[lanes + l];
                dv[lanes + l] = -kv * yv[l] - 0.1 * yv[lanes + l];
            }
        }
    }

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    fn sample_grid() -> Vec<f64> {
        (1..=8).map(|i| i as f64 * 0.5).collect()
    }

    #[test]
    fn lockstep_is_bitwise_identical_to_scalar_at_any_width() {
        let rates: Vec<f64> = (0..10).map(|i| 0.5 + 0.37 * i as f64).collect();
        let times = sample_grid();
        // Scalar references.
        let proto = OscFamily::new(rates.clone(), 1);
        let reference: Vec<Solution> = (0..rates.len())
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Dopri5::new().solve(&sys, 0.0, &y0, &times, &opts()).unwrap()
            })
            .collect();
        for width in [1, 2, 4, 8] {
            let mut family = OscFamily::new(rates.clone(), width);
            let (results, report) = Dopri5Batch::new().solve_group(
                &mut family,
                0.0,
                &times,
                &opts(),
                &mut SolverScratch::new(),
            );
            assert_eq!(report.width, width);
            for (m, r) in results.iter().enumerate() {
                let sol = r.as_ref().expect("member must succeed");
                assert_eq!(sol.times, reference[m].times, "width={width} member={m}");
                assert_eq!(sol.states, reference[m].states, "width={width} member={m}");
                assert_eq!(sol.stats, reference[m].stats, "width={width} member={m}");
            }
        }
    }

    #[test]
    fn lane_compaction_keeps_group_busy() {
        // 13 members through 4 lanes: compaction must schedule all of them.
        let rates: Vec<f64> = (0..13).map(|i| 0.25 + 0.2 * i as f64).collect();
        let mut family = OscFamily::new(rates, 4);
        let times = sample_grid();
        let (results, report) = Dopri5Batch::new().solve_group(
            &mut family,
            0.0,
            &times,
            &opts(),
            &mut SolverScratch::new(),
        );
        assert!(results.iter().all(|r| r.is_ok()));
        assert!(report.lockstep_iters > 0);
        // Occupancy accounting is consistent.
        assert!(report.lane_steps <= report.width as u64 * report.lockstep_iters);
        assert!(report.occupancy() > 0.0 && report.occupancy() <= 1.0);
        // Refill sweeps happened (initial fill plus at least one refill
        // round), each costing 2 sweeps under automatic hinit.
        assert!(report.refill_sweeps >= 4);
    }

    #[test]
    fn failing_member_parks_without_poisoning_the_group() {
        // Member 2's rate makes the oscillator violently stiff: the scalar
        // DOPRI5 fails on it; the lockstep group must report the identical
        // failure for it and bitwise-identical successes for the rest.
        let rates = vec![1.0, 2.0, 5.0e7, 3.0, 4.0];
        let times = sample_grid();
        let proto = OscFamily::new(rates.clone(), 1);
        let reference: Vec<Result<Solution, SolveFailure>> = (0..rates.len())
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Dopri5::new().solve(&sys, 0.0, &y0, &times, &opts())
            })
            .collect();
        assert!(reference[2].is_err(), "member 2 must fail under scalar DOPRI5");
        let mut family = OscFamily::new(rates.clone(), 2);
        let (results, _) = Dopri5Batch::new().solve_group(
            &mut family,
            0.0,
            &times,
            &opts(),
            &mut SolverScratch::new(),
        );
        for (m, (got, want)) in results.iter().zip(reference.iter()).enumerate() {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.states, w.states, "member={m}");
                    assert_eq!(g.stats, w.stats, "member={m}");
                }
                (Err(g), Err(w)) => {
                    assert_eq!(
                        std::mem::discriminant(&g.error),
                        std::mem::discriminant(&w.error),
                        "member={m}: {:?} vs {:?}",
                        g.error,
                        w.error
                    );
                    assert_eq!(g.stats, w.stats, "member={m}");
                }
                _ => panic!("member {m}: outcome kind differs from scalar"),
            }
        }
    }

    #[test]
    fn empty_sample_times_yield_empty_solutions() {
        let mut family = OscFamily::new(vec![1.0, 2.0, 3.0], 2);
        let (results, report) = Dopri5Batch::new().solve_group(
            &mut family,
            0.0,
            &[],
            &opts(),
            &mut SolverScratch::new(),
        );
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.as_ref().is_ok_and(|s| s.is_empty())));
        assert_eq!(report.lockstep_iters, 0);
    }

    #[test]
    fn samples_at_t0_deliver_initial_state() {
        let mut family = OscFamily::new(vec![1.0, 2.0], 2);
        let (results, _) = Dopri5Batch::new().solve_group(
            &mut family,
            0.0,
            &[0.0, 1.0],
            &opts(),
            &mut SolverScratch::new(),
        );
        for (m, r) in results.iter().enumerate() {
            let sol = r.as_ref().unwrap();
            assert_eq!(sol.state_at(0)[0], 1.0 + m as f64 * 0.125);
        }
    }

    #[test]
    fn invalid_member_fails_alone() {
        let mut family = OscFamily::new(vec![1.0, 2.0, 3.0], 2);
        family.y0s[1] = [f64::NAN, 0.0];
        let times = sample_grid();
        let (results, _) = Dopri5Batch::new().solve_group(
            &mut family,
            0.0,
            &times,
            &opts(),
            &mut SolverScratch::new(),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1].as_ref().unwrap_err().error, SolverError::InvalidInput { .. }));
        assert!(results[2].is_ok());
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        // Two back-to-back groups through the same scratch must match two
        // fresh-scratch runs exactly.
        let times = sample_grid();
        let mut scratch = SolverScratch::new();
        let run = |scratch: &mut SolverScratch, rates: Vec<f64>| {
            let mut family = OscFamily::new(rates, 4);
            Dopri5Batch::new().solve_group(&mut family, 0.0, &times, &opts(), scratch).0
        };
        let a1 = run(&mut scratch, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let a2 = run(&mut scratch, vec![0.3, 0.7]);
        let b1 = run(&mut SolverScratch::new(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let b2 = run(&mut SolverScratch::new(), vec![0.3, 0.7]);
        let unwrap_all = |v: Vec<Result<Solution, SolveFailure>>| -> Vec<Solution> {
            v.into_iter().map(|r| r.unwrap()).collect()
        };
        assert_eq!(unwrap_all(a1), unwrap_all(b1));
        assert_eq!(unwrap_all(a2), unwrap_all(b2));
    }

    #[test]
    fn fixed_initial_step_is_honored() {
        let o = SolverOptions { initial_step: Some(1e-3), ..opts() };
        let times = sample_grid();
        let proto = OscFamily::new(vec![1.0, 4.0], 1);
        let reference: Vec<Solution> = (0..2)
            .map(|m| {
                let (sys, y0) = proto.scalar(m);
                Dopri5::new().solve(&sys, 0.0, &y0, &times, &o).unwrap()
            })
            .collect();
        let mut family = OscFamily::new(vec![1.0, 4.0], 2);
        let (results, report) =
            Dopri5Batch::new().solve_group(&mut family, 0.0, &times, &o, &mut SolverScratch::new());
        for (m, r) in results.iter().enumerate() {
            let sol = r.as_ref().unwrap();
            assert_eq!(sol.states, reference[m].states, "member={m}");
            assert_eq!(sol.stats, reference[m].stats, "member={m}");
        }
        // Fixed h0 skips the hinit probe: exactly one sweep per fill round.
        assert_eq!(report.refill_sweeps, 1);
    }
}
