//! Structure-of-arrays state for lane-batched integration.
//!
//! The lane-batched path integrates `L` independent parameterizations of
//! the *same* network in lockstep: every state-sized buffer holds the
//! states of all lanes interleaved **species-major, lane-minor** —
//! component `s` of lane `l` lives at `data[s * L + l]`. The inner loops of
//! the batched right-hand side and the lockstep stepper then iterate lanes
//! innermost over contiguous `f64` runs, which is exactly the shape LLVM
//! autovectorizes and the layout MPGOS-style batched integrators use on
//! real SIMD/SIMT hardware (one global-memory transaction serves a whole
//! warp; here, one cache line serves a whole SIMD register).
//!
//! Lane width `L` is chosen at runtime (engines auto-select it per model);
//! per-lane results are bitwise independent of `L` because every lane's
//! arithmetic is an unshared dependency chain evaluated in the same order
//! at any width.

/// A species-major, lane-minor SoA block of `dim × lanes` values.
///
/// # Example
///
/// ```
/// use paraspace_solvers::BatchState;
///
/// let mut s = BatchState::zeros(3, 4); // 3 species × 4 lanes
/// s.set(2, 1, 7.0);
/// assert_eq!(s.at(2, 1), 7.0);
/// assert_eq!(s.row(2), &[0.0, 7.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchState {
    data: Vec<f64>,
    dim: usize,
    lanes: usize,
}

impl BatchState {
    /// A zero-filled block for `dim` components × `lanes` lanes.
    pub fn zeros(dim: usize, lanes: usize) -> Self {
        BatchState { data: vec![0.0; dim * lanes], dim, lanes }
    }

    /// Number of components (the ODE dimension `n`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lane width `L`.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Resizes in place to `dim × lanes`, zero-filling; contents are
    /// unspecified afterwards (callers fully rewrite before reading).
    pub fn resize(&mut self, dim: usize, lanes: usize) {
        self.dim = dim;
        self.lanes = lanes;
        self.data.clear();
        self.data.resize(dim * lanes, 0.0);
    }

    /// The raw SoA slice (`component s`, `lane l` ⇒ index `s·L + l`).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw SoA slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value of component `s` in lane `l`.
    #[inline]
    pub fn at(&self, s: usize, l: usize) -> f64 {
        self.data[s * self.lanes + l]
    }

    /// Sets component `s` in lane `l`.
    #[inline]
    pub fn set(&mut self, s: usize, l: usize, v: f64) {
        self.data[s * self.lanes + l] = v;
    }

    /// All lanes of component `s` (one contiguous row).
    #[inline]
    pub fn row(&self, s: usize) -> &[f64] {
        &self.data[s * self.lanes..(s + 1) * self.lanes]
    }

    /// Copies lane `l` out into `dst` (length `dim`): the strided gather
    /// used when a lane's scalar trajectory is materialized (sample
    /// delivery, hand-off to a scalar solver).
    pub fn gather_lane(&self, l: usize, dst: &mut [f64]) {
        assert_eq!(dst.len(), self.dim, "gather buffer length");
        for (s, d) in dst.iter_mut().enumerate() {
            *d = self.data[s * self.lanes + l];
        }
    }

    /// Writes `src` (length `dim`) into lane `l`: the strided scatter used
    /// when a member is bound into a lane.
    pub fn scatter_lane(&mut self, l: usize, src: &[f64]) {
        assert_eq!(src.len(), self.dim, "scatter buffer length");
        for (s, &v) in src.iter().enumerate() {
            self.data[s * self.lanes + l] = v;
        }
    }

    /// Copies lane `l` of `src` into lane `l` of `self` (same shape).
    pub fn copy_lane_from(&mut self, src: &BatchState, l: usize) {
        debug_assert_eq!(self.dim, src.dim);
        debug_assert_eq!(self.lanes, src.lanes);
        for s in 0..self.dim {
            self.data[s * self.lanes + l] = src.data[s * src.lanes + l];
        }
    }
}

/// A batch of `members` same-network ODE systems integrated `lanes` at a
/// time.
///
/// Implementors own the per-member static data (initial states, kinetic
/// constants) and a lane-slot table: [`bind_lane`](Self::bind_lane) loads
/// one member's constants into a lane column, after which
/// [`rhs_batch`](Self::rhs_batch) evaluates every lane's right-hand side in
/// one species-major/lane-minor sweep. The lockstep solver rebinds retired
/// lanes to pending members (lane compaction), so one implementor value
/// services an entire lane-group.
///
/// `t` is per-lane (lanes sit at different integration times); autonomous
/// systems ignore it.
pub trait BatchOdeSystem {
    /// The ODE dimension `n` (identical across members).
    fn dim(&self) -> usize;

    /// Lane width `L`.
    fn lanes(&self) -> usize;

    /// Number of members in this lane-group's queue.
    fn members(&self) -> usize;

    /// Writes member `member`'s initial state into `y0` (length `n`).
    fn initial_state(&self, member: usize, y0: &mut [f64]);

    /// Loads member `member`'s static per-lane data (rate constants) into
    /// lane `lane`.
    fn bind_lane(&mut self, lane: usize, member: usize);

    /// Evaluates `dy/dt = f(t_l, y_l)` for every lane `l` into `dydt`.
    ///
    /// `t` has one entry per lane. Every lane column must be written —
    /// including lanes whose results the caller will discard — and each
    /// lane's arithmetic must depend only on that lane's column (no
    /// cross-lane reductions), which is what makes per-member results
    /// bitwise independent of lane width.
    fn rhs_batch(&mut self, t: &[f64], y: &BatchState, dydt: &mut BatchState);

    /// Whether [`jacobian_batch`](Self::jacobian_batch) is implemented.
    ///
    /// The implicit lockstep solver ([`Radau5Batch`](crate::Radau5Batch))
    /// requires it; explicit solvers never call it, so implementors that
    /// only feed `Dopri5Batch` can ignore both methods.
    fn supports_jacobian_batch(&self) -> bool {
        false
    }

    /// Evaluates the full analytic Jacobian of every lane into `jac`, an
    /// `n × n × L` SoA block: `∂f_i/∂y_j` of lane `l` at
    /// `(i·n + j)·L + l`. Lane independence and per-lane bitwise identity
    /// with the scalar Jacobian are required exactly as for
    /// [`rhs_batch`](Self::rhs_batch).
    ///
    /// The default panics; implementors advertising
    /// [`supports_jacobian_batch`](Self::supports_jacobian_batch) must
    /// override it.
    fn jacobian_batch(&mut self, t: &[f64], y: &BatchState, jac: &mut [f64]) {
        let _ = (t, y, jac);
        panic!("this BatchOdeSystem does not implement jacobian_batch");
    }

    /// The structural sparsity pattern of the Jacobian, when it is fixed
    /// for every state and parameterization (true for reaction networks,
    /// where stoichiometry pins it at compile time).
    ///
    /// Returning `Some` lets the implicit lockstep solver run a symbolic
    /// sparse-LU analysis once per model and factor its Newton iteration
    /// matrices over the shared pattern — streaming `nnz·L` instead of
    /// `n²·L` values per refresh — whenever the pattern is sparse enough to
    /// pay (see `paraspace_linalg::SymbolicLu::prefers_sparse`). Entries
    /// written by [`jacobian_batch`](Self::jacobian_batch) outside the
    /// returned pattern MUST be exact zeros in every lane; the diagonal
    /// need not be included (the solver adds it). The default `None` keeps
    /// the dense factorization path.
    fn jacobian_sparsity(&self) -> Option<paraspace_linalg::SparsityPattern> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_layout_is_species_major_lane_minor() {
        let mut s = BatchState::zeros(2, 3);
        s.set(0, 0, 1.0);
        s.set(0, 2, 2.0);
        s.set(1, 1, 3.0);
        assert_eq!(s.as_slice(), &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        assert_eq!(s.row(1), &[0.0, 3.0, 0.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut s = BatchState::zeros(4, 3);
        s.scatter_lane(1, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0; 4];
        s.gather_lane(1, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
        // Other lanes untouched.
        s.gather_lane(0, &mut out);
        assert_eq!(out, [0.0; 4]);
    }

    #[test]
    fn copy_lane_moves_one_column() {
        let mut a = BatchState::zeros(2, 2);
        let mut b = BatchState::zeros(2, 2);
        b.scatter_lane(0, &[5.0, 6.0]);
        b.scatter_lane(1, &[7.0, 8.0]);
        a.copy_lane_from(&b, 1);
        assert_eq!(a.at(0, 1), 7.0);
        assert_eq!(a.at(1, 1), 8.0);
        assert_eq!(a.at(0, 0), 0.0);
    }

    #[test]
    fn resize_reshapes() {
        let mut s = BatchState::zeros(2, 2);
        s.set(1, 1, 9.0);
        s.resize(3, 4);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.lanes(), 4);
        assert_eq!(s.as_slice().len(), 12);
        assert!(s.as_slice().iter().all(|&v| v == 0.0));
    }
}
