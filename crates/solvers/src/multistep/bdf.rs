//! The BDF solver (stiff multistep).

use crate::multistep::adams::{drive, BDF_MAX_ORDER};
use crate::multistep::core::NordsieckCore;
use crate::multistep::MethodFamily;
use crate::{OdeSolver, OdeSystem, Solution, SolveFailure, SolverOptions, SolverScratch};

/// Variable-order (1–5) backward differentiation formulae with modified
/// Newton iteration, cached Jacobian, and LU reuse — the stiff half of the
/// LSODA/VODE baselines.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{Bdf, FnSystem, OdeSolver, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e4 * (y[0] - 1.0));
/// let sol = Bdf::new().solve(&sys, 0.0, &[0.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bdf {
    max_order: usize,
}

impl Default for Bdf {
    fn default() -> Self {
        Bdf::new()
    }
}

impl Bdf {
    /// Creates the solver with maximum order 5.
    pub fn new() -> Self {
        Bdf { max_order: BDF_MAX_ORDER }
    }

    /// Creates the solver with a custom maximum order (1–5).
    ///
    /// Order 1 gives the first-order BDF the fine-grained baseline
    /// simulator switches to under stiffness.
    ///
    /// # Panics
    ///
    /// Panics if `max_order` is outside `1..=5`.
    pub fn with_max_order(max_order: usize) -> Self {
        assert!((1..=BDF_MAX_ORDER).contains(&max_order), "bdf order must be in 1..=5");
        Bdf { max_order }
    }
}

impl OdeSolver for Bdf {
    fn name(&self) -> &'static str {
        "bdf"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let mut core = NordsieckCore::new(MethodFamily::Bdf, system.dim(), self.max_order);
        drive(&mut core, system, t0, y0, sample_times, options, |_, _, _| {})
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        let core = scratch.nordsieck(MethodFamily::Bdf, system.dim(), self.max_order);
        drive(core, system, t0, y0, sample_times, options, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn stiff_relaxation_is_cheap() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e6 * (y[0] - 2.0));
        let sol = Bdf::new().solve(&sys, 0.0, &[0.0], &[1.0, 10.0], &opts()).unwrap();
        assert!((sol.state_at(0)[0] - 2.0).abs() < 1e-4);
        assert!((sol.state_at(1)[0] - 2.0).abs() < 1e-4);
        assert!(sol.stats.steps < 2000, "stiff problem took {} BDF steps", sol.stats.steps);
        assert!(sol.stats.lu_decompositions > 0);
    }

    #[test]
    fn robertson_runs_to_long_times() {
        let sys = FnSystem::new(3, |_t, y, d| {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            d[2] = 3e7 * y[1] * y[1];
        });
        let times = [0.4, 4.0, 40.0, 400.0];
        let o = SolverOptions { max_steps: 100_000, ..opts() };
        let sol = Bdf::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &times, &o).unwrap();
        for s in &sol.states {
            assert!((s[0] + s[1] + s[2] - 1.0).abs() < 1e-5, "mass drift");
        }
        assert!((sol.state_at(0)[0] - 0.98517).abs() < 1e-3, "y1(0.4) = {}", sol.state_at(0)[0]);
    }

    #[test]
    fn agrees_with_radau_on_stiff_linear_problem() {
        let sys = FnSystem::new(1, |t, y, d| d[0] = -1e4 * (y[0] - t.sin()) + t.cos());
        let times = [1.0, 2.0];
        let a = Bdf::new().solve(&sys, 0.0, &[0.5], &times, &opts()).unwrap();
        let b = crate::Radau5::new().solve(&sys, 0.0, &[0.5], &times, &opts()).unwrap();
        for i in 0..times.len() {
            assert!(
                (a.state_at(i)[0] - b.state_at(i)[0]).abs() < 1e-4,
                "bdf {} vs radau {}",
                a.state_at(i)[0],
                b.state_at(i)[0]
            );
        }
    }

    #[test]
    fn bdf1_cap_behaves_like_first_order_method() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let tight =
            SolverOptions { max_steps: 1_000_000, ..SolverOptions::with_tolerances(1e-7, 1e-12) };
        let first = Bdf::with_max_order(1).solve(&sys, 0.0, &[1.0], &[1.0], &tight).unwrap();
        let fifth = Bdf::new().solve(&sys, 0.0, &[1.0], &[1.0], &tight).unwrap();
        assert!(
            first.stats.accepted > 3 * fifth.stats.accepted,
            "order-1 cap should cost many more steps: {} vs {}",
            first.stats.accepted,
            fifth.stats.accepted
        );
    }

    #[test]
    fn nonstiff_problem_still_correct() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let sol = Bdf::new().solve(&sys, 0.0, &[1.0, 0.0], &[3.0], &opts()).unwrap();
        assert!((sol.state_at(0)[0] - 3.0f64.cos()).abs() < 1e-4);
    }
}
