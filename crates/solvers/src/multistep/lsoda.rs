//! The LSODA-style dynamically switching solver.

use crate::multistep::adams::{drive, ADAMS_MAX_ORDER, BDF_MAX_ORDER};
use crate::multistep::core::NordsieckCore;
use crate::multistep::MethodFamily;
use crate::{OdeSolver, OdeSystem, Solution, SolveFailure, SolverOptions, SolverScratch};
use std::cell::Cell;

/// Probe the stiffness indicator every this many accepted steps.
const PROBE_INTERVAL: usize = 25;
/// Switch Adams → BDF when `h·|λ|` exceeds this (the functional corrector's
/// convergence limit is `h·|λ| ≈ l₁ ≲ 2`).
const TO_STIFF: f64 = 2.0;
/// Switch BDF → Adams when `h·|λ|` drops below this.
const TO_NONSTIFF: f64 = 0.5;

/// The LSODA baseline: variable-order Adams–Moulton and BDF with *dynamic*
/// switching, reimplementing the behaviour of the Livermore solver the
/// comparison study uses as its primary CPU reference.
///
/// The solver starts in the non-stiff (Adams) family and probes the
/// dominant Jacobian eigenvalue every few dozen steps; when the
/// error-controlled step is large enough that `h·|λ|` would defeat the
/// functional corrector, it switches to BDF, and back once the transient
/// ends.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, Lsoda, OdeSolver, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e5 * (y[0] - 1.0));
/// let sol = Lsoda::new().solve(&sys, 0.0, &[0.0], &[2.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lsoda {
    _private: (),
}

impl Lsoda {
    /// Creates the solver.
    pub fn new() -> Self {
        Lsoda { _private: () }
    }

    /// Drives a core (fresh or pooled) with the dynamic switching hook.
    fn run(
        core: &mut NordsieckCore,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let accepted_at_probe = Cell::new(0usize);
        drive(core, system, t0, y0, sample_times, options, |core, system, sol| {
            if sol.stats.accepted < accepted_at_probe.get() + PROBE_INTERVAL {
                return;
            }
            accepted_at_probe.set(sol.stats.accepted);
            let lambda = core.stiffness_probe(system, &mut sol.stats);
            let indicator = core.step_size() * lambda;
            match core.family {
                MethodFamily::Adams if indicator > TO_STIFF => {
                    core.switch_family(MethodFamily::Bdf, BDF_MAX_ORDER);
                }
                MethodFamily::Bdf if indicator < TO_NONSTIFF => {
                    core.switch_family(MethodFamily::Adams, ADAMS_MAX_ORDER);
                }
                _ => {}
            }
        })
    }
}

impl OdeSolver for Lsoda {
    fn name(&self) -> &'static str {
        "lsoda"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let mut core = NordsieckCore::new(MethodFamily::Adams, system.dim(), ADAMS_MAX_ORDER);
        Lsoda::run(&mut core, system, t0, y0, sample_times, options)
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        let core = scratch.nordsieck(MethodFamily::Adams, system.dim(), ADAMS_MAX_ORDER);
        Lsoda::run(core, system, t0, y0, sample_times, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnSystem, SolverError};

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn nonstiff_problem_stays_cheap() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let sol = Lsoda::new().solve(&sys, 0.0, &[1.0, 0.0], &[10.0], &opts()).unwrap();
        assert!((sol.state_at(0)[0] - 10.0f64.cos()).abs() < 1e-4);
    }

    #[test]
    fn stiff_problem_switches_and_succeeds() {
        // Robertson: Adams alone would blow the step budget; the switch to
        // BDF must keep the total step count moderate.
        let sys = FnSystem::new(3, |_t, y, d| {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            d[2] = 3e7 * y[1] * y[1];
        });
        let o = SolverOptions { max_steps: 100_000, ..opts() };
        let sol = Lsoda::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &[0.4, 40.0], &o).unwrap();
        assert!((sol.state_at(0)[0] - 0.98517).abs() < 1e-3);
        assert!((sol.state_at(0)[0] + sol.state_at(0)[1] + sol.state_at(0)[2] - 1.0).abs() < 1e-5);
        assert!(
            sol.stats.lu_decompositions > 0,
            "the stiff phase must have engaged BDF (LU count is 0)"
        );
    }

    #[test]
    fn switches_back_when_transient_ends() {
        // Stiff transient then slow smooth dynamics: after the transient the
        // indicator collapses and Adams resumes (visible as Jacobian probes
        // without further LU factorizations late in the run).
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = -1e4 * (y[0] - y[1]);
            d[1] = -0.01 * y[1];
        });
        let times: Vec<f64> = (1..=20).map(|i| i as f64 * 10.0).collect();
        let o = SolverOptions { max_steps: 100_000, ..opts() };
        let sol = Lsoda::new().solve(&sys, 0.0, &[1.0, 0.5], &times, &o).unwrap();
        let exact = 0.5 * (-0.01 * 200.0f64).exp();
        assert!((sol.last_state().unwrap()[1] - exact).abs() < 1e-4);
    }

    #[test]
    fn matches_radau_on_stiff_linear_system() {
        let sys = FnSystem::new(1, |t, y, d| d[0] = -5e4 * (y[0] - t.cos()));
        let o = SolverOptions { max_steps: 200_000, ..opts() };
        let sol = Lsoda::new().solve(&sys, 0.0, &[0.0], &[2.0], &o).unwrap();
        assert!((sol.state_at(0)[0] - 2.0f64.cos()).abs() < 1e-3);
    }

    #[test]
    fn step_budget_is_a_hard_deadline() {
        // The budget caps *total* attempted steps across all sampling
        // intervals, unlike max_steps which resets per sample.
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = -y[0] + y[1];
            d[1] = y[0] - 2.0 * y[1];
        });
        let o = SolverOptions { step_budget: Some(5), ..opts() };
        let err = Lsoda::new().solve(&sys, 0.0, &[1.0, 0.0], &[5.0, 10.0], &o).unwrap_err();
        assert!(
            matches!(err.error, SolverError::StepBudgetExhausted { budget: 5, .. }),
            "{}",
            err.error
        );
        assert!(err.stats.steps <= 5 + 1, "budget must bound work: {} steps", err.stats.steps);
    }
}
