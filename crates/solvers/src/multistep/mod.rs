//! Variable-step, variable-order multistep solvers in Nordsieck form.
//!
//! One core ([`core::NordsieckCore`]) implements the fixed-leading-
//! coefficient formulation shared by the ODEPACK/VODE lineage: the history
//! is the Nordsieck array `z = [y, h·ẏ, h²·ÿ/2!, …, hᵠ·y⁽ᵠ⁾/q!]`, a step is
//! *predict* (Pascal-triangle shift) then *correct* (solve the implicit
//! relation, distribute the correction with the method's `l` vector), and
//! step/order changes rescale or truncate the array.
//!
//! Two method families plug into the core:
//!
//! * **Adams–Moulton** (orders 1–12), corrected by functional iteration —
//!   efficient for non-stiff problems, useless under stiffness (the
//!   iteration stops converging, which is exactly the signal the LSODA
//!   switch uses);
//! * **BDF** (orders 1–5), corrected by modified Newton with a cached
//!   Jacobian and LU factorization — the stiff workhorse.
//!
//! On top of the core sit the two published CPU baselines:
//!
//! * [`Lsoda`] — starts non-stiff and *dynamically switches* between the
//!   families using a dominant-eigenvalue stiffness probe,
//! * [`Vode`] — picks the family once, up front, from the same probe.

mod adams;
mod bdf;
pub(crate) mod core;
mod lsoda;
mod vode;

pub use adams::AdamsMoulton;
pub use bdf::Bdf;
pub use lsoda::Lsoda;
pub use vode::Vode;

/// Which multistep family a solver is currently running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodFamily {
    /// Adams–Moulton with functional iteration (non-stiff).
    Adams,
    /// Backward differentiation formulae with Newton iteration (stiff).
    Bdf,
}

impl std::fmt::Display for MethodFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodFamily::Adams => write!(f, "adams"),
            MethodFamily::Bdf => write!(f, "bdf"),
        }
    }
}
