//! The shared Nordsieck predict–correct engine behind the Adams, BDF,
//! LSODA and VODE solvers.

use crate::multistep::MethodFamily;
use crate::{OdeSystem, SolverError, SolverOptions, StepStats};
use paraspace_linalg::{dominant_eigenvalue_estimate, weighted_rms_norm, LuFactor, Matrix};

/// Maximum corrector iterations per attempt.
const MAX_CORRECTOR_ITERS: usize = 4;
/// Corrector convergence safety: iteration must beat `0.33 / (q+2)`-ish.
const CONV_TOL_FACTOR: f64 = 0.33;
/// Error-test bias (CVODE's 6).
const BIAS_SAME: f64 = 6.0;
const BIAS_DOWN: f64 = 6.0;
const BIAS_UP: f64 = 10.0;
/// Growth threshold: do not bother changing `h` for less than this.
const ETA_MIN_CHANGE: f64 = 1.5;
const ETA_MAX: f64 = 10.0;
const ETA_MAX_FIRST: f64 = 1e4;
/// Refresh the Jacobian at least every this many steps.
const JAC_MAX_AGE: usize = 50;
/// Refactor when gamma drifts by more than this ratio.
const GAMMA_DRIFT: f64 = 0.3;

/// Computes the corrector-distribution vector `l` (length `q + 1`,
/// normalized to `l₀ = 1`) for a family at order `q` on a uniform history.
///
/// * BDF: coefficients of `Π_{i=1}^{q} (1 + x/i)`.
/// * Adams–Moulton: `l_j = m_{j-1} / (j·M₀)` with
///   `m(x) = Π_{i=1}^{q-1} (1 + x/i)` and `M₀ = Σ_i (−1)^i m_i/(i+1)`.
///
/// The Newton/functional-iteration coefficient is `γ = h / l₁`.
///
/// Writes into `l[..=q]`; the step loop passes a stack buffer so no heap
/// allocation happens per step.
pub(crate) fn l_coefficients_into(family: MethodFamily, q: usize, l: &mut [f64]) {
    assert!(q >= 1, "order must be at least 1");
    let l = &mut l[..q + 1];
    match family {
        MethodFamily::Bdf => {
            l.fill(0.0);
            l[0] = 1.0;
            for i in 1..=q {
                let inv = 1.0 / i as f64;
                for j in (1..=i).rev() {
                    l[j] += l[j - 1] * inv;
                }
            }
        }
        MethodFamily::Adams => {
            if q == 1 {
                l[0] = 1.0;
                l[1] = 1.0;
                return;
            }
            // m(x) = Π_{i=1}^{q-1} (1 + x/i), degree q-1.
            let mut m = [0.0f64; L_MAX];
            m[0] = 1.0;
            for i in 1..q {
                let inv = 1.0 / i as f64;
                for j in (1..=i).rev() {
                    m[j] += m[j - 1] * inv;
                }
            }
            let m0: f64 = m[..q]
                .iter()
                .enumerate()
                .map(|(i, &mi)| if i % 2 == 0 { mi / (i + 1) as f64 } else { -mi / (i + 1) as f64 })
                .sum();
            l.fill(0.0);
            l[0] = 1.0;
            for j in 1..=q {
                l[j] = m[j - 1] / (j as f64 * m0);
            }
        }
    }
}

/// Maximum length of an `l` vector (order ≤ 12 ⇒ 13 coefficients).
pub(crate) const L_MAX: usize = 13;

/// Allocating convenience wrapper around [`l_coefficients_into`].
#[cfg(test)]
pub(crate) fn l_coefficients(family: MethodFamily, q: usize) -> Vec<f64> {
    let mut l = vec![0.0; q + 1];
    l_coefficients_into(family, q, &mut l);
    l
}

/// Outcome the wrapper needs from one accepted step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepOutcome {
    /// Step size actually used.
    #[allow(dead_code)]
    pub h_used: f64,
    /// Corrector iterations of the accepted attempt (kept for engine-side
    /// instrumentation even where current engines read only the stats).
    #[allow(dead_code)]
    pub corrector_iters: usize,
}

/// The Nordsieck predict–correct integrator state.
pub(crate) struct NordsieckCore {
    pub family: MethodFamily,
    n: usize,
    max_order: usize,
    q: usize,
    /// Nordsieck columns 0..=q are valid.
    z: Vec<Vec<f64>>,
    t: f64,
    h: f64,
    scale: Vec<f64>,
    steps_at_order: usize,
    delta_prev: Option<Vec<f64>>,
    first_step: bool,
    // Newton machinery (BDF).
    jac: Matrix,
    lu: Option<LuFactor>,
    gamma_factored: f64,
    jac_age: usize,
    jac_current: bool,
    consecutive_err_fails: usize,
    consecutive_conv_fails: usize,
    // Pooled per-step buffers (fully written before read each use).
    corr_y: Vec<f64>,
    corr_f: Vec<f64>,
    corr_g: Vec<f64>,
    corr_rhs: Vec<f64>,
    corr_delta: Vec<f64>,
    f0_buf: Vec<f64>,
    diff_buf: Vec<f64>,
    // Retired iteration-matrix storage, reclaimed on re-factorization.
    m_store: Option<Matrix>,
}

impl NordsieckCore {
    pub fn new(family: MethodFamily, n: usize, max_order: usize) -> Self {
        NordsieckCore {
            family,
            n,
            max_order,
            q: 1,
            z: (0..max_order + 2).map(|_| vec![0.0; n]).collect(),
            t: 0.0,
            h: 0.0,
            scale: vec![0.0; n],
            steps_at_order: 0,
            delta_prev: None,
            first_step: true,
            jac: Matrix::zeros(n, n),
            lu: None,
            gamma_factored: 0.0,
            jac_age: usize::MAX,
            jac_current: false,
            consecutive_err_fails: 0,
            consecutive_conv_fails: 0,
            corr_y: vec![0.0; n],
            corr_f: vec![0.0; n],
            corr_g: vec![0.0; n],
            corr_rhs: vec![0.0; n],
            corr_delta: vec![0.0; n],
            f0_buf: vec![0.0; n],
            diff_buf: vec![0.0; n],
            m_store: None,
        }
    }

    /// The system dimension this core is sized for.
    pub(crate) fn dim(&self) -> usize {
        self.n
    }

    /// Re-targets a pooled core to `family`/`max_order` for a fresh solve
    /// ([`initialize`](Self::initialize) must follow, as in a fresh core).
    ///
    /// Stale history columns are harmless: `initialize` rewrites columns
    /// 0–1, and every higher column is zero-filled before first use on each
    /// order increase.
    pub(crate) fn reinit(&mut self, family: MethodFamily, max_order: usize) {
        self.family = family;
        self.max_order = max_order;
        if self.z.len() < max_order + 2 {
            let n = self.n;
            self.z.resize_with(max_order + 2, || vec![0.0; n]);
        }
        self.retire_lu();
    }

    /// Moves a retired LU factorization's storage into the reclaim slot so
    /// the next factorization reuses the allocation.
    fn retire_lu(&mut self) {
        if let Some(lu) = self.lu.take() {
            self.m_store = Some(lu.into_matrix());
        }
    }

    /// Prepares the integrator at `(t0, y0)` with initial step `h0`.
    pub fn initialize<S: OdeSystem + ?Sized>(
        &mut self,
        system: &S,
        t0: f64,
        y0: &[f64],
        h0: f64,
        opts: &SolverOptions,
        stats: &mut StepStats,
    ) {
        self.t = t0;
        self.h = h0;
        self.q = 1;
        self.steps_at_order = 0;
        self.delta_prev = None;
        self.first_step = true;
        self.jac_current = false;
        self.jac_age = usize::MAX;
        self.retire_lu();
        self.consecutive_err_fails = 0;
        self.consecutive_conv_fails = 0;
        self.z[0].copy_from_slice(y0);
        system.rhs(t0, y0, &mut self.f0_buf);
        stats.rhs_evals += 1;
        for i in 0..self.n {
            self.z[1][i] = h0 * self.f0_buf[i];
        }
        opts.error_scale(y0, &mut self.scale);
    }

    /// Current integration time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current order.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn order(&self) -> usize {
        self.q
    }

    /// Current step size.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Current state vector.
    pub fn state(&self) -> &[f64] {
        &self.z[0]
    }

    /// Interpolates the solution at `ts ∈ [t − h, t]` via the Nordsieck
    /// polynomial.
    pub fn interpolate(&self, ts: f64, out: &mut [f64]) {
        let s = if self.h == 0.0 { 0.0 } else { (ts - self.t) / self.h };
        for i in 0..self.n {
            let mut acc = self.z[self.q][i];
            for j in (0..self.q).rev() {
                acc = self.z[j][i] + s * acc;
            }
            out[i] = acc;
        }
    }

    /// Switches method family in place, keeping the solution history.
    ///
    /// The order is clamped to the new family's maximum and the Jacobian
    /// machinery reset (LSODA does the same on a method switch).
    pub fn switch_family(&mut self, family: MethodFamily, new_max_order: usize) {
        self.family = family;
        self.max_order = new_max_order;
        if self.q > new_max_order {
            self.q = new_max_order;
        }
        self.jac_current = false;
        self.retire_lu();
        self.jac_age = usize::MAX;
        self.steps_at_order = 0;
        self.delta_prev = None;
    }

    /// Estimates the dominant Jacobian eigenvalue magnitude at the current
    /// point (the stiffness probe used by the LSODA/VODE switching logic).
    pub fn stiffness_probe<S: OdeSystem + ?Sized>(
        &mut self,
        system: &S,
        stats: &mut StepStats,
    ) -> f64 {
        system.jacobian(self.t, &self.z[0], &mut self.jac);
        stats.jacobian_evals += 1;
        if !system.has_analytic_jacobian() {
            stats.rhs_evals += self.n + 1;
        }
        // The probe leaves a current Jacobian behind; BDF can reuse it.
        self.jac_current = true;
        self.jac_age = 0;
        self.retire_lu();
        dominant_eigenvalue_estimate(&self.jac)
    }

    fn predict(&mut self) {
        for k in 0..self.q {
            for j in (k..self.q).rev() {
                let (lo, hi) = self.z.split_at_mut(j + 1);
                let dst = &mut lo[j];
                let src = &hi[0];
                for i in 0..self.n {
                    dst[i] += src[i];
                }
            }
        }
    }

    fn retract(&mut self) {
        for k in 0..self.q {
            for j in (k..self.q).rev() {
                let (lo, hi) = self.z.split_at_mut(j + 1);
                let dst = &mut lo[j];
                let src = &hi[0];
                for i in 0..self.n {
                    dst[i] -= src[i];
                }
            }
        }
    }

    fn rescale(&mut self, eta: f64) {
        let mut r = 1.0;
        for j in 1..=self.q {
            r *= eta;
            for v in self.z[j].iter_mut() {
                *v *= r;
            }
        }
        self.h *= eta;
    }

    /// Runs the corrector at the already-predicted state.
    ///
    /// Returns `Ok(iters)` with the accumulated correction
    /// `Δ = y_corrected − y_predicted` left in `self.corr_delta`, or
    /// `Err(())` on convergence failure. All working storage is pooled.
    #[allow(clippy::result_unit_err)]
    fn correct<S: OdeSystem + ?Sized>(
        &mut self,
        system: &S,
        l1: f64,
        t_new: f64,
        stats: &mut StepStats,
    ) -> Result<usize, ()> {
        let n = self.n;
        let gamma = self.h / l1;
        self.corr_y.copy_from_slice(&self.z[0]);
        self.corr_delta.fill(0.0);
        let mut rate = 1.0f64;
        let mut norm_prev = 0.0f64;
        let conv_tol = CONV_TOL_FACTOR / (self.q as f64 + 2.0);

        if self.family == MethodFamily::Bdf {
            // Ensure a usable factorization of (I − γ J).
            let need_jac = !self.jac_current || self.jac_age >= JAC_MAX_AGE;
            let need_factor = need_jac
                || self.lu.is_none()
                || (self.gamma_factored - gamma).abs() > GAMMA_DRIFT * gamma.abs();
            if need_jac {
                system.jacobian(self.t, &self.z[0], &mut self.jac);
                stats.jacobian_evals += 1;
                if !system.has_analytic_jacobian() {
                    stats.rhs_evals += n + 1;
                }
                self.jac_current = true;
                self.jac_age = 0;
            }
            if need_factor {
                // Build I − γJ into reclaimed storage: the retired
                // factorization (or the reclaim slot) donates its matrix.
                let mut m = self
                    .lu
                    .take()
                    .map(LuFactor::into_matrix)
                    .or_else(|| self.m_store.take())
                    .filter(|m| m.rows() == n && m.cols() == n)
                    .unwrap_or_else(|| Matrix::zeros(n, n));
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] = -gamma * self.jac[(i, j)];
                    }
                    m[(i, i)] += 1.0;
                }
                match LuFactor::new(m) {
                    Ok(lu) => {
                        self.lu = Some(lu);
                        self.gamma_factored = gamma;
                        stats.lu_decompositions += 1;
                    }
                    Err(_) => return Err(()),
                }
            }
        }

        for iter in 0..MAX_CORRECTOR_ITERS {
            system.rhs(t_new, &self.corr_y, &mut self.corr_f);
            stats.rhs_evals += 1;
            stats.nonlinear_iters += 1;

            // Residual G = y − y_pred − (h f − z1_pred)/l1, where
            // y − y_pred = delta.
            for i in 0..n {
                self.corr_g[i] = self.corr_delta[i] - (self.h * self.corr_f[i] - self.z[1][i]) / l1;
            }
            for i in 0..n {
                self.corr_rhs[i] = -self.corr_g[i];
            }
            if self.family == MethodFamily::Bdf {
                let lu = self.lu.as_ref().expect("factorization exists for BDF");
                lu.solve_in_place(&mut self.corr_rhs);
                stats.linear_solves += 1;
            }
            for i in 0..n {
                self.corr_delta[i] += self.corr_rhs[i];
                self.corr_y[i] = self.z[0][i] + self.corr_delta[i];
            }
            let norm = weighted_rms_norm(&self.corr_rhs, &self.scale);
            if !norm.is_finite() {
                return Err(());
            }
            if iter > 0 && norm_prev > 0.0 {
                rate = (norm / norm_prev).max(0.05 * rate);
                if rate >= 2.0 {
                    return Err(()); // diverging
                }
            }
            let effective = if iter == 0 {
                norm
            } else {
                norm * (rate / (1.0 - rate.min(0.99))).clamp(1.0, 1e6)
            };
            if effective <= conv_tol || norm == 0.0 {
                return Ok(iter + 1);
            }
            norm_prev = norm;
        }
        Err(())
    }

    /// Advances one accepted step (internally retrying after error-test or
    /// convergence failures).
    pub fn step<S: OdeSystem + ?Sized>(
        &mut self,
        system: &S,
        opts: &SolverOptions,
        stats: &mut StepStats,
    ) -> Result<StepOutcome, SolverError> {
        loop {
            self.h = self.h.min(opts.max_step);
            if self.h.abs() <= f64::EPSILON * self.t.abs().max(1.0) {
                return Err(SolverError::StepSizeUnderflow { t: self.t });
            }
            let t_new = self.t + self.h;
            let mut l = [0.0f64; L_MAX];
            l_coefficients_into(self.family, self.q, &mut l);
            self.predict();
            stats.steps += 1;

            let corrected = self.correct(system, l[1], t_new, stats);
            let iters = match corrected {
                Ok(iters) => iters,
                Err(()) => {
                    // Convergence failure.
                    self.retract();
                    stats.rejected += 1;
                    self.consecutive_conv_fails += 1;
                    if self.consecutive_conv_fails > 10 {
                        return Err(SolverError::NonlinearSolveFailed {
                            t: self.t,
                            failures: self.consecutive_conv_fails,
                        });
                    }
                    if self.family == MethodFamily::Bdf && self.jac_age > 0 {
                        // Stale Jacobian was the likely culprit; retry at the
                        // same step with a fresh one.
                        self.jac_current = false;
                        continue;
                    }
                    self.rescale(0.25);
                    self.delta_prev = None;
                    continue;
                }
            };
            self.consecutive_conv_fails = 0;

            // Error test: the predictor-corrector difference estimates the
            // local truncation error up to a known constant.
            let err = weighted_rms_norm(&self.corr_delta, &self.scale) / (self.q as f64 + 1.0);
            if !err.is_finite() {
                return Err(SolverError::NonFiniteState { t: self.t });
            }

            if err > 1.0 {
                // Error-test failure: retract, shrink, maybe drop the order.
                self.retract();
                stats.rejected += 1;
                self.consecutive_err_fails += 1;
                self.delta_prev = None;
                if self.consecutive_err_fails > 7 {
                    return Err(SolverError::MaxStepsExceeded { t: self.t, max_steps: 7 });
                }
                if self.consecutive_err_fails > 3 {
                    if self.q > 1 {
                        self.q -= 1;
                        self.steps_at_order = 0;
                    }
                    self.rescale(0.1);
                } else {
                    let eta =
                        (1.0 / (BIAS_SAME * err).powf(1.0 / (self.q as f64 + 1.0))).clamp(0.1, 0.9);
                    self.rescale(eta);
                }
                continue;
            }

            // Accepted: fold the correction into the Nordsieck array.
            stats.accepted += 1;
            self.consecutive_err_fails = 0;
            for (j, &lj) in l[..=self.q].iter().enumerate() {
                for i in 0..self.n {
                    self.z[j][i] += lj * self.corr_delta[i];
                }
            }
            self.t = t_new;
            // The state moved, so J is now approximate — but modified
            // Newton tolerates that; keep it until it ages out or a
            // convergence failure forces a refresh (the ODEPACK policy).
            self.jac_age = self.jac_age.saturating_add(1);
            self.steps_at_order += 1;
            let h_used = self.h;
            opts.error_scale(&self.z[0], &mut self.scale);

            // Step/order adaptation.
            let eta_max = if self.first_step { ETA_MAX_FIRST } else { ETA_MAX };
            self.first_step = false;
            let eta_same = 1.0 / ((BIAS_SAME * err).powf(1.0 / (self.q as f64 + 1.0)) + 1e-6);

            if self.steps_at_order > self.q {
                // Candidate: order decrease.
                let eta_down = if self.q > 1 {
                    let err_down = weighted_rms_norm(&self.z[self.q], &self.scale);
                    1.0 / ((BIAS_DOWN * err_down).powf(1.0 / self.q as f64) + 1e-6)
                } else {
                    0.0
                };
                // Candidate: order increase.
                let eta_up = match (&self.delta_prev, self.q < self.max_order) {
                    (Some(prev), true) => {
                        for i in 0..self.n {
                            self.diff_buf[i] = self.corr_delta[i] - prev[i];
                        }
                        let err_up =
                            weighted_rms_norm(&self.diff_buf, &self.scale) / (self.q as f64 + 2.0);
                        1.0 / ((BIAS_UP * err_up).powf(1.0 / (self.q as f64 + 2.0)) + 1e-6)
                    }
                    _ => 0.0,
                };

                let best = eta_same.max(eta_down).max(eta_up);
                if best >= ETA_MIN_CHANGE {
                    if best == eta_up {
                        self.q += 1;
                        self.z[self.q].fill(0.0);
                    } else if best == eta_down {
                        self.q -= 1;
                    }
                    self.steps_at_order = 0;
                    self.delta_prev = None;
                    self.rescale(best.min(eta_max));
                    return Ok(StepOutcome { h_used, corrector_iters: iters });
                }
            } else if eta_same >= ETA_MIN_CHANGE {
                self.delta_prev = None;
                self.rescale(eta_same.min(eta_max));
                return Ok(StepOutcome { h_used, corrector_iters: iters });
            }
            match &mut self.delta_prev {
                Some(prev) => prev.copy_from_slice(&self.corr_delta),
                slot => *slot = Some(self.corr_delta.clone()),
            }
            return Ok(StepOutcome { h_used, corrector_iters: iters });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn bdf_l_coefficients_match_gear_tables() {
        // Gear's tables normalized to l0 = 1 (divide his l1-normalized rows
        // by l0): order 2 → [1, 3/2, 1/2].
        let l2 = l_coefficients(MethodFamily::Bdf, 2);
        assert!((l2[0] - 1.0).abs() < 1e-15);
        assert!((l2[1] - 1.5).abs() < 1e-15);
        assert!((l2[2] - 0.5).abs() < 1e-15);
        // Order 3: Π(1+x/i) = 1 + 11/6 x + x² + x³/6.
        let l3 = l_coefficients(MethodFamily::Bdf, 3);
        assert!((l3[1] - 11.0 / 6.0).abs() < 1e-15);
        assert!((l3[2] - 1.0).abs() < 1e-15);
        assert!((l3[3] - 1.0 / 6.0).abs() < 1e-15);
        // Newton coefficient γ/h = 1/l1 = 6/11 for BDF3 — the textbook value.
        assert!((1.0 / l3[1] - 6.0 / 11.0).abs() < 1e-15);
    }

    #[test]
    fn adams_l_coefficients_match_moulton_constants() {
        // γ/h = 1/l1 must equal the AM coefficient of f_n: 1/2, 5/12, 3/8,
        // 251/720 for orders 2..5.
        let expect = [0.5, 5.0 / 12.0, 3.0 / 8.0, 251.0 / 720.0];
        for (q, &c) in (2..=5).zip(expect.iter()) {
            let l = l_coefficients(MethodFamily::Adams, q);
            assert!((1.0 / l[1] - c).abs() < 1e-13, "order {q}: {} vs {c}", 1.0 / l[1]);
        }
        assert_eq!(l_coefficients(MethodFamily::Adams, 1), vec![1.0, 1.0]);
    }

    #[test]
    fn predict_retract_is_identity() {
        let mut core = NordsieckCore::new(MethodFamily::Bdf, 2, 5);
        core.q = 3;
        for j in 0..=3 {
            core.z[j] = vec![j as f64 + 1.0, -(j as f64)];
        }
        let saved: Vec<Vec<f64>> = core.z.iter().take(4).cloned().collect();
        core.predict();
        core.retract();
        for j in 0..=3 {
            for i in 0..2 {
                assert!((core.z[j][i] - saved[j][i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn predict_is_taylor_shift() {
        // With z = [y, h y', h² y''/2], prediction must produce the Taylor
        // polynomial value at t+h.
        let mut core = NordsieckCore::new(MethodFamily::Bdf, 1, 5);
        core.q = 2;
        core.z[0] = vec![1.0];
        core.z[1] = vec![0.5];
        core.z[2] = vec![0.25];
        core.predict();
        assert!((core.z[0][0] - 1.75).abs() < 1e-15);
        assert!((core.z[1][0] - 1.0).abs() < 1e-15); // h y' + 2·(h²y''/2)
        assert!((core.z[2][0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn single_bdf1_step_is_backward_euler() {
        // y' = -y, h = 0.1, backward Euler: y1 = y0 / 1.1.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let opts = SolverOptions::with_tolerances(1e-10, 1e-12);
        let mut stats = StepStats::default();
        let mut core = NordsieckCore::new(MethodFamily::Bdf, 1, 5);
        core.initialize(&sys, 0.0, &[1.0], 0.1, &opts, &mut stats);
        let out = core.step(&sys, &opts, &mut stats).unwrap();
        // The controller may have shrunk h before stepping; recompute.
        let h = out.h_used;
        let expect = 1.0 / (1.0 + h);
        assert!(
            (core.state()[0] - expect).abs() < 1e-6 * expect,
            "backward Euler mismatch: {} vs {expect}",
            core.state()[0]
        );
    }

    #[test]
    fn interpolation_matches_endpoints() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let opts = SolverOptions::default();
        let mut stats = StepStats::default();
        let mut core = NordsieckCore::new(MethodFamily::Adams, 1, 12);
        core.initialize(&sys, 0.0, &[1.0], 1e-4, &opts, &mut stats);
        let before = core.state()[0];
        let out = core.step(&sys, &opts, &mut stats).unwrap();
        let t = core.time();
        let mut buf = [0.0];
        core.interpolate(t, &mut buf);
        assert!((buf[0] - core.state()[0]).abs() < 1e-12);
        core.interpolate(t - out.h_used * core.step_size() / core.step_size(), &mut buf);
        // Interpolating back to t0 recovers roughly the initial state.
        let _ = before;
    }

    #[test]
    fn family_switch_preserves_state() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let opts = SolverOptions::default();
        let mut stats = StepStats::default();
        let mut core = NordsieckCore::new(MethodFamily::Adams, 1, 12);
        core.initialize(&sys, 0.0, &[1.0], 1e-4, &opts, &mut stats);
        for _ in 0..20 {
            core.step(&sys, &opts, &mut stats).unwrap();
        }
        let y = core.state()[0];
        let t = core.time();
        core.switch_family(MethodFamily::Bdf, 5);
        assert_eq!(core.state()[0], y);
        assert_eq!(core.time(), t);
        assert!(core.order() <= 5);
        // And it still integrates.
        core.step(&sys, &opts, &mut stats).unwrap();
        assert!(core.time() > t);
    }

    #[test]
    fn stiffness_probe_reports_large_eigenvalue() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -5e4 * y[0]);
        let opts = SolverOptions::default();
        let mut stats = StepStats::default();
        let mut core = NordsieckCore::new(MethodFamily::Adams, 1, 12);
        core.initialize(&sys, 0.0, &[1.0], 1e-8, &opts, &mut stats);
        let lam = core.stiffness_probe(&sys, &mut stats);
        assert!(lam > 1e4, "expected ≥ 5e4-ish, got {lam}");
    }

    #[test]
    fn order_climbs_on_smooth_problem() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let opts = SolverOptions::with_tolerances(1e-9, 1e-12);
        let mut stats = StepStats::default();
        let mut core = NordsieckCore::new(MethodFamily::Adams, 1, 12);
        core.initialize(&sys, 0.0, &[1.0], 1e-6, &opts, &mut stats);
        for _ in 0..200 {
            core.step(&sys, &opts, &mut stats).unwrap();
        }
        assert!(core.order() >= 3, "order stuck at {}", core.order());
    }
}
