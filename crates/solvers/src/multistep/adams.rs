//! The Adams–Moulton solver (non-stiff multistep) and the shared
//! sample-serving driver used by every multistep wrapper.

use crate::multistep::core::NordsieckCore;
use crate::multistep::MethodFamily;
use crate::system::check_inputs;
use crate::{
    initial_step_size, OdeSolver, OdeSystem, Solution, SolveFailure, SolverError, SolverOptions,
    SolverScratch,
};

/// Default maximum order for the Adams family (ODEPACK's 12).
pub(crate) const ADAMS_MAX_ORDER: usize = 12;
/// Default maximum order for the BDF family (ODEPACK's 5).
pub(crate) const BDF_MAX_ORDER: usize = 5;

/// Drives a configured [`NordsieckCore`] across the sample times, invoking
/// `after_step` after every accepted step (the hook the LSODA switching
/// logic uses; plain solvers pass a no-op).
pub(crate) fn drive<F>(
    core: &mut NordsieckCore,
    system: &dyn OdeSystem,
    t0: f64,
    y0: &[f64],
    sample_times: &[f64],
    options: &SolverOptions,
    mut after_step: F,
) -> Result<Solution, SolveFailure>
where
    F: FnMut(&mut NordsieckCore, &dyn OdeSystem, &mut Solution),
{
    let n = system.dim();
    check_inputs(n, y0, t0, sample_times, options)?;
    let mut sol = Solution::with_capacity(sample_times.len());
    if sample_times.is_empty() {
        return Ok(sol);
    }

    let mut f0 = vec![0.0; n];
    system.rhs(t0, y0, &mut f0);
    sol.stats.rhs_evals += 1;
    let h0 = options
        .initial_step
        .unwrap_or_else(|| initial_step_size(&system, t0, y0, &f0, 1.0, 1, options));
    sol.stats.rhs_evals += usize::from(options.initial_step.is_none());
    core.initialize(system, t0, y0, h0, options, &mut sol.stats);

    let mut next_sample = 0;
    while next_sample < sample_times.len() && sample_times[next_sample] <= t0 {
        sol.times.push(sample_times[next_sample]);
        sol.states.push(y0.to_vec());
        next_sample += 1;
    }

    let mut buf = vec![0.0; n];
    let mut steps_since_sample = 0usize;
    while next_sample < sample_times.len() {
        if let Some(budget) = options.step_budget {
            if sol.stats.steps >= budget {
                return Err(SolveFailure {
                    error: SolverError::StepBudgetExhausted { t: core.time(), budget },
                    stats: sol.stats,
                });
            }
        }
        if steps_since_sample >= options.max_steps {
            return Err(SolveFailure {
                error: SolverError::MaxStepsExceeded {
                    t: core.time(),
                    max_steps: options.max_steps,
                },
                stats: sol.stats,
            });
        }
        if let Err(error) = core.step(system, options, &mut sol.stats) {
            return Err(SolveFailure { error, stats: sol.stats });
        }
        steps_since_sample += 1;
        if !core.state().iter().all(|v| v.is_finite()) {
            return Err(SolveFailure {
                error: SolverError::NonFiniteState { t: core.time() },
                stats: sol.stats,
            });
        }
        while next_sample < sample_times.len() && sample_times[next_sample] <= core.time() {
            core.interpolate(sample_times[next_sample], &mut buf);
            sol.times.push(sample_times[next_sample]);
            sol.states.push(buf.clone());
            next_sample += 1;
            steps_since_sample = 0;
        }
        after_step(core, system, &mut sol);
    }
    Ok(sol)
}

/// Variable-order (1–12) Adams–Moulton with functional iteration.
///
/// The classical non-stiff multistep method: cheap per step (no linear
/// algebra), high attainable order, but the corrector iteration only
/// converges when `h·L ≲ 1`, so stiff problems grind it to a halt — the
/// behaviour the LSODA switch exploits as its stiffness signal.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{AdamsMoulton, FnSystem, OdeSolver, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
/// let sol = AdamsMoulton::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdamsMoulton {
    max_order: usize,
}

impl Default for AdamsMoulton {
    fn default() -> Self {
        AdamsMoulton::new()
    }
}

impl AdamsMoulton {
    /// Creates the solver with maximum order 12.
    pub fn new() -> Self {
        AdamsMoulton { max_order: ADAMS_MAX_ORDER }
    }

    /// Creates the solver with a custom maximum order (1–12).
    ///
    /// # Panics
    ///
    /// Panics if `max_order` is outside `1..=12`.
    pub fn with_max_order(max_order: usize) -> Self {
        assert!((1..=ADAMS_MAX_ORDER).contains(&max_order), "adams order must be in 1..=12");
        AdamsMoulton { max_order }
    }
}

impl OdeSolver for AdamsMoulton {
    fn name(&self) -> &'static str {
        "adams"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let mut core = NordsieckCore::new(MethodFamily::Adams, system.dim(), self.max_order);
        drive(&mut core, system, t0, y0, sample_times, options, |_, _, _| {})
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        let core = scratch.nordsieck(MethodFamily::Adams, system.dim(), self.max_order);
        drive(core, system, t0, y0, sample_times, options, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn decay_matches_analytic() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -2.0 * y[0]);
        let times = [0.5, 1.0, 3.0];
        let sol = AdamsMoulton::new()
            .solve(&sys, 0.0, &[1.0], &times, &SolverOptions::default())
            .unwrap();
        for (i, &t) in times.iter().enumerate() {
            let exact = (-2.0 * t).exp();
            assert!(
                (sol.state_at(i)[0] - exact).abs() < 1e-5 * exact.max(1e-3),
                "t={t}: {} vs {exact}",
                sol.state_at(i)[0]
            );
        }
    }

    #[test]
    fn oscillator_long_run() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let sol = AdamsMoulton::new()
            .solve(&sys, 0.0, &[1.0, 0.0], &[10.0], &SolverOptions::with_tolerances(1e-8, 1e-12))
            .unwrap();
        assert!((sol.state_at(0)[0] - 10.0f64.cos()).abs() < 1e-5);
        assert_eq!(sol.stats.lu_decompositions, 0, "adams must not factorize");
    }

    #[test]
    fn multistep_economy_beats_rk_on_smooth_problems() {
        // Per accepted step, Adams uses ≤ 4 RHS evaluations vs DOPRI5's 6 —
        // and reaches higher order.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -0.1 * y[0]);
        let opts = SolverOptions::with_tolerances(1e-8, 1e-12);
        let sol = AdamsMoulton::new().solve(&sys, 0.0, &[1.0], &[100.0], &opts).unwrap();
        assert!(
            sol.stats.rhs_evals < 5 * sol.stats.accepted + 50,
            "evals {} for {} steps",
            sol.stats.rhs_evals,
            sol.stats.accepted
        );
    }

    #[test]
    fn stiff_problem_is_painful_for_adams() {
        // The functional corrector forces tiny steps: either the budget
        // blows or vastly more steps are needed than Radau would use.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e5 * y[0] + 1e5);
        let opts = SolverOptions { max_steps: 2000, ..SolverOptions::default() };
        match AdamsMoulton::new().solve(&sys, 0.0, &[0.0], &[10.0], &opts) {
            Err(f) => {
                assert!(matches!(f.error, SolverError::MaxStepsExceeded { .. }), "{f}");
                assert!(f.stats.steps > 0);
            }
            Ok(sol) => {
                assert!(sol.stats.steps > 1000, "suspiciously cheap: {} steps", sol.stats.steps);
            }
        }
    }

    #[test]
    fn capped_order_is_respected() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let solver = AdamsMoulton::with_max_order(2);
        let tight = SolverOptions::with_tolerances(1e-10, 1e-13);
        let sol = solver.solve(&sys, 0.0, &[1.0], &[1.0], &tight).unwrap();
        // Order-2 cap at tight tolerance needs far more steps than order-12.
        let free = AdamsMoulton::new().solve(&sys, 0.0, &[1.0], &[1.0], &tight).unwrap();
        assert!(sol.stats.accepted > free.stats.accepted);
    }
}
