//! The VODE-style solver: one-shot method selection.

use crate::multistep::adams::{drive, ADAMS_MAX_ORDER, BDF_MAX_ORDER};
use crate::multistep::core::NordsieckCore;
use crate::multistep::MethodFamily;
use crate::{OdeSolver, OdeSystem, Solution, SolveFailure, SolverOptions, SolverScratch};
use paraspace_linalg::{dominant_eigenvalue_estimate, Matrix};

/// Classify as stiff when `|λ|·(t_end − t0)` exceeds this: the fast mode's
/// transient occupies a vanishing fraction of the integration window, so an
/// explicit-corrector method would be stability-limited nearly everywhere.
const STIFFNESS_SPAN_THRESHOLD: f64 = 250.0;

/// The VODE baseline: like [`crate::Lsoda`] built on the same Adams/BDF
/// core, but the method is chosen **once, up front**, from a heuristic on
/// the initial Jacobian — the published behavioural difference between the
/// two CPU reference solvers.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSolver, SolverOptions, Vode};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
/// let sol = Vode::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Vode {
    _private: (),
}

impl Vode {
    /// Creates the solver.
    pub fn new() -> Self {
        Vode { _private: () }
    }

    /// The up-front classification VODE applies before integrating: `true`
    /// means the BDF family will be used for the whole run.
    ///
    /// Exposed because the batch engine's phase P2 performs the same
    /// triage across whole simulation batches.
    pub fn classify_stiff(system: &dyn OdeSystem, t0: f64, y0: &[f64], t_end: f64) -> bool {
        let mut jac = Matrix::zeros(system.dim(), system.dim());
        system.jacobian(t0, y0, &mut jac);
        let lambda = dominant_eigenvalue_estimate(&jac);
        lambda * (t_end - t0).abs() > STIFFNESS_SPAN_THRESHOLD
    }

    /// Classifies, then drives a core (fresh or pooled) and charges the
    /// classification Jacobian to the stats.
    fn run(
        core: &mut NordsieckCore,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let mut sol = drive(core, system, t0, y0, sample_times, options, |_, _, _| {})?;
        // The classification itself costs one Jacobian.
        sol.stats.jacobian_evals += 1;
        if !system.has_analytic_jacobian() {
            sol.stats.rhs_evals += system.dim() + 1;
        }
        Ok(sol)
    }

    fn family_for(
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
    ) -> (MethodFamily, usize) {
        let t_end = sample_times.last().copied().unwrap_or(t0);
        if Vode::classify_stiff(system, t0, y0, t_end) {
            (MethodFamily::Bdf, BDF_MAX_ORDER)
        } else {
            (MethodFamily::Adams, ADAMS_MAX_ORDER)
        }
    }
}

impl OdeSolver for Vode {
    fn name(&self) -> &'static str {
        "vode"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let (family, max_order) = Vode::family_for(system, t0, y0, sample_times);
        let mut core = NordsieckCore::new(family, system.dim(), max_order);
        Vode::run(&mut core, system, t0, y0, sample_times, options)
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        let (family, max_order) = Vode::family_for(system, t0, y0, sample_times);
        let core = scratch.nordsieck(family, system.dim(), max_order);
        Vode::run(core, system, t0, y0, sample_times, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn classifies_stiff_and_nonstiff_correctly() {
        let stiff = FnSystem::new(1, |_t, y, d| d[0] = -1e5 * y[0]);
        let gentle = FnSystem::new(1, |_t, y, d| d[0] = -0.5 * y[0]);
        assert!(Vode::classify_stiff(&stiff, 0.0, &[1.0], 10.0));
        assert!(!Vode::classify_stiff(&gentle, 0.0, &[1.0], 10.0));
    }

    #[test]
    fn short_window_makes_stiff_system_effectively_nonstiff() {
        // Over a window comparable to the transient, explicit is fine.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e5 * y[0]);
        assert!(!Vode::classify_stiff(&sys, 0.0, &[1.0], 1e-4));
    }

    #[test]
    fn stiff_run_uses_bdf_machinery() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e5 * (y[0] - 1.0));
        let sol = Vode::new().solve(&sys, 0.0, &[0.0], &[1.0], &SolverOptions::default()).unwrap();
        assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-5);
        assert!(sol.stats.lu_decompositions > 0);
    }

    #[test]
    fn nonstiff_run_avoids_linear_algebra() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let sol = Vode::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default()).unwrap();
        assert_eq!(sol.stats.lu_decompositions, 0);
        assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-5);
    }

    #[test]
    fn misclassification_risk_documented_by_behaviour() {
        // A system that *becomes* stiff later: VODE's one-shot choice sticks
        // with Adams and pays for it (more steps than LSODA), which is the
        // published qualitative difference.
        let sys = FnSystem::new(1, |t, y, d| {
            let k = if t < 1.0 { 1.0 } else { 1e4 };
            d[0] = -k * (y[0] - 0.5);
        });
        let o = SolverOptions { max_steps: 500_000, ..SolverOptions::default() };
        let vode = Vode::new().solve(&sys, 0.0, &[1.0], &[3.0], &o);
        let lsoda = crate::Lsoda::new().solve(&sys, 0.0, &[1.0], &[3.0], &o);
        if let (Ok(v), Ok(l)) = (vode, lsoda) {
            assert!(
                v.stats.steps >= l.stats.steps,
                "vode {} vs lsoda {}",
                v.stats.steps,
                l.stats.steps
            );
        }
        // An Err from VODE (budget blown) also demonstrates the point.
    }
}
