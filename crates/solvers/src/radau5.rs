//! The Radau IIA method of order 5 (RADAU5).
//!
//! A faithful reimplementation of the Hairer–Wanner design for stiff
//! systems: the 3-stage Radau IIA collocation method, solved per step by a
//! simplified Newton iteration on transformed variables `w = (T⁻¹ ⊗ I) z`,
//! which block-diagonalizes the iteration matrix into **one real system**
//! `(γ/h·I − J)` and **one complex system** `((α+iβ)/h·I − J)` — the two LU
//! factorizations the GPU engine hands to its batched-LU substrate. The
//! method is strongly A-stable and S-stable (stiffly accurate), which is why
//! the engine routes every stiff or DOPRI5-defeated simulation here.
//!
//! Features carried over from the reference design: Jacobian reuse governed
//! by the Newton convergence rate `θ` (refresh only when `θ > 0.001`),
//! factorization reuse when the step barely changes, Gustafsson predictive
//! step control, embedded 3rd-order error estimate with the refined
//! re-evaluation on first/rejected steps, collocation-polynomial dense
//! output, and Newton extrapolation from the previous collocation
//! polynomial.

use crate::system::check_inputs;
use crate::{
    initial_step_size, OdeSolver, OdeSystem, Solution, SolveFailure, SolverError, SolverOptions,
    SolverScratch,
};
use paraspace_linalg::{weighted_rms_norm, CMatrix, CluFactor, Complex64, LuFactor, Matrix};

// Collocation-node radical √6 and the inverse eigenvalues of the Radau IIA
// coefficient matrix A, hoisted to compile-time constants shared with the
// lane-batched kernel ([`crate::Radau5Batch`]). The literals are the exact
// shortest-round-trip decimal forms of the values the old per-call helpers
// (`6.0f64.sqrt()` and the cube-root eigenvalue derivation) produced, so
// hoisting changes no result bit anywhere; `constant_bit_patterns_are_pinned`
// below proves it.
pub(crate) const SQ6: f64 = 2.449489742783178;
/// γ = U1: the real inverse eigenvalue (E1 carries γ/h on its diagonal).
pub(crate) const U1: f64 = 3.6378342527444962;
/// α of the complex inverse-eigenvalue pair α ± iβ, already divided by |λ|².
pub(crate) const ALPH: f64 = 2.6810828736277523;
/// β of the complex inverse-eigenvalue pair α ± iβ, already divided by |λ|².
pub(crate) const BETA: f64 = 3.0504301992474105;

// Transformation matrices T, T⁻¹ (Hairer & Wanner, radau5.f); shared with
// the lane-batched kernel.
pub(crate) const T11: f64 = 0.09123239487089295;
pub(crate) const T12: f64 = -0.1412552950209542;
pub(crate) const T13: f64 = -0.030029194105147424;
pub(crate) const T21: f64 = 0.241717932707107;
pub(crate) const T22: f64 = 0.204_129_352_293_799_93;
pub(crate) const T23: f64 = 0.3829421127572619;
pub(crate) const T31: f64 = 0.966048182615093;
// T32 = 1, T33 = 0.
pub(crate) const TI11: f64 = 4.325579890063155;
pub(crate) const TI12: f64 = 0.3391992518158099;
pub(crate) const TI13: f64 = 0.541_770_539_935_874_9;
pub(crate) const TI21: f64 = -4.178718591551905;
pub(crate) const TI22: f64 = -0.327_682_820_761_062_4;
pub(crate) const TI23: f64 = 0.476_623_554_500_550_44;
pub(crate) const TI31: f64 = -0.502_872_634_945_786_9;
pub(crate) const TI32: f64 = 2.571926949855605;
pub(crate) const TI33: f64 = -0.596_039_204_828_224_9;

// Controller constants (radau5.f defaults); shared with the lane-batched
// kernel.
pub(crate) const NIT: usize = 7;
pub(crate) const SAFE: f64 = 0.9;
pub(crate) const THET: f64 = 0.001;
pub(crate) const FACL: f64 = 5.0; // max shrink: h/5
pub(crate) const FACR: f64 = 0.125; // max growth: h/0.125 = 8h
pub(crate) const QUOT1: f64 = 1.0;
pub(crate) const QUOT2: f64 = 1.2;

/// The RADAU5 solver.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSolver, Radau5, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// // Severely stiff: y' = -10⁵(y - sin t) + cos t, exact y = sin t for y(0)=0.
/// let sys = FnSystem::new(1, |t, y, d| d[0] = -1e5 * (y[0] - t.sin()) + t.cos());
/// let sol = Radau5::new().solve(&sys, 0.0, &[0.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - 1.0f64.sin()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radau5 {
    _private: (),
}

impl Radau5 {
    /// Creates the solver.
    pub fn new() -> Self {
        Radau5 { _private: () }
    }
}

/// Per-integration mutable state, kept in one struct so the step routine
/// stays readable — and poolable across solves via
/// [`SolverScratch`](crate::SolverScratch).
pub(crate) struct RadauWorkspace {
    n: usize,
    jac: Matrix,
    lu_real: Option<LuFactor>,
    lu_complex: Option<CluFactor>,
    z1: Vec<f64>,
    z2: Vec<f64>,
    z3: Vec<f64>,
    w1: Vec<f64>,
    w2: Vec<f64>,
    w3: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    f3: Vec<f64>,
    stage: Vec<f64>,
    rhs_real: Vec<f64>,
    rhs_cplx: Vec<Complex64>,
    scale: Vec<f64>,
    // Dense output / extrapolation polynomial of the last accepted step.
    cont: [Vec<f64>; 4],
    cont_h: f64,
    have_cont: bool,
    // Pooled state / per-step buffers (all fully written before read).
    y: Vec<f64>,
    f0: Vec<f64>,
    extrap: Vec<f64>,
    tmp: Vec<f64>,
    err_v: Vec<f64>,
    f_ref: Vec<f64>,
    sample_buf: Vec<f64>,
    // Retired iteration-matrix storage, reclaimed so a re-factorization
    // reuses the allocation instead of making a new one.
    e1_store: Option<Matrix>,
    e2_store: Option<CMatrix>,
}

impl RadauWorkspace {
    pub(crate) fn new(n: usize) -> Self {
        let zeros = || vec![0.0; n];
        RadauWorkspace {
            n,
            jac: Matrix::zeros(n, n),
            lu_real: None,
            lu_complex: None,
            z1: zeros(),
            z2: zeros(),
            z3: zeros(),
            w1: zeros(),
            w2: zeros(),
            w3: zeros(),
            f1: zeros(),
            f2: zeros(),
            f3: zeros(),
            stage: zeros(),
            rhs_real: zeros(),
            rhs_cplx: vec![Complex64::ZERO; n],
            scale: zeros(),
            cont: [zeros(), zeros(), zeros(), zeros()],
            cont_h: 0.0,
            have_cont: false,
            y: zeros(),
            f0: zeros(),
            extrap: zeros(),
            tmp: zeros(),
            err_v: zeros(),
            f_ref: zeros(),
            sample_buf: zeros(),
            e1_store: None,
            e2_store: None,
        }
    }

    /// The system dimension this workspace is sized for.
    pub(crate) fn dim(&self) -> usize {
        self.n
    }

    /// Resets per-integration flags for a fresh solve, keeping every buffer
    /// (and reclaiming the previous solve's LU storage for reuse).
    pub(crate) fn reset(&mut self) {
        self.cont_h = 0.0;
        self.have_cont = false;
        if let Some(lu) = self.lu_real.take() {
            self.e1_store = Some(lu.into_matrix());
        }
        if let Some(lu) = self.lu_complex.take() {
            self.e2_store = Some(lu.into_matrix());
        }
    }

    /// Evaluates the collocation polynomial at `s = (t − t_accepted)/h_used`
    /// (`s ∈ [−1, 0]` interpolates, `s > 0` extrapolates) into `out`.
    fn eval_cont(&self, s: f64, out: &mut [f64]) {
        let c1 = (4.0 - SQ6) / 10.0;
        let c2 = (4.0 + SQ6) / 10.0;
        let c1m1 = c1 - 1.0;
        let c2m1 = c2 - 1.0;
        for i in 0..self.n {
            out[i] = self.cont[0][i]
                + s * (self.cont[1][i]
                    + (s - c2m1) * (self.cont[2][i] + (s - c1m1) * self.cont[3][i]));
        }
    }
}

impl OdeSolver for Radau5 {
    fn name(&self) -> &'static str {
        "radau5"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        self.solve_impl(
            system,
            t0,
            y0,
            sample_times,
            options,
            &mut RadauWorkspace::new(system.dim()),
        )
    }

    fn solve_pooled(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        scratch: &mut SolverScratch,
    ) -> Result<Solution, SolveFailure> {
        self.solve_impl(system, t0, y0, sample_times, options, scratch.radau(system.dim()))
    }
}

impl Radau5 {
    #[allow(clippy::too_many_lines)]
    fn solve_impl(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
        ws: &mut RadauWorkspace,
    ) -> Result<Solution, SolveFailure> {
        let n = system.dim();
        check_inputs(n, y0, t0, sample_times, options)?;
        let mut sol = Solution::with_capacity(sample_times.len());
        let t_end = match sample_times.last() {
            Some(&t) => t,
            None => return Ok(sol),
        };

        let c1 = (4.0 - SQ6) / 10.0;
        let c2 = (4.0 + SQ6) / 10.0;
        let c1mc2 = c1 - c2;
        let dd1 = -(13.0 + 7.0 * SQ6) / 3.0;
        let dd2 = (-13.0 + 7.0 * SQ6) / 3.0;
        let dd3 = -1.0 / 3.0;
        let (u1, alph, beta) = (U1, ALPH, BETA);

        let mut t = t0;
        ws.y.copy_from_slice(y0);
        system.rhs(t, &ws.y, &mut ws.f0);
        sol.stats.rhs_evals += 1;

        let mut next_sample = 0;
        while next_sample < sample_times.len() && sample_times[next_sample] <= t {
            sol.times.push(sample_times[next_sample]);
            sol.states.push(ws.y.clone());
            next_sample += 1;
        }
        if next_sample == sample_times.len() {
            return Ok(sol);
        }

        // Newton stopping tolerance (radau5's FNEWT).
        let uround = f64::EPSILON;
        let fnewt = (10.0 * uround / options.rel_tol).max(0.03f64.min(options.rel_tol.sqrt()));

        let mut h = options
            .initial_step
            .unwrap_or_else(|| initial_step_size(&system, t, &ws.y, &ws.f0, 1.0, 3, options));
        sol.stats.rhs_evals += usize::from(options.initial_step.is_none());
        h = h.min(options.max_step).min(t_end - t);

        let mut need_jacobian = true;
        let mut need_factor = true;
        let mut first = true;
        let mut last_rejected = false;
        let mut theta: f64;
        let mut faccon = 1.0f64;
        let mut hacc = h;
        let mut erracc = 1e-2f64;
        let mut steps_since_sample = 0usize;
        let mut singular_retries = 0usize;
        let mut newton_failures = 0usize;

        options.error_scale(&ws.y, &mut ws.scale);

        'steps: loop {
            if let Some(budget) = options.step_budget {
                if sol.stats.steps >= budget {
                    return Err(SolveFailure {
                        error: SolverError::StepBudgetExhausted { t, budget },
                        stats: sol.stats,
                    });
                }
            }
            if steps_since_sample >= options.max_steps {
                return Err(SolveFailure {
                    error: SolverError::MaxStepsExceeded { t, max_steps: options.max_steps },
                    stats: sol.stats,
                });
            }
            h = h.min(options.max_step).min(t_end - t);
            if h <= uround * t.abs().max(1.0) {
                return Err(SolveFailure {
                    error: SolverError::StepSizeUnderflow { t },
                    stats: sol.stats,
                });
            }

            if need_jacobian {
                system.jacobian(t, &ws.y, &mut ws.jac);
                sol.stats.jacobian_evals += 1;
                if !system.has_analytic_jacobian() {
                    sol.stats.rhs_evals += n + 1;
                }
                need_jacobian = false;
                need_factor = true;
            }
            if need_factor {
                let fac1 = u1 / h;
                // Build E1 = γ/h·I − J into reclaimed storage: the retired
                // factorization (or the reclaim slot) donates its matrix.
                let mut e1 = ws
                    .lu_real
                    .take()
                    .map(LuFactor::into_matrix)
                    .or_else(|| ws.e1_store.take())
                    .filter(|m| m.rows() == n && m.cols() == n)
                    .unwrap_or_else(|| Matrix::zeros(n, n));
                for (dst, &src) in e1.as_mut_slice().iter_mut().zip(ws.jac.as_slice()) {
                    *dst = -src;
                }
                for i in 0..n {
                    e1[(i, i)] += fac1;
                }
                let alphn = alph / h;
                let betan = beta / h;
                let mut e2 = ws
                    .lu_complex
                    .take()
                    .map(CluFactor::into_matrix)
                    .or_else(|| ws.e2_store.take())
                    .filter(|m| m.rows() == n && m.cols() == n)
                    .unwrap_or_else(|| CMatrix::zeros(n, n));
                for i in 0..n {
                    for j in 0..n {
                        e2[(i, j)] = Complex64::new(-ws.jac[(i, j)], 0.0);
                    }
                    e2[(i, i)] += Complex64::new(alphn, betan);
                }
                match (LuFactor::new(e1), CluFactor::new(e2)) {
                    (Ok(l1), Ok(l2)) => {
                        ws.lu_real = Some(l1);
                        ws.lu_complex = Some(l2);
                        sol.stats.lu_decompositions += 2;
                        singular_retries = 0;
                    }
                    _ => {
                        singular_retries += 1;
                        if singular_retries > 8 {
                            return Err(SolveFailure {
                                error: SolverError::SingularIterationMatrix { t },
                                stats: sol.stats,
                            });
                        }
                        h *= 0.5;
                        continue 'steps;
                    }
                }
                need_factor = false;
            }
            let fac1 = u1 / h;
            let alphn = alph / h;
            let betan = beta / h;

            // Newton starting values.
            if first || !ws.have_cont {
                ws.z1.fill(0.0);
                ws.z2.fill(0.0);
                ws.z3.fill(0.0);
                ws.w1.fill(0.0);
                ws.w2.fill(0.0);
                ws.w3.fill(0.0);
            } else {
                // Extrapolate the previous collocation polynomial.
                let ratio = h / ws.cont_h;
                let mut q = std::mem::take(&mut ws.extrap);
                for (ci, zi) in [(c1, 0usize), (c2, 1), (1.0, 2)] {
                    ws.eval_cont(ci * ratio, &mut q);
                    let z = match zi {
                        0 => &mut ws.z1,
                        1 => &mut ws.z2,
                        _ => &mut ws.z3,
                    };
                    for i in 0..n {
                        z[i] = q[i] - ws.cont[0][i];
                    }
                }
                ws.extrap = q;
                for i in 0..n {
                    ws.w1[i] = TI11 * ws.z1[i] + TI12 * ws.z2[i] + TI13 * ws.z3[i];
                    ws.w2[i] = TI21 * ws.z1[i] + TI22 * ws.z2[i] + TI23 * ws.z3[i];
                    ws.w3[i] = TI31 * ws.z1[i] + TI32 * ws.z2[i] + TI33 * ws.z3[i];
                }
            }

            // Simplified Newton iteration.
            faccon = faccon.max(uround).powf(0.8);
            theta = 2.0 * THET; // pessimistic until measured
            let mut dyno_old = 0.0f64;
            let mut thq_old = 0.0f64;
            let mut converged = false;
            let mut newton_iters = 0usize;

            for newt in 0..NIT {
                newton_iters = newt + 1;
                // Stage right-hand sides.
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z1[i];
                }
                system.rhs(t + c1 * h, &ws.stage, &mut ws.f1);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z2[i];
                }
                system.rhs(t + c2 * h, &ws.stage, &mut ws.f2);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z3[i];
                }
                system.rhs(t + h, &ws.stage, &mut ws.f3);
                sol.stats.rhs_evals += 3;
                sol.stats.nonlinear_iters += 1;

                // Transformed residuals.
                for i in 0..n {
                    let fw1 = TI11 * ws.f1[i] + TI12 * ws.f2[i] + TI13 * ws.f3[i];
                    let fw2 = TI21 * ws.f1[i] + TI22 * ws.f2[i] + TI23 * ws.f3[i];
                    let fw3 = TI31 * ws.f1[i] + TI32 * ws.f2[i] + TI33 * ws.f3[i];
                    ws.rhs_real[i] = fw1 - fac1 * ws.w1[i];
                    ws.rhs_cplx[i] = Complex64::new(
                        fw2 - (alphn * ws.w2[i] - betan * ws.w3[i]),
                        fw3 - (alphn * ws.w3[i] + betan * ws.w2[i]),
                    );
                }
                let lu_real = ws.lu_real.as_ref().expect("factorization exists");
                let lu_cplx = ws.lu_complex.as_ref().expect("factorization exists");
                lu_real.solve_in_place(&mut ws.rhs_real);
                lu_cplx.solve_in_place(&mut ws.rhs_cplx);
                sol.stats.linear_solves += 2;

                // Update w and compute the iteration displacement norm.
                let mut dyno = 0.0f64;
                for i in 0..n {
                    let d1 = ws.rhs_real[i];
                    let d2 = ws.rhs_cplx[i].re;
                    let d3 = ws.rhs_cplx[i].im;
                    ws.w1[i] += d1;
                    ws.w2[i] += d2;
                    ws.w3[i] += d3;
                    let s = ws.scale[i];
                    dyno += (d1 / s).powi(2) + (d2 / s).powi(2) + (d3 / s).powi(2);
                }
                let dyno = (dyno / (3 * n) as f64).sqrt();

                // Back-transform to z.
                for i in 0..n {
                    ws.z1[i] = T11 * ws.w1[i] + T12 * ws.w2[i] + T13 * ws.w3[i];
                    ws.z2[i] = T21 * ws.w1[i] + T22 * ws.w2[i] + T23 * ws.w3[i];
                    ws.z3[i] = T31 * ws.w1[i] + ws.w2[i];
                }

                if !dyno.is_finite() {
                    break; // divergence handled below
                }

                if newt > 0 {
                    let thq = dyno / dyno_old.max(f64::MIN_POSITIVE);
                    theta = if newt == 1 { thq } else { (thq * thq_old).sqrt() };
                    thq_old = thq;
                    if theta < 0.99 {
                        faccon = theta / (1.0 - theta);
                        let remaining = (NIT - 1 - newt) as i32;
                        let dyth = faccon * dyno * theta.powi(remaining) / fnewt;
                        if dyth >= 1.0 {
                            break; // predicted to miss the tolerance
                        }
                    } else {
                        break; // diverging
                    }
                }
                dyno_old = dyno.max(uround);

                if faccon * dyno <= fnewt && newt > 0 {
                    converged = true;
                    break;
                }
                // First iteration can also converge immediately.
                if newt == 0 && dyno <= 1e-1 * fnewt {
                    converged = true;
                    break;
                }
            }

            if !converged {
                // Newton failed: fresh Jacobian if stale, halve the step.
                newton_failures += 1;
                if newton_failures > 20 {
                    return Err(SolveFailure {
                        error: SolverError::NonlinearSolveFailed { t, failures: newton_failures },
                        stats: sol.stats,
                    });
                }
                sol.stats.rejected += 1;
                sol.stats.steps += 1;
                steps_since_sample += 1;
                need_jacobian = true; // conservative: rebuild at current y
                need_factor = true;
                h *= 0.5;
                ws.have_cont = false;
                continue 'steps;
            }
            newton_failures = 0;

            // Error estimate: err = || (γ/h I − J)⁻¹ (f0 + Σ ddᵢ zᵢ / h) ||.
            let lu_real = ws.lu_real.as_ref().expect("factorization exists");
            let hee1 = dd1 / h;
            let hee2 = dd2 / h;
            let hee3 = dd3 / h;
            for i in 0..n {
                ws.tmp[i] = hee1 * ws.z1[i] + hee2 * ws.z2[i] + hee3 * ws.z3[i];
                ws.err_v[i] = ws.tmp[i] + ws.f0[i];
            }
            lu_real.solve_in_place(&mut ws.err_v);
            sol.stats.linear_solves += 1;
            let mut err = weighted_rms_norm(&ws.err_v, &ws.scale).max(1e-10);

            if err >= 1.0 && (first || last_rejected) {
                // Refined estimate: evaluate f at the corrected point.
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.err_v[i];
                }
                system.rhs(t, &ws.stage, &mut ws.f_ref);
                sol.stats.rhs_evals += 1;
                for i in 0..n {
                    ws.err_v[i] = ws.f_ref[i] + ws.tmp[i];
                }
                lu_real.solve_in_place(&mut ws.err_v);
                sol.stats.linear_solves += 1;
                err = weighted_rms_norm(&ws.err_v, &ws.scale).max(1e-10);
            }

            sol.stats.steps += 1;
            steps_since_sample += 1;

            // Step-size proposal (radau5's controller).
            let fac = SAFE
                .min(SAFE * (1.0 + 2.0 * NIT as f64) / (newton_iters as f64 + 2.0 * NIT as f64));
            let mut quot = (err.powf(0.25) / fac).clamp(FACR, FACL);
            let mut h_new = h / quot;

            if err < 1.0 {
                // Accept.
                sol.stats.accepted += 1;
                if !first {
                    // Gustafsson predictive controller.
                    let facgus =
                        ((hacc / h) * (err * err / erracc).powf(0.25) / SAFE).clamp(FACR, FACL);
                    quot = quot.max(facgus);
                    h_new = h / quot;
                }
                hacc = h;
                erracc = err.max(1e-2);

                // Dense-output coefficients from the collocation polynomial.
                let c2m1 = c2 - 1.0;
                let c1m1 = c1 - 1.0;
                for i in 0..n {
                    let y_new = ws.y[i] + ws.z3[i];
                    ws.cont[0][i] = y_new;
                    let c1_term = (ws.z2[i] - ws.z3[i]) / c2m1;
                    let ak = (ws.z1[i] - ws.z2[i]) / c1mc2;
                    let mut acont3 = ws.z1[i] / c1;
                    acont3 = (ak - acont3) / c2;
                    let c2_term = (ak - c1_term) / c1m1;
                    ws.cont[1][i] = c1_term;
                    ws.cont[2][i] = c2_term;
                    ws.cont[3][i] = c2_term - acont3;
                }
                ws.cont_h = h;
                ws.have_cont = true;

                let t_new = t + h;
                // Serve samples inside (t, t_new].
                let mut sample_buf = std::mem::take(&mut ws.sample_buf);
                while next_sample < sample_times.len() && sample_times[next_sample] <= t_new {
                    let ts = sample_times[next_sample];
                    let s = ((ts - t_new) / h).clamp(-1.0, 0.0);
                    ws.eval_cont(s, &mut sample_buf);
                    sol.times.push(ts);
                    sol.states.push(sample_buf.clone());
                    next_sample += 1;
                    steps_since_sample = 0;
                }
                ws.sample_buf = sample_buf;

                // Advance the state (stiffly accurate: y_new = y + z3).
                for i in 0..n {
                    ws.y[i] += ws.z3[i];
                }
                if !ws.y.iter().all(|v| v.is_finite()) {
                    return Err(SolveFailure {
                        error: SolverError::NonFiniteState { t: t_new },
                        stats: sol.stats,
                    });
                }
                t = t_new;
                if next_sample == sample_times.len() {
                    return Ok(sol);
                }

                system.rhs(t, &ws.y, &mut ws.f0);
                sol.stats.rhs_evals += 1;
                options.error_scale(&ws.y, &mut ws.scale);

                // Jacobian / factorization reuse policy.
                need_jacobian = theta > THET;
                let quot_ratio = h_new / h;
                if !need_jacobian && (QUOT1..=QUOT2).contains(&quot_ratio) {
                    h_new = h; // keep the factorization
                } else {
                    need_factor = true;
                }
                if h_new > options.max_step {
                    need_factor = true;
                }
                h = h_new;
                first = false;
                last_rejected = false;
            } else {
                // Reject.
                sol.stats.rejected += 1;
                last_rejected = true;
                h = if first { 0.1 * h } else { h_new };
                need_factor = true;
                if theta > THET {
                    need_jacobian = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dopri5, FnSystem};

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn constant_bit_patterns_are_pinned() {
        // The hoisted constants must carry the exact bit patterns the old
        // per-call helpers computed, or hoisting would perturb every Radau
        // trajectory. Recompute the originals here and compare bits.
        let sq6 = 6.0f64.sqrt();
        assert_eq!(SQ6.to_bits(), sq6.to_bits(), "SQ6 drifted: {SQ6:?} vs {sq6:?}");

        let c81 = 81.0f64.powf(1.0 / 3.0);
        let c9 = 9.0f64.powf(1.0 / 3.0);
        let u1 = 30.0 / (6.0 + c81 - c9);
        let alph = (12.0 - c81 + c9) / 60.0;
        let beta = (c81 + c9) * 3.0f64.sqrt() / 60.0;
        let cno = alph * alph + beta * beta;
        assert_eq!(U1.to_bits(), u1.to_bits(), "U1 drifted: {U1:?} vs {u1:?}");
        assert_eq!(ALPH.to_bits(), (alph / cno).to_bits(), "ALPH drifted");
        assert_eq!(BETA.to_bits(), (beta / cno).to_bits(), "BETA drifted");

        // Absolute anchors so a change to both sides of the recomputation
        // (e.g. a libm sqrt change) cannot silently re-pin the constants.
        assert_eq!(SQ6.to_bits(), 0x4003988e1409212e);
        assert_eq!(U1.to_bits(), 0x400d1a48d83e731e);
        assert_eq!(ALPH.to_bits(), 0x400572db93e0c672);
        assert_eq!(BETA.to_bits(), 0x40086747f2c3fcb5);
    }

    #[test]
    fn step_budget_is_a_hard_deadline() {
        let o = SolverOptions { step_budget: Some(5), ..opts() };
        let err =
            Radau5::new().solve(&robertson(), 0.0, &[1.0, 0.0, 0.0], &[40.0], &o).unwrap_err();
        assert!(
            matches!(err.error, SolverError::StepBudgetExhausted { budget: 5, .. }),
            "{}",
            err.error
        );
    }

    /// Robertson's problem: the canonical stiff benchmark.
    fn robertson() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(3, |_t, y, d| {
            d[0] = -0.04 * y[0] + 1e4 * y[1] * y[2];
            d[1] = 0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] * y[1];
            d[2] = 3e7 * y[1] * y[1];
        })
    }

    #[test]
    fn stiff_linear_problem_matches_analytic() {
        // y' = -1e6 (y - sin t) + cos t ⇒ y = sin t + (y0) e^{-1e6 t}.
        let sys = FnSystem::new(1, |t, y, d| d[0] = -1e6 * (y[0] - t.sin()) + t.cos());
        let times = [0.5, 1.0, 2.0];
        let sol = Radau5::new().solve(&sys, 0.0, &[0.5], &times, &opts()).unwrap();
        // Interior samples go through the order-3 dense output, whose
        // interpolation error over the huge steps this problem permits can
        // exceed the step-local error estimate (a property shared with the
        // reference implementation); the final sample lands on a step
        // endpoint and must be sharp.
        for (i, &t) in times.iter().enumerate() {
            assert!(
                (sol.state_at(i)[0] - t.sin()).abs() < 1e-2,
                "t={t}: {} vs {}",
                sol.state_at(i)[0],
                t.sin()
            );
        }
        assert!(
            (sol.last_state().unwrap()[0] - 2.0f64.sin()).abs() < 1e-6,
            "endpoint must be sharp: {}",
            sol.last_state().unwrap()[0]
        );
        // Stiffness must not force millions of steps.
        assert!(sol.stats.steps < 500, "took {} steps", sol.stats.steps);
    }

    #[test]
    fn robertson_conserves_mass_and_reaches_equilibrium_shape() {
        let sys = robertson();
        let times = [0.4, 4.0, 40.0, 400.0, 4000.0];
        let sol = Radau5::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &times, &opts()).unwrap();
        for s in &sol.states {
            let total = s[0] + s[1] + s[2];
            assert!((total - 1.0).abs() < 1e-6, "mass drift: {total}");
            assert!(s[1] < 1e-3, "intermediate species must stay tiny: {}", s[1]);
        }
        // Monotone conversion of y0 into y2.
        for w in sol.states.windows(2) {
            assert!(w[1][0] < w[0][0]);
            assert!(w[1][2] > w[0][2]);
        }
        // Known reference magnitude at t = 0.4 (Hairer & Wanner).
        let s0 = sol.state_at(0);
        assert!((s0[0] - 0.9851721).abs() < 1e-4, "y1(0.4) = {}", s0[0]);
    }

    #[test]
    fn van_der_pol_mu_1000_completes_quickly() {
        let mu = 1000.0;
        let sys = FnSystem::new(2, move |_t, y, d| {
            d[0] = y[1];
            d[1] = mu * ((1.0 - y[0] * y[0]) * y[1]) - y[0];
        });
        let sol = Radau5::new().solve(&sys, 0.0, &[2.0, 0.0], &[1.0, 500.0], &opts()).unwrap();
        // The limit cycle keeps |x| ≲ 2.1.
        for s in &sol.states {
            assert!(s[0].abs() < 2.2, "x left the limit cycle: {}", s[0]);
        }
        assert!(sol.stats.steps < 5000, "van der Pol took {} steps", sol.stats.steps);
        assert!(sol.stats.lu_decompositions > 0);
        assert!(sol.stats.jacobian_evals > 0);
    }

    #[test]
    fn agrees_with_dopri5_on_nonstiff_problem() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let times = [1.0, 2.0, 5.0];
        let a = Radau5::new().solve(&sys, 0.0, &[1.0, 0.0], &times, &opts()).unwrap();
        let b = Dopri5::new().solve(&sys, 0.0, &[1.0, 0.0], &times, &opts()).unwrap();
        for i in 0..times.len() {
            assert!((a.state_at(i)[0] - b.state_at(i)[0]).abs() < 1e-5);
        }
    }

    #[test]
    fn dense_output_interpolates_inside_steps() {
        let sys = FnSystem::new(1, |t, y, d| d[0] = -1e4 * (y[0] - t.cos()));
        let times: Vec<f64> = (1..100).map(|i| i as f64 * 0.01).collect();
        let sol = Radau5::new().solve(&sys, 0.0, &[1.0], &times, &opts()).unwrap();
        // After the initial transient the solution locks onto cos t.
        for (i, &t) in times.iter().enumerate() {
            if t > 0.01 {
                assert!(
                    (sol.state_at(i)[0] - t.cos()).abs() < 1e-3,
                    "t={t}: {} vs {}",
                    sol.state_at(i)[0],
                    t.cos()
                );
            }
        }
        assert!(
            sol.stats.accepted < times.len(),
            "dense output must decouple sampling from stepping ({} steps)",
            sol.stats.accepted
        );
    }

    #[test]
    fn jacobian_reuse_keeps_evaluations_low() {
        // Linear constant-Jacobian problem: after the transient, θ stays
        // tiny and the Jacobian should be reused across most steps.
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = -500.0 * y[0] + 499.0 * y[1];
            d[1] = 499.0 * y[0] - 500.0 * y[1];
        });
        let sol = Radau5::new().solve(&sys, 0.0, &[2.0, 0.0], &[10.0], &opts()).unwrap();
        assert!(
            sol.stats.jacobian_evals * 2 < sol.stats.accepted.max(4),
            "jacobians {} vs accepted {}",
            sol.stats.jacobian_evals,
            sol.stats.accepted
        );
    }

    #[test]
    fn tighter_tolerance_means_smaller_error() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -2.0 * y[0]);
        let exact = (-2.0f64).exp();
        let loose = Radau5::new()
            .solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::with_tolerances(1e-4, 1e-8))
            .unwrap();
        let tight = Radau5::new()
            .solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::with_tolerances(1e-10, 1e-14))
            .unwrap();
        let e_loose = (loose.state_at(0)[0] - exact).abs();
        let e_tight = (tight.state_at(0)[0] - exact).abs();
        assert!(e_tight < e_loose);
        assert!(e_tight < 1e-9);
    }

    #[test]
    fn sample_at_t0_and_empty_times() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
        let sol = Radau5::new().solve(&sys, 0.0, &[5.0], &[0.0, 0.5], &opts()).unwrap();
        assert_eq!(sol.state_at(0)[0], 5.0);
        let empty = Radau5::new().solve(&sys, 0.0, &[5.0], &[], &opts()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn flame_propagation_problem() {
        // y' = y² − y³, y(0) = δ: stiff once y ≈ 1 (the "flame" ignites).
        let delta = 1e-4;
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0] - y[0] * y[0] * y[0]);
        let t_end = 2.0 / delta;
        let sol = Radau5::new().solve(&sys, 0.0, &[delta], &[t_end], &opts()).unwrap();
        assert!((sol.state_at(0)[0] - 1.0).abs() < 1e-4, "flame must saturate at 1");
        assert!(sol.stats.steps < 1000);
    }
}
