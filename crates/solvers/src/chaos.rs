//! Deterministic fault injection for resilience testing.
//!
//! Batches at parameter-space scale meet hostile members — non-finite
//! states, panicking right-hand sides, members whose step size collapses —
//! and the engines' containment and recovery machinery must be exercised
//! under *reproducible* versions of those faults. [`ChaosSystem`] wraps any
//! [`OdeSystem`] and injects a configured fault ([`FaultKind`]) when its
//! trigger fires ([`FaultTrigger`]): at a fixed integration time or at a
//! fixed RHS-call count. No RNG is involved anywhere, so an injected fault
//! fires at the identical point of the identical trajectory at any thread
//! count or lane width, and a retried attempt deterministically re-faults.
//!
//! Time triggers are the cross-path-safe choice: the scalar DOPRI5 and the
//! lane-batched lockstep solver evaluate bitwise-identical `(t, y)`
//! sequences per member, so a `t`-triggered fault fires identically on
//! both paths. Call-count triggers pin a fault to an exact evaluation
//! ordinal, which is useful for unit tests of a single solver.
//!
//! # Example
//!
//! ```
//! use paraspace_solvers::{ChaosSystem, Dopri5, FaultSpec, FnSystem, OdeSolver};
//! use paraspace_solvers::{SolverError, SolverOptions};
//!
//! let decay = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
//! let sys = ChaosSystem::new(decay, vec![FaultSpec::nan_at_time(0.5)]);
//! let err = Dopri5::new()
//!     .solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())
//!     .unwrap_err();
//! assert!(matches!(err.error, SolverError::NonFiniteState { .. }));
//! ```

use crate::OdeSystem;
use paraspace_linalg::Matrix;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Derivative magnitude of an injected stall: large enough that the error
/// controller must shrink the step far below the sampling scale.
const STALL_AMPLITUDE: f64 = 1e6;
/// Oscillation frequency of an injected stall: resolving it needs steps of
/// ~1e-8, so the member burns its whole step budget making no progress —
/// the deterministic stand-in for a slow-RHS hang.
const STALL_FREQUENCY: f64 = 1e8;

/// The kind of fault an injected [`FaultSpec`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The RHS writes NaN into every derivative component; the solver
    /// fails with `NonFiniteState` once step reduction gives up.
    Nan,
    /// The RHS panics; the executor's containment turns this into an
    /// `Internal` outcome instead of aborting the batch.
    Panic,
    /// The RHS becomes a huge fast oscillation the controller cannot step
    /// over: the member consumes steps without progress until its
    /// per-interval cap (`MaxStepsExceeded`) or total budget
    /// (`StepBudgetExhausted`) runs out.
    Stall,
}

/// When an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fires on every RHS evaluation with `t >= t_trigger`. Identical
    /// across the scalar and lane-batched paths (their per-member `(t, y)`
    /// sequences are bitwise equal).
    AtTime(f64),
    /// Fires from the `k`-th RHS evaluation (1-based) onward.
    AtRhsCall(u64),
}

/// One injected fault: what happens and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault to inject.
    pub kind: FaultKind,
    /// When it fires. Once triggered it stays triggered for every later
    /// evaluation (and for retried attempts), so recovery retries of a
    /// chaos member deterministically re-fault.
    pub trigger: FaultTrigger,
}

impl FaultSpec {
    /// NaN derivatives from integration time `t` onward.
    pub fn nan_at_time(t: f64) -> Self {
        FaultSpec { kind: FaultKind::Nan, trigger: FaultTrigger::AtTime(t) }
    }

    /// A panic on the first RHS evaluation with time `>= t`.
    pub fn panic_at_time(t: f64) -> Self {
        FaultSpec { kind: FaultKind::Panic, trigger: FaultTrigger::AtTime(t) }
    }

    /// A stalling RHS from integration time `t` onward.
    pub fn stall_at_time(t: f64) -> Self {
        FaultSpec { kind: FaultKind::Stall, trigger: FaultTrigger::AtTime(t) }
    }

    /// NaN derivatives from the `k`-th RHS call (1-based) onward.
    pub fn nan_at_call(k: u64) -> Self {
        FaultSpec { kind: FaultKind::Nan, trigger: FaultTrigger::AtRhsCall(k) }
    }

    /// A panic on the `k`-th RHS call (1-based).
    pub fn panic_at_call(k: u64) -> Self {
        FaultSpec { kind: FaultKind::Panic, trigger: FaultTrigger::AtRhsCall(k) }
    }

    /// A stalling RHS from the `k`-th RHS call (1-based) onward.
    pub fn stall_at_call(k: u64) -> Self {
        FaultSpec { kind: FaultKind::Stall, trigger: FaultTrigger::AtRhsCall(k) }
    }

    fn fires(&self, t: f64, call: u64) -> bool {
        match self.trigger {
            FaultTrigger::AtTime(at) => t >= at,
            FaultTrigger::AtRhsCall(k) => call >= k,
        }
    }
}

/// Faults assigned to batch members: the job-level plan consumed by the
/// engines, which wrap each covered member's system in a [`ChaosSystem`]
/// (and evict covered members from lockstep lane groups so a planned panic
/// cannot take co-scheduled members down with it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    members: BTreeMap<usize, Vec<FaultSpec>>,
}

impl FaultPlan {
    /// An empty plan (no faults anywhere).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `fault` for batch member `member` (builder style).
    pub fn with_fault(mut self, member: usize, fault: FaultSpec) -> Self {
        self.members.entry(member).or_default().push(fault);
        self
    }

    /// The faults planned for `member`, if any.
    pub fn faults_for(&self, member: usize) -> Option<&[FaultSpec]> {
        self.members.get(&member).map(|v| v.as_slice())
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of members with at least one planned fault.
    pub fn len(&self) -> usize {
        self.members.len()
    }
}

/// An [`OdeSystem`] wrapper that injects the configured faults into the
/// inner system's RHS.
///
/// The Jacobian passes through untouched (stiffness triage sees the clean
/// system; faults strike the integration itself). The RHS-call counter and
/// the per-fault latch live in [`Cell`]s because [`OdeSystem::rhs`] takes
/// `&self`. Fired faults latch: an adaptive solver rejects a faulted step
/// and retries with smaller `h`, whose stage times fall *before* a time
/// trigger — without the latch the member would creep toward the trigger
/// forever instead of failing, and the failure taxonomy would depend on
/// step-size history rather than on the injected fault.
#[derive(Debug)]
pub struct ChaosSystem<S> {
    inner: S,
    faults: Vec<FaultSpec>,
    calls: Cell<u64>,
    latched: Cell<u64>,
}

impl<S: OdeSystem> ChaosSystem<S> {
    /// Wraps `inner`, injecting `faults`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 faults are given (the latch is a bitmask).
    pub fn new(inner: S, faults: Vec<FaultSpec>) -> Self {
        assert!(faults.len() <= 64, "at most 64 faults per member");
        ChaosSystem { inner, faults, calls: Cell::new(0), latched: Cell::new(0) }
    }

    /// RHS evaluations observed so far (diagnostic).
    pub fn rhs_calls(&self) -> u64 {
        self.calls.get()
    }
}

impl<S: OdeSystem> OdeSystem for ChaosSystem<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let call = self.calls.get() + 1;
        self.calls.set(call);
        for (idx, fault) in self.faults.iter().enumerate() {
            let bit = 1u64 << idx;
            if self.latched.get() & bit == 0 && !fault.fires(t, call) {
                continue;
            }
            self.latched.set(self.latched.get() | bit);
            match fault.kind {
                FaultKind::Panic => {
                    panic!("chaos: injected panic at t = {t} (rhs call {call})")
                }
                FaultKind::Nan => {
                    dydt.fill(f64::NAN);
                    return;
                }
                FaultKind::Stall => {
                    for (i, d) in dydt.iter_mut().enumerate() {
                        *d = STALL_AMPLITUDE * (STALL_FREQUENCY * (t + i as f64)).sin();
                    }
                    return;
                }
            }
        }
        self.inner.rhs(t, y, dydt);
    }

    fn jacobian(&self, t: f64, y: &[f64], jac: &mut Matrix) {
        self.inner.jacobian(t, y, jac);
    }

    fn has_analytic_jacobian(&self) -> bool {
        self.inner.has_analytic_jacobian()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dopri5, FnSystem, OdeSolver, SolverError, SolverOptions};

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn clean_wrapper_is_transparent() {
        let reference =
            Dopri5::new().solve(&decay(), 0.0, &[1.0], &[1.0], &SolverOptions::default()).unwrap();
        let sys = ChaosSystem::new(decay(), vec![]);
        let wrapped =
            Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default()).unwrap();
        assert_eq!(reference, wrapped, "no faults ⇒ bitwise identical");
        assert!(sys.rhs_calls() > 0);
    }

    #[test]
    fn nan_fault_fails_with_non_finite_state() {
        let sys = ChaosSystem::new(decay(), vec![FaultSpec::nan_at_time(0.5)]);
        let err =
            Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default()).unwrap_err();
        assert!(matches!(err.error, SolverError::NonFiniteState { .. }));
        assert!(err.error.time().unwrap() < 0.5 + 1e-9, "fault strikes near its trigger");
    }

    #[test]
    fn panic_fault_panics_deterministically() {
        for _ in 0..2 {
            let sys = ChaosSystem::new(decay(), vec![FaultSpec::panic_at_time(0.25)]);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default());
            }));
            assert!(result.is_err(), "injected panic must fire on every attempt");
        }
    }

    #[test]
    fn stall_fault_exhausts_the_step_budget() {
        let sys = ChaosSystem::new(decay(), vec![FaultSpec::stall_at_time(0.5)]);
        let opts = SolverOptions { step_budget: Some(500), ..SolverOptions::default() };
        let err = Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &opts).unwrap_err();
        assert!(matches!(err.error, SolverError::StepBudgetExhausted { budget: 500, .. }));
        assert_eq!(err.stats.steps, 500, "the budget is a hard deadline");
    }

    #[test]
    fn call_count_trigger_fires_at_exact_ordinal() {
        let sys = ChaosSystem::new(decay(), vec![FaultSpec::nan_at_call(10)]);
        let err =
            Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default()).unwrap_err();
        assert!(matches!(err.error, SolverError::NonFiniteState { .. }));
        assert!(sys.rhs_calls() >= 10);
    }

    #[test]
    fn fault_plan_is_per_member() {
        let plan = FaultPlan::new()
            .with_fault(3, FaultSpec::nan_at_time(0.5))
            .with_fault(3, FaultSpec::panic_at_time(0.9))
            .with_fault(7, FaultSpec::stall_at_time(0.1));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.faults_for(3).unwrap().len(), 2);
        assert_eq!(plan.faults_for(7).unwrap().len(), 1);
        assert!(plan.faults_for(0).is_none());
        assert!(FaultPlan::new().is_empty());
    }
}
