//! Forward sensitivity analysis: integrate `ṡⱼ = J·sⱼ + ∂f/∂kⱼ` alongside
//! the state.
//!
//! Two integration strategies, mirroring the AMICI design split:
//!
//! * **Explicit (non-stiff)** — [`Dopri5Sens`] wraps the system and its
//!   `p` sensitivity columns as one augmented [`OdeSystem`] of dimension
//!   `n·(1+p)` ([`AugmentedSensSystem`]) and hands it to the ordinary
//!   [`Dopri5`]: the sensitivity columns ride through the solver as extra
//!   state, with full error control over every augmented component. The
//!   same augmented right-hand side batches through the lockstep SoA lanes
//!   (see `paraspace_core`'s batch adapter), and because each lane's
//!   arithmetic is an unshared dependency chain, per-member sensitivities
//!   are bitwise independent of lane width and thread count.
//!
//! * **Implicit (stiff)** — [`Radau5Sens`] runs the unmodified RADAU5
//!   state step and then propagates sensitivities *staggered*, after each
//!   accepted step: differentiating the converged collocation equations
//!   with respect to `kⱼ` gives a **linear** stage system
//!   `Vᵢ = h Σₗ aᵢₗ [J(y+Zₗ)(s+Vₗ) + Fₗ]` whose iteration matrix is exactly
//!   the state Newton's — so each column is solved by back-substitutions
//!   against the **already-factored** real/complex LU pair (the AMICI
//!   trick: sensitivities cost triangular solves, never new
//!   factorizations). Because the sensitivity solves read the state but
//!   never feed back into it, the state trajectory, step sequence, and
//!   acceptance decisions are **bitwise identical** to plain
//!   [`Radau5`](crate::Radau5).
//!
//! Both paths return a [`SensSolution`]: the state samples plus, per
//! sample, the `p × n` sensitivity block `∂y(t)/∂kⱼ` (param-major).
//! Initial sensitivities are zero (the initial state does not depend on
//! the rate constants).

use crate::radau5::{
    ALPH, BETA, FACL, FACR, NIT, QUOT1, QUOT2, SAFE, SQ6, T11, T12, T13, T21, T22, T23, T31, THET,
    TI11, TI12, TI13, TI21, TI22, TI23, TI31, TI32, TI33, U1,
};
use crate::system::check_inputs;
use crate::{
    initial_step_size, Dopri5, OdeSolver, OdeSystem, Solution, SolveFailure, SolverError,
    SolverOptions,
};
use paraspace_linalg::{
    weighted_rms_norm, CMatrix, CluFactor, Complex64, LuFactor, Matrix, SparsityPattern,
};
use std::cell::RefCell;

/// Extra iterations granted to the (linear) sensitivity stage solves past
/// the state Newton's `NIT`: they cost back-substitutions only and never
/// influence step control, so letting a stiff column contract a little
/// further is cheap.
const SENS_NIT: usize = NIT + 3;

/// An [`OdeSystem`] that also exposes the analytic parameter Jacobian
/// `∂f/∂k` for a chosen set of `p` parameters.
///
/// For mass-action (and every bundled saturating) rate law the flux is
/// linear in its rate constant, so `∂f/∂kⱼ` is a single stoichiometry
/// column scaled by the unit flux — cheap and exact (see
/// `CompiledOdes::dfdk_with` in `paraspace_rbm`).
pub trait SensOdeSystem: OdeSystem {
    /// Number of parameters `p` sensitivities are carried for.
    fn n_params(&self) -> usize;

    /// Writes `∂f/∂k` into `out`, **param-major**: column `j` (length `n`)
    /// at `out[j·n .. (j+1)·n]`.
    fn dfdk(&self, t: f64, y: &[f64], out: &mut [f64]);

    /// The structural sparsity of the state Jacobian, when fixed for every
    /// state (true for reaction networks). Lets the `J·s` contractions
    /// stream `nnz` instead of `n²` entries per column; entries outside
    /// the pattern MUST be exact zeros.
    fn jacobian_sparsity(&self) -> Option<SparsityPattern> {
        None
    }
}

impl<S: SensOdeSystem + ?Sized> SensOdeSystem for &S {
    fn n_params(&self) -> usize {
        (**self).n_params()
    }
    fn dfdk(&self, t: f64, y: &[f64], out: &mut [f64]) {
        (**self).dfdk(t, y, out)
    }
    fn jacobian_sparsity(&self) -> Option<SparsityPattern> {
        (**self).jacobian_sparsity()
    }
}

/// A [`Solution`] plus per-sample forward sensitivities.
#[derive(Debug, Clone, Default)]
pub struct SensSolution {
    /// The state samples and work counters.
    pub solution: Solution,
    /// Per sample: the `p × n` sensitivity block, param-major
    /// (`sens[s][j·n + i] = ∂yᵢ(tₛ)/∂kⱼ`).
    pub sens: Vec<Vec<f64>>,
}

impl SensSolution {
    /// Sensitivity column `∂y(t_sample)/∂k_param` (length `n`).
    pub fn sens_column(&self, sample: usize, param: usize, n: usize) -> &[f64] {
        &self.sens[sample][param * n..(param + 1) * n]
    }

    /// Splits a solution of the augmented system `[y; s₀; …; s_{p−1}]`
    /// (dimension `n·(1+p)`) back into state samples + sensitivity blocks.
    /// This is how lane-batched augmented trajectories (the SoA DOPRI5
    /// path) are rehydrated per member.
    pub fn from_augmented(sol: Solution, n: usize, p: usize) -> Self {
        split_augmented(sol, n, p)
    }
}

/// The augmented system `[y; s₀; …; s_{p−1}]` of dimension `n·(1+p)`:
/// state block first, then each sensitivity column, with
/// `ṡⱼ = J·sⱼ + ∂f/∂kⱼ`.
///
/// Feeding this to any explicit solver integrates sensitivities with full
/// error control over the augmented vector. The `J·sⱼ` contraction walks
/// the Jacobian sparsity pattern row by row in index order when the inner
/// system exposes one — the same accumulation order the lane-batched
/// adapter uses, so scalar and batched augmented trajectories agree
/// bitwise per lane.
pub struct AugmentedSensSystem<'a, S: SensOdeSystem + ?Sized> {
    inner: &'a S,
    n: usize,
    p: usize,
    sparsity: Option<SparsityPattern>,
    jac: RefCell<Matrix>,
    dfdk: RefCell<Vec<f64>>,
}

impl<'a, S: SensOdeSystem + ?Sized> AugmentedSensSystem<'a, S> {
    /// Wraps `inner` (dimension `n`, `p` parameters).
    pub fn new(inner: &'a S) -> Self {
        let n = inner.dim();
        let p = inner.n_params();
        AugmentedSensSystem {
            inner,
            n,
            p,
            sparsity: inner.jacobian_sparsity(),
            jac: RefCell::new(Matrix::zeros(n, n)),
            dfdk: RefCell::new(vec![0.0; p * n]),
        }
    }

    /// Builds the augmented initial state `[y0; 0; …; 0]`.
    pub fn augmented_initial_state(&self, y0: &[f64]) -> Vec<f64> {
        assert_eq!(y0.len(), self.n, "initial state length");
        let mut aug = vec![0.0; self.n * (1 + self.p)];
        aug[..self.n].copy_from_slice(y0);
        aug
    }
}

impl<S: SensOdeSystem + ?Sized> OdeSystem for AugmentedSensSystem<'_, S> {
    fn dim(&self) -> usize {
        self.n * (1 + self.p)
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.n;
        let (y_state, y_sens) = y.split_at(n);
        let (d_state, d_sens) = dydt.split_at_mut(n);
        self.inner.rhs(t, y_state, d_state);

        let mut jac = self.jac.borrow_mut();
        self.inner.jacobian(t, y_state, &mut jac);
        let mut fk = self.dfdk.borrow_mut();
        self.inner.dfdk(t, y_state, &mut fk);

        for j in 0..self.p {
            let s = &y_sens[j * n..(j + 1) * n];
            let out = &mut d_sens[j * n..(j + 1) * n];
            match &self.sparsity {
                Some(pat) => {
                    for i in 0..n {
                        let mut acc = fk[j * n + i];
                        for &m in pat.row(i) {
                            acc += jac[(i, m as usize)] * s[m as usize];
                        }
                        out[i] = acc;
                    }
                }
                None => {
                    for i in 0..n {
                        let mut acc = fk[j * n + i];
                        for m in 0..n {
                            acc += jac[(i, m)] * s[m];
                        }
                        out[i] = acc;
                    }
                }
            }
        }
    }
}

/// Splits an augmented-system solution back into state + sensitivities.
pub(crate) fn split_augmented(sol: Solution, n: usize, p: usize) -> SensSolution {
    let mut out = SensSolution {
        solution: Solution { times: sol.times, states: Vec::with_capacity(sol.states.len()), stats: sol.stats },
        sens: Vec::with_capacity(sol.states.len()),
    };
    for mut aug in sol.states {
        debug_assert_eq!(aug.len(), n * (1 + p));
        let sens = aug.split_off(n);
        out.solution.states.push(aug);
        out.sens.push(sens);
    }
    out
}

/// Forward sensitivities through DOPRI5 on the augmented system.
///
/// # Example
///
/// ```
/// use paraspace_linalg::Matrix;
/// use paraspace_solvers::{Dopri5Sens, OdeSystem, SensOdeSystem, SolverOptions};
///
/// // y' = -k y with k = 2: ∂y/∂k = -t·e^{-kt}.
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) { d[0] = -2.0 * y[0]; }
///     fn jacobian(&self, _t: f64, _y: &[f64], jac: &mut Matrix) { jac[(0, 0)] = -2.0; }
///     fn has_analytic_jacobian(&self) -> bool { true }
/// }
/// impl SensOdeSystem for Decay {
///     fn n_params(&self) -> usize { 1 }
///     fn dfdk(&self, _t: f64, y: &[f64], out: &mut [f64]) { out[0] = -y[0]; }
/// }
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sol = Dopri5Sens::new().solve(&Decay, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// let exact = -1.0 * (-2.0f64).exp();
/// assert!((sol.sens[0][0] - exact).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dopri5Sens {
    _private: (),
}

impl Dopri5Sens {
    /// Creates the solver.
    pub fn new() -> Self {
        Dopri5Sens { _private: () }
    }

    /// Integrates state + sensitivities, sampling at `sample_times`.
    ///
    /// # Errors
    ///
    /// Exactly [`Dopri5`]'s failure modes, on the augmented system.
    pub fn solve<S: SensOdeSystem + ?Sized>(
        &self,
        system: &S,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<SensSolution, SolveFailure> {
        let aug = AugmentedSensSystem::new(system);
        let y0_aug = aug.augmented_initial_state(y0);
        let sol = Dopri5::new().solve(&aug, t0, &y0_aug, sample_times, options)?;
        Ok(split_augmented(sol, system.dim(), system.n_params()))
    }
}

/// Per-solve workspace for [`Radau5Sens`]: the plain RADAU5 buffers plus
/// the staggered-sensitivity storage.
struct SensWorkspace {
    n: usize,
    p: usize,
    jac: Matrix,
    lu_real: Option<LuFactor>,
    lu_complex: Option<CluFactor>,
    z1: Vec<f64>,
    z2: Vec<f64>,
    z3: Vec<f64>,
    w1: Vec<f64>,
    w2: Vec<f64>,
    w3: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    f3: Vec<f64>,
    stage: Vec<f64>,
    rhs_real: Vec<f64>,
    rhs_cplx: Vec<Complex64>,
    scale: Vec<f64>,
    cont: [Vec<f64>; 4],
    cont_h: f64,
    have_cont: bool,
    y: Vec<f64>,
    f0: Vec<f64>,
    extrap: Vec<f64>,
    tmp: Vec<f64>,
    err_v: Vec<f64>,
    f_ref: Vec<f64>,
    sample_buf: Vec<f64>,
    // --- sensitivity state ---
    /// Current sensitivities, param-major (`sens[j·n + i] = ∂yᵢ/∂kⱼ`).
    sens: Vec<f64>,
    /// Stage Jacobians `J(y + Zᵢ)` at the converged collocation states.
    jac1: Matrix,
    jac2: Matrix,
    jac3: Matrix,
    /// Parameter forcings `∂f/∂k` at the converged stage states (`p×n`).
    fk1: Vec<f64>,
    fk2: Vec<f64>,
    fk3: Vec<f64>,
    /// Stage sensitivity increments `Vᵢ`, param-major (`p×n`).
    v1: Vec<f64>,
    v2: Vec<f64>,
    v3: Vec<f64>,
    /// Per-column transformed iterates / scratch (length `n`).
    sw1: Vec<f64>,
    sw2: Vec<f64>,
    sw3: Vec<f64>,
    g1: Vec<f64>,
    g2: Vec<f64>,
    g3: Vec<f64>,
    scale_s: Vec<f64>,
    /// Sensitivity dense-output coefficients (`p×n` each).
    cont_s: [Vec<f64>; 4],
    sens_sample_buf: Vec<f64>,
}

impl SensWorkspace {
    fn new(n: usize, p: usize) -> Self {
        let zn = || vec![0.0; n];
        let zpn = || vec![0.0; p * n];
        SensWorkspace {
            n,
            p,
            jac: Matrix::zeros(n, n),
            lu_real: None,
            lu_complex: None,
            z1: zn(),
            z2: zn(),
            z3: zn(),
            w1: zn(),
            w2: zn(),
            w3: zn(),
            f1: zn(),
            f2: zn(),
            f3: zn(),
            stage: zn(),
            rhs_real: zn(),
            rhs_cplx: vec![Complex64::ZERO; n],
            scale: zn(),
            cont: [zn(), zn(), zn(), zn()],
            cont_h: 0.0,
            have_cont: false,
            y: zn(),
            f0: zn(),
            extrap: zn(),
            tmp: zn(),
            err_v: zn(),
            f_ref: zn(),
            sample_buf: zn(),
            sens: zpn(),
            jac1: Matrix::zeros(n, n),
            jac2: Matrix::zeros(n, n),
            jac3: Matrix::zeros(n, n),
            fk1: zpn(),
            fk2: zpn(),
            fk3: zpn(),
            v1: zpn(),
            v2: zpn(),
            v3: zpn(),
            sw1: zn(),
            sw2: zn(),
            sw3: zn(),
            g1: zn(),
            g2: zn(),
            g3: zn(),
            scale_s: zn(),
            cont_s: [zpn(), zpn(), zpn(), zpn()],
            sens_sample_buf: zpn(),
        }
    }

    /// Evaluates the state collocation polynomial at
    /// `s = (t − t_accepted)/h` into `out` — identical to RADAU5's.
    fn eval_cont(&self, s: f64, out: &mut [f64]) {
        let c1 = (4.0 - SQ6) / 10.0;
        let c2 = (4.0 + SQ6) / 10.0;
        let c1m1 = c1 - 1.0;
        let c2m1 = c2 - 1.0;
        for i in 0..self.n {
            out[i] = self.cont[0][i]
                + s * (self.cont[1][i]
                    + (s - c2m1) * (self.cont[2][i] + (s - c1m1) * self.cont[3][i]));
        }
    }

    /// Evaluates every sensitivity column's collocation polynomial at `s`
    /// into `out` (`p×n`, param-major).
    fn eval_cont_sens(&self, s: f64, out: &mut [f64]) {
        let c1 = (4.0 - SQ6) / 10.0;
        let c2 = (4.0 + SQ6) / 10.0;
        let c1m1 = c1 - 1.0;
        let c2m1 = c2 - 1.0;
        for idx in 0..self.p * self.n {
            out[idx] = self.cont_s[0][idx]
                + s * (self.cont_s[1][idx]
                    + (s - c2m1) * (self.cont_s[2][idx] + (s - c1m1) * self.cont_s[3][idx]));
        }
    }
}

/// RADAU5 with staggered forward sensitivities.
///
/// The state integration is the unmodified [`Radau5`](crate::Radau5) step
/// loop — same Newton iteration, error estimate, controller, and
/// Jacobian-reuse policy — so the state trajectory and step statistics
/// counted by the state machinery are bitwise identical to the plain
/// solver. After each *accepted* step the `p` sensitivity columns are
/// advanced by solving the differentiated (linear) collocation equations
/// with the step's cached LU pair: per column, a short fixed-point
/// iteration of back-substitutions converging at the state Newton's rate.
/// Extra work surfaces in the returned stats as 3 Jacobian evaluations
/// per accepted step plus the sensitivity triangular solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radau5Sens {
    _private: (),
}

impl Radau5Sens {
    /// Creates the solver.
    pub fn new() -> Self {
        Radau5Sens { _private: () }
    }

    /// Integrates state + sensitivities, sampling at `sample_times`.
    ///
    /// # Errors
    ///
    /// Exactly [`Radau5`](crate::Radau5)'s failure modes.
    #[allow(clippy::too_many_lines)]
    pub fn solve<S: SensOdeSystem + ?Sized>(
        &self,
        system: &S,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<SensSolution, SolveFailure> {
        let n = system.dim();
        let p = system.n_params();
        check_inputs(n, y0, t0, sample_times, options)?;
        let sparsity = system.jacobian_sparsity();
        let mut ws = SensWorkspace::new(n, p);
        let mut sol = SensSolution::default();
        sol.solution = Solution::with_capacity(sample_times.len());
        let t_end = match sample_times.last() {
            Some(&t) => t,
            None => return Ok(sol),
        };

        let c1 = (4.0 - SQ6) / 10.0;
        let c2 = (4.0 + SQ6) / 10.0;
        let c1mc2 = c1 - c2;
        let dd1 = -(13.0 + 7.0 * SQ6) / 3.0;
        let dd2 = (-13.0 + 7.0 * SQ6) / 3.0;
        let dd3 = -1.0 / 3.0;
        let (u1, alph, beta) = (U1, ALPH, BETA);

        let mut t = t0;
        ws.y.copy_from_slice(y0);
        system.rhs(t, &ws.y, &mut ws.f0);
        sol.solution.stats.rhs_evals += 1;

        let mut next_sample = 0;
        while next_sample < sample_times.len() && sample_times[next_sample] <= t {
            sol.solution.times.push(sample_times[next_sample]);
            sol.solution.states.push(ws.y.clone());
            sol.sens.push(ws.sens.clone());
            next_sample += 1;
        }
        if next_sample == sample_times.len() {
            return Ok(sol);
        }

        let uround = f64::EPSILON;
        let fnewt = (10.0 * uround / options.rel_tol).max(0.03f64.min(options.rel_tol.sqrt()));

        let mut h = options
            .initial_step
            .unwrap_or_else(|| initial_step_size(&system, t, &ws.y, &ws.f0, 1.0, 3, options));
        sol.solution.stats.rhs_evals += usize::from(options.initial_step.is_none());
        h = h.min(options.max_step).min(t_end - t);

        let mut need_jacobian = true;
        let mut need_factor = true;
        let mut first = true;
        let mut last_rejected = false;
        let mut theta: f64;
        let mut faccon = 1.0f64;
        let mut hacc = h;
        let mut erracc = 1e-2f64;
        let mut steps_since_sample = 0usize;
        let mut singular_retries = 0usize;
        let mut newton_failures = 0usize;

        options.error_scale(&ws.y, &mut ws.scale);

        'steps: loop {
            if let Some(budget) = options.step_budget {
                if sol.solution.stats.steps >= budget {
                    return Err(SolveFailure {
                        error: SolverError::StepBudgetExhausted { t, budget },
                        stats: sol.solution.stats,
                    });
                }
            }
            if steps_since_sample >= options.max_steps {
                return Err(SolveFailure {
                    error: SolverError::MaxStepsExceeded { t, max_steps: options.max_steps },
                    stats: sol.solution.stats,
                });
            }
            h = h.min(options.max_step).min(t_end - t);
            if h <= uround * t.abs().max(1.0) {
                return Err(SolveFailure {
                    error: SolverError::StepSizeUnderflow { t },
                    stats: sol.solution.stats,
                });
            }

            if need_jacobian {
                system.jacobian(t, &ws.y, &mut ws.jac);
                sol.solution.stats.jacobian_evals += 1;
                if !system.has_analytic_jacobian() {
                    sol.solution.stats.rhs_evals += n + 1;
                }
                need_jacobian = false;
                need_factor = true;
            }
            if need_factor {
                let fac1 = u1 / h;
                let mut e1 = ws
                    .lu_real
                    .take()
                    .map(LuFactor::into_matrix)
                    .filter(|m| m.rows() == n && m.cols() == n)
                    .unwrap_or_else(|| Matrix::zeros(n, n));
                for (dst, &src) in e1.as_mut_slice().iter_mut().zip(ws.jac.as_slice()) {
                    *dst = -src;
                }
                for i in 0..n {
                    e1[(i, i)] += fac1;
                }
                let alphn = alph / h;
                let betan = beta / h;
                let mut e2 = ws
                    .lu_complex
                    .take()
                    .map(CluFactor::into_matrix)
                    .filter(|m| m.rows() == n && m.cols() == n)
                    .unwrap_or_else(|| CMatrix::zeros(n, n));
                for i in 0..n {
                    for j in 0..n {
                        e2[(i, j)] = Complex64::new(-ws.jac[(i, j)], 0.0);
                    }
                    e2[(i, i)] += Complex64::new(alphn, betan);
                }
                match (LuFactor::new(e1), CluFactor::new(e2)) {
                    (Ok(l1), Ok(l2)) => {
                        ws.lu_real = Some(l1);
                        ws.lu_complex = Some(l2);
                        sol.solution.stats.lu_decompositions += 2;
                        singular_retries = 0;
                    }
                    _ => {
                        singular_retries += 1;
                        if singular_retries > 8 {
                            return Err(SolveFailure {
                                error: SolverError::SingularIterationMatrix { t },
                                stats: sol.solution.stats,
                            });
                        }
                        h *= 0.5;
                        continue 'steps;
                    }
                }
                need_factor = false;
            }
            let fac1 = u1 / h;
            let alphn = alph / h;
            let betan = beta / h;

            // Newton starting values.
            if first || !ws.have_cont {
                ws.z1.fill(0.0);
                ws.z2.fill(0.0);
                ws.z3.fill(0.0);
                ws.w1.fill(0.0);
                ws.w2.fill(0.0);
                ws.w3.fill(0.0);
            } else {
                let ratio = h / ws.cont_h;
                let mut q = std::mem::take(&mut ws.extrap);
                for (ci, zi) in [(c1, 0usize), (c2, 1), (1.0, 2)] {
                    ws.eval_cont(ci * ratio, &mut q);
                    let z = match zi {
                        0 => &mut ws.z1,
                        1 => &mut ws.z2,
                        _ => &mut ws.z3,
                    };
                    for i in 0..n {
                        z[i] = q[i] - ws.cont[0][i];
                    }
                }
                ws.extrap = q;
                for i in 0..n {
                    ws.w1[i] = TI11 * ws.z1[i] + TI12 * ws.z2[i] + TI13 * ws.z3[i];
                    ws.w2[i] = TI21 * ws.z1[i] + TI22 * ws.z2[i] + TI23 * ws.z3[i];
                    ws.w3[i] = TI31 * ws.z1[i] + TI32 * ws.z2[i] + TI33 * ws.z3[i];
                }
            }

            // Simplified Newton iteration (identical to Radau5).
            faccon = faccon.max(uround).powf(0.8);
            theta = 2.0 * THET;
            let mut dyno_old = 0.0f64;
            let mut thq_old = 0.0f64;
            let mut converged = false;
            let mut newton_iters = 0usize;

            for newt in 0..NIT {
                newton_iters = newt + 1;
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z1[i];
                }
                system.rhs(t + c1 * h, &ws.stage, &mut ws.f1);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z2[i];
                }
                system.rhs(t + c2 * h, &ws.stage, &mut ws.f2);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z3[i];
                }
                system.rhs(t + h, &ws.stage, &mut ws.f3);
                sol.solution.stats.rhs_evals += 3;
                sol.solution.stats.nonlinear_iters += 1;

                for i in 0..n {
                    let fw1 = TI11 * ws.f1[i] + TI12 * ws.f2[i] + TI13 * ws.f3[i];
                    let fw2 = TI21 * ws.f1[i] + TI22 * ws.f2[i] + TI23 * ws.f3[i];
                    let fw3 = TI31 * ws.f1[i] + TI32 * ws.f2[i] + TI33 * ws.f3[i];
                    ws.rhs_real[i] = fw1 - fac1 * ws.w1[i];
                    ws.rhs_cplx[i] = Complex64::new(
                        fw2 - (alphn * ws.w2[i] - betan * ws.w3[i]),
                        fw3 - (alphn * ws.w3[i] + betan * ws.w2[i]),
                    );
                }
                let lu_real = ws.lu_real.as_ref().expect("factorization exists");
                let lu_cplx = ws.lu_complex.as_ref().expect("factorization exists");
                lu_real.solve_in_place(&mut ws.rhs_real);
                lu_cplx.solve_in_place(&mut ws.rhs_cplx);
                sol.solution.stats.linear_solves += 2;

                let mut dyno = 0.0f64;
                for i in 0..n {
                    let d1 = ws.rhs_real[i];
                    let d2 = ws.rhs_cplx[i].re;
                    let d3 = ws.rhs_cplx[i].im;
                    ws.w1[i] += d1;
                    ws.w2[i] += d2;
                    ws.w3[i] += d3;
                    let s = ws.scale[i];
                    dyno += (d1 / s).powi(2) + (d2 / s).powi(2) + (d3 / s).powi(2);
                }
                let dyno = (dyno / (3 * n) as f64).sqrt();

                for i in 0..n {
                    ws.z1[i] = T11 * ws.w1[i] + T12 * ws.w2[i] + T13 * ws.w3[i];
                    ws.z2[i] = T21 * ws.w1[i] + T22 * ws.w2[i] + T23 * ws.w3[i];
                    ws.z3[i] = T31 * ws.w1[i] + ws.w2[i];
                }

                if !dyno.is_finite() {
                    break;
                }

                if newt > 0 {
                    let thq = dyno / dyno_old.max(f64::MIN_POSITIVE);
                    theta = if newt == 1 { thq } else { (thq * thq_old).sqrt() };
                    thq_old = thq;
                    if theta < 0.99 {
                        faccon = theta / (1.0 - theta);
                        let remaining = (NIT - 1 - newt) as i32;
                        let dyth = faccon * dyno * theta.powi(remaining) / fnewt;
                        if dyth >= 1.0 {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                dyno_old = dyno.max(uround);

                if faccon * dyno <= fnewt && newt > 0 {
                    converged = true;
                    break;
                }
                if newt == 0 && dyno <= 1e-1 * fnewt {
                    converged = true;
                    break;
                }
            }

            if !converged {
                newton_failures += 1;
                if newton_failures > 20 {
                    return Err(SolveFailure {
                        error: SolverError::NonlinearSolveFailed { t, failures: newton_failures },
                        stats: sol.solution.stats,
                    });
                }
                sol.solution.stats.rejected += 1;
                sol.solution.stats.steps += 1;
                steps_since_sample += 1;
                need_jacobian = true;
                need_factor = true;
                h *= 0.5;
                ws.have_cont = false;
                continue 'steps;
            }
            newton_failures = 0;

            // Error estimate (identical to Radau5).
            let lu_real = ws.lu_real.as_ref().expect("factorization exists");
            let hee1 = dd1 / h;
            let hee2 = dd2 / h;
            let hee3 = dd3 / h;
            for i in 0..n {
                ws.tmp[i] = hee1 * ws.z1[i] + hee2 * ws.z2[i] + hee3 * ws.z3[i];
                ws.err_v[i] = ws.tmp[i] + ws.f0[i];
            }
            lu_real.solve_in_place(&mut ws.err_v);
            sol.solution.stats.linear_solves += 1;
            let mut err = weighted_rms_norm(&ws.err_v, &ws.scale).max(1e-10);

            if err >= 1.0 && (first || last_rejected) {
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.err_v[i];
                }
                system.rhs(t, &ws.stage, &mut ws.f_ref);
                sol.solution.stats.rhs_evals += 1;
                for i in 0..n {
                    ws.err_v[i] = ws.f_ref[i] + ws.tmp[i];
                }
                lu_real.solve_in_place(&mut ws.err_v);
                sol.solution.stats.linear_solves += 1;
                err = weighted_rms_norm(&ws.err_v, &ws.scale).max(1e-10);
            }

            sol.solution.stats.steps += 1;
            steps_since_sample += 1;

            let fac = SAFE
                .min(SAFE * (1.0 + 2.0 * NIT as f64) / (newton_iters as f64 + 2.0 * NIT as f64));
            let mut quot = (err.powf(0.25) / fac).clamp(FACR, FACL);
            let mut h_new = h / quot;

            if err < 1.0 {
                // Accept.
                sol.solution.stats.accepted += 1;
                if !first {
                    let facgus =
                        ((hacc / h) * (err * err / erracc).powf(0.25) / SAFE).clamp(FACR, FACL);
                    quot = quot.max(facgus);
                    h_new = h / quot;
                }
                hacc = h;
                erracc = err.max(1e-2);

                // --- Staggered sensitivity solves (the AMICI trick) ----
                // Differentiating the converged collocation equations
                // w.r.t. kⱼ gives the linear stage system
                //   Vᵢ = h Σₗ aᵢₗ [ Jₗ·(s + Vₗ) + Fₗⱼ ],  Jₗ = J(y + Zₗ),
                // whose transformed fixed-point iteration uses the exact
                // residual with the step's cached LU pair — only
                // back-substitutions, no new factorizations. The state
                // trajectory is untouched: nothing below writes y, z, h,
                // or the controller state.
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z1[i];
                }
                system.jacobian(t + c1 * h, &ws.stage, &mut ws.jac1);
                system.dfdk(t + c1 * h, &ws.stage, &mut ws.fk1);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z2[i];
                }
                system.jacobian(t + c2 * h, &ws.stage, &mut ws.jac2);
                system.dfdk(t + c2 * h, &ws.stage, &mut ws.fk2);
                for i in 0..n {
                    ws.stage[i] = ws.y[i] + ws.z3[i];
                }
                system.jacobian(t + h, &ws.stage, &mut ws.jac3);
                system.dfdk(t + h, &ws.stage, &mut ws.fk3);
                sol.solution.stats.jacobian_evals += 3;
                if !system.has_analytic_jacobian() {
                    sol.solution.stats.rhs_evals += 3 * (n + 1);
                }

                let c2m1 = c2 - 1.0;
                let c1m1 = c1 - 1.0;
                for j in 0..p {
                    let col = j * n..(j + 1) * n;
                    // Convergence scale from the column's own magnitude
                    // (updated against the running iterate below).
                    options.error_scale(&ws.sens[col.clone()], &mut ws.scale_s);
                    ws.v1[col.clone()].fill(0.0);
                    ws.v2[col.clone()].fill(0.0);
                    ws.v3[col.clone()].fill(0.0);
                    ws.sw1.fill(0.0);
                    ws.sw2.fill(0.0);
                    ws.sw3.fill(0.0);
                    for _ in 0..SENS_NIT {
                        // Gₗ = Jₗ·(s + Vₗ) + Fₗⱼ, streamed over the
                        // Jacobian sparsity when the system exposes one.
                        for (jacm, v, g, fk) in [
                            (&ws.jac1, &ws.v1, &mut ws.g1, &ws.fk1),
                            (&ws.jac2, &ws.v2, &mut ws.g2, &ws.fk2),
                            (&ws.jac3, &ws.v3, &mut ws.g3, &ws.fk3),
                        ] {
                            for i in 0..n {
                                ws.tmp[i] = ws.sens[j * n + i] + v[j * n + i];
                            }
                            match &sparsity {
                                Some(pat) => {
                                    for i in 0..n {
                                        let mut acc = fk[j * n + i];
                                        for &m in pat.row(i) {
                                            acc += jacm[(i, m as usize)] * ws.tmp[m as usize];
                                        }
                                        g[i] = acc;
                                    }
                                }
                                None => {
                                    for i in 0..n {
                                        let mut acc = fk[j * n + i];
                                        for m in 0..n {
                                            acc += jacm[(i, m)] * ws.tmp[m];
                                        }
                                        g[i] = acc;
                                    }
                                }
                            }
                        }
                        for i in 0..n {
                            let gw1 = TI11 * ws.g1[i] + TI12 * ws.g2[i] + TI13 * ws.g3[i];
                            let gw2 = TI21 * ws.g1[i] + TI22 * ws.g2[i] + TI23 * ws.g3[i];
                            let gw3 = TI31 * ws.g1[i] + TI32 * ws.g2[i] + TI33 * ws.g3[i];
                            ws.rhs_real[i] = gw1 - fac1 * ws.sw1[i];
                            ws.rhs_cplx[i] = Complex64::new(
                                gw2 - (alphn * ws.sw2[i] - betan * ws.sw3[i]),
                                gw3 - (alphn * ws.sw3[i] + betan * ws.sw2[i]),
                            );
                        }
                        let lu_real = ws.lu_real.as_ref().expect("factorization exists");
                        let lu_cplx = ws.lu_complex.as_ref().expect("factorization exists");
                        lu_real.solve_in_place(&mut ws.rhs_real);
                        lu_cplx.solve_in_place(&mut ws.rhs_cplx);
                        sol.solution.stats.linear_solves += 2;

                        let mut dyno = 0.0f64;
                        for i in 0..n {
                            let d1 = ws.rhs_real[i];
                            let d2 = ws.rhs_cplx[i].re;
                            let d3 = ws.rhs_cplx[i].im;
                            ws.sw1[i] += d1;
                            ws.sw2[i] += d2;
                            ws.sw3[i] += d3;
                            // Track the growing column so early steps (where
                            // s starts at 0 but V is O(h·F)) are judged
                            // relative to the incoming magnitude.
                            let sc = ws.scale_s[i]
                                .max(options.abs_tol + options.rel_tol * ws.v3[j * n + i].abs());
                            dyno += (d1 / sc).powi(2) + (d2 / sc).powi(2) + (d3 / sc).powi(2);
                        }
                        let dyno = (dyno / (3 * n) as f64).sqrt();

                        for i in 0..n {
                            ws.v1[j * n + i] = T11 * ws.sw1[i] + T12 * ws.sw2[i] + T13 * ws.sw3[i];
                            ws.v2[j * n + i] = T21 * ws.sw1[i] + T22 * ws.sw2[i] + T23 * ws.sw3[i];
                            ws.v3[j * n + i] = T31 * ws.sw1[i] + ws.sw2[i];
                        }
                        if !dyno.is_finite() || dyno <= fnewt {
                            break;
                        }
                    }
                    // Sensitivity dense-output coefficients (same
                    // collocation construction as the state, z → V).
                    for i in 0..n {
                        let v1i = ws.v1[j * n + i];
                        let v2i = ws.v2[j * n + i];
                        let v3i = ws.v3[j * n + i];
                        ws.cont_s[0][j * n + i] = ws.sens[j * n + i] + v3i;
                        let c1_term = (v2i - v3i) / c2m1;
                        let ak = (v1i - v2i) / c1mc2;
                        let mut acont3 = v1i / c1;
                        acont3 = (ak - acont3) / c2;
                        let c2_term = (ak - c1_term) / c1m1;
                        ws.cont_s[1][j * n + i] = c1_term;
                        ws.cont_s[2][j * n + i] = c2_term;
                        ws.cont_s[3][j * n + i] = c2_term - acont3;
                    }
                }
                // --- end staggered sensitivity solves ------------------

                // State dense-output coefficients.
                for i in 0..n {
                    let y_new = ws.y[i] + ws.z3[i];
                    ws.cont[0][i] = y_new;
                    let c1_term = (ws.z2[i] - ws.z3[i]) / c2m1;
                    let ak = (ws.z1[i] - ws.z2[i]) / c1mc2;
                    let mut acont3 = ws.z1[i] / c1;
                    acont3 = (ak - acont3) / c2;
                    let c2_term = (ak - c1_term) / c1m1;
                    ws.cont[1][i] = c1_term;
                    ws.cont[2][i] = c2_term;
                    ws.cont[3][i] = c2_term - acont3;
                }
                ws.cont_h = h;
                ws.have_cont = true;

                let t_new = t + h;
                let mut sample_buf = std::mem::take(&mut ws.sample_buf);
                let mut sens_buf = std::mem::take(&mut ws.sens_sample_buf);
                while next_sample < sample_times.len() && sample_times[next_sample] <= t_new {
                    let ts = sample_times[next_sample];
                    let s = ((ts - t_new) / h).clamp(-1.0, 0.0);
                    ws.eval_cont(s, &mut sample_buf);
                    ws.eval_cont_sens(s, &mut sens_buf);
                    sol.solution.times.push(ts);
                    sol.solution.states.push(sample_buf.clone());
                    sol.sens.push(sens_buf.clone());
                    next_sample += 1;
                    steps_since_sample = 0;
                }
                ws.sample_buf = sample_buf;
                ws.sens_sample_buf = sens_buf;

                // Advance state and sensitivities (stiffly accurate).
                for i in 0..n {
                    ws.y[i] += ws.z3[i];
                }
                for idx in 0..p * n {
                    ws.sens[idx] += ws.v3[idx];
                }
                if !ws.y.iter().all(|v| v.is_finite()) || !ws.sens.iter().all(|v| v.is_finite()) {
                    return Err(SolveFailure {
                        error: SolverError::NonFiniteState { t: t_new },
                        stats: sol.solution.stats,
                    });
                }
                t = t_new;
                if next_sample == sample_times.len() {
                    return Ok(sol);
                }

                system.rhs(t, &ws.y, &mut ws.f0);
                sol.solution.stats.rhs_evals += 1;
                options.error_scale(&ws.y, &mut ws.scale);

                need_jacobian = theta > THET;
                let quot_ratio = h_new / h;
                if !need_jacobian && (QUOT1..=QUOT2).contains(&quot_ratio) {
                    h_new = h;
                } else {
                    need_factor = true;
                }
                if h_new > options.max_step {
                    need_factor = true;
                }
                h = h_new;
                first = false;
                last_rejected = false;
            } else {
                sol.solution.stats.rejected += 1;
                last_rejected = true;
                h = if first { 0.1 * h } else { h_new };
                need_factor = true;
                if theta > THET {
                    need_jacobian = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Radau5, SolverOptions};

    /// y' = -k·y (k = 2): y = e^{-kt}, ∂y/∂k = -t·e^{-kt}.
    struct Decay {
        k: f64,
    }
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = -self.k * y[0];
        }
        fn jacobian(&self, _t: f64, _y: &[f64], jac: &mut Matrix) {
            jac[(0, 0)] = -self.k;
        }
        fn has_analytic_jacobian(&self) -> bool {
            true
        }
    }
    impl SensOdeSystem for Decay {
        fn n_params(&self) -> usize {
            1
        }
        fn dfdk(&self, _t: f64, y: &[f64], out: &mut [f64]) {
            out[0] = -y[0];
        }
    }

    /// Robertson with all three rate constants as sensitivity parameters.
    struct Robertson {
        k: [f64; 3],
    }
    impl OdeSystem for Robertson {
        fn dim(&self) -> usize {
            3
        }
        fn rhs(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            let [k1, k2, k3] = self.k;
            d[0] = -k1 * y[0] + k2 * y[1] * y[2];
            d[1] = k1 * y[0] - k2 * y[1] * y[2] - k3 * y[1] * y[1];
            d[2] = k3 * y[1] * y[1];
        }
        fn jacobian(&self, _t: f64, y: &[f64], jac: &mut Matrix) {
            let [k1, k2, k3] = self.k;
            jac[(0, 0)] = -k1;
            jac[(0, 1)] = k2 * y[2];
            jac[(0, 2)] = k2 * y[1];
            jac[(1, 0)] = k1;
            jac[(1, 1)] = -k2 * y[2] - 2.0 * k3 * y[1];
            jac[(1, 2)] = -k2 * y[1];
            jac[(2, 0)] = 0.0;
            jac[(2, 1)] = 2.0 * k3 * y[1];
            jac[(2, 2)] = 0.0;
        }
        fn has_analytic_jacobian(&self) -> bool {
            true
        }
    }
    impl SensOdeSystem for Robertson {
        fn n_params(&self) -> usize {
            3
        }
        fn dfdk(&self, _t: f64, y: &[f64], out: &mut [f64]) {
            // Column 0: ∂f/∂k1; column 1: ∂f/∂k2; column 2: ∂f/∂k3.
            out[0] = -y[0];
            out[1] = y[0];
            out[2] = 0.0;
            out[3] = y[1] * y[2];
            out[4] = -y[1] * y[2];
            out[5] = 0.0;
            out[6] = 0.0;
            out[7] = -y[1] * y[1];
            out[8] = y[1] * y[1];
        }
    }

    fn robertson_k() -> [f64; 3] {
        [0.04, 1e4, 3e7]
    }

    #[test]
    fn dopri5_sens_matches_analytic_decay() {
        let sys = Decay { k: 2.0 };
        let times = [0.5, 1.0, 2.0];
        let sol =
            Dopri5Sens::new().solve(&sys, 0.0, &[1.0], &times, &SolverOptions::default()).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let exact_y = (-2.0 * t).exp();
            let exact_s = -t * exact_y;
            assert!((sol.solution.state_at(i)[0] - exact_y).abs() < 1e-6);
            assert!(
                (sol.sens[i][0] - exact_s).abs() < 1e-6,
                "t={t}: sens {} vs exact {exact_s}",
                sol.sens[i][0]
            );
        }
    }

    #[test]
    fn radau5_sens_matches_analytic_decay() {
        let sys = Decay { k: 2.0 };
        let times = [0.5, 1.0, 2.0];
        let opts = SolverOptions::with_tolerances(1e-8, 1e-12);
        let sol = Radau5Sens::new().solve(&sys, 0.0, &[1.0], &times, &opts).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let exact_s = -t * (-2.0 * t).exp();
            assert!(
                (sol.sens[i][0] - exact_s).abs() < 1e-6,
                "t={t}: sens {} vs exact {exact_s}",
                sol.sens[i][0]
            );
        }
    }

    #[test]
    fn radau5_sens_state_trajectory_is_bitwise_plain_radau5() {
        // The staggered solves must not perturb the state path: states,
        // step counts, and acceptance decisions all identical.
        let sys = Robertson { k: robertson_k() };
        let times = [0.4, 4.0, 40.0, 400.0];
        let opts = SolverOptions::default();
        let plain = Radau5::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &times, &opts).unwrap();
        let sens = Radau5Sens::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &times, &opts).unwrap();
        assert_eq!(plain.states, sens.solution.states, "state samples must be bitwise equal");
        assert_eq!(plain.stats.steps, sens.solution.stats.steps);
        assert_eq!(plain.stats.accepted, sens.solution.stats.accepted);
        assert_eq!(plain.stats.rejected, sens.solution.stats.rejected);
        assert_eq!(plain.stats.rhs_evals, sens.solution.stats.rhs_evals);
    }

    /// Central finite-difference sensitivities from two full solves.
    fn fd_sens_radau(k: [f64; 3], which: usize, times: &[f64], opts: &SolverOptions) -> Vec<Vec<f64>> {
        let h = 1e-6 * k[which].abs().max(1e-12);
        let mut kp = k;
        kp[which] += h;
        let mut km = k;
        km[which] -= h;
        let up = Radau5::new().solve(&Robertson { k: kp }, 0.0, &[1.0, 0.0, 0.0], times, opts).unwrap();
        let um = Radau5::new().solve(&Robertson { k: km }, 0.0, &[1.0, 0.0, 0.0], times, opts).unwrap();
        up.states
            .iter()
            .zip(&um.states)
            .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y) / (2.0 * h)).collect())
            .collect()
    }

    #[test]
    fn radau5_sens_matches_finite_differences_on_robertson() {
        let k = robertson_k();
        let sys = Robertson { k };
        let times = [0.4, 4.0, 40.0];
        let opts = SolverOptions::with_tolerances(1e-10, 1e-14);
        let sol = Radau5Sens::new().solve(&sys, 0.0, &[1.0, 0.0, 0.0], &times, &opts).unwrap();
        for which in 0..3 {
            let fd = fd_sens_radau(k, which, &times, &opts);
            for (s_idx, fd_row) in fd.iter().enumerate() {
                for i in 0..3 {
                    let a = sol.sens[s_idx][which * 3 + i];
                    let f = fd_row[i];
                    let scale = a.abs().max(f.abs()).max(1e-12 / k[which]);
                    assert!(
                        (a - f).abs() <= 1e-4 * scale,
                        "k{which}, sample {s_idx}, species {i}: analytic {a} vs FD {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn dopri5_and_radau_sens_agree_on_nonstiff_problem() {
        let sys = Decay { k: 0.7 };
        let times = [1.0, 3.0];
        let opts = SolverOptions::with_tolerances(1e-9, 1e-13);
        let a = Dopri5Sens::new().solve(&sys, 0.0, &[2.0], &times, &opts).unwrap();
        let b = Radau5Sens::new().solve(&sys, 0.0, &[2.0], &times, &opts).unwrap();
        for i in 0..times.len() {
            assert!((a.sens[i][0] - b.sens[i][0]).abs() < 1e-6);
        }
    }

    #[test]
    fn samples_at_t0_carry_zero_sensitivity() {
        let sys = Decay { k: 1.0 };
        let sol = Radau5Sens::new()
            .solve(&sys, 0.0, &[1.0], &[0.0, 1.0], &SolverOptions::default())
            .unwrap();
        assert_eq!(sol.sens[0], vec![0.0]);
        assert!(sol.sens[1][0] != 0.0);
        let empty =
            Radau5Sens::new().solve(&sys, 0.0, &[1.0], &[], &SolverOptions::default()).unwrap();
        assert!(empty.solution.is_empty() && empty.sens.is_empty());
    }
}
