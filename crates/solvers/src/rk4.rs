//! Classic fixed-step 4th-order Runge–Kutta.
//!
//! Kept as a reference baseline (several Systems Biology tools expose a
//! fixed-step RK4 alongside their adaptive solvers) and as the ground-truth
//! generator for convergence tests: halving the step must reduce the error
//! by ~16×.

use crate::system::check_inputs;
use crate::{OdeSolver, OdeSystem, Solution, SolveFailure, SolverError, SolverOptions};

/// Fixed-step classical RK4.
///
/// Sampling times are hit exactly by shortening the final step of each
/// interval; interior accuracy is governed solely by the configured step.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSolver, Rk4, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
/// let sol = Rk4::with_step(1e-3).solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    step: f64,
}

impl Rk4 {
    /// A solver with the given fixed step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive and finite.
    pub fn with_step(step: f64) -> Self {
        assert!(step > 0.0 && step.is_finite(), "step must be positive and finite");
        Rk4 { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }
}

impl OdeSolver for Rk4 {
    fn name(&self) -> &'static str {
        "rk4"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let n = system.dim();
        check_inputs(n, y0, t0, sample_times, options)?;
        let mut sol = Solution::with_capacity(sample_times.len());
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut y_stage = vec![0.0; n];

        for &ts in sample_times {
            let mut steps_this_interval = 0usize;
            while t < ts {
                if let Some(budget) = options.step_budget {
                    if sol.stats.steps >= budget {
                        return Err(SolveFailure {
                            error: SolverError::StepBudgetExhausted { t, budget },
                            stats: sol.stats,
                        });
                    }
                }
                if steps_this_interval >= options.max_steps {
                    return Err(SolveFailure {
                        error: SolverError::MaxStepsExceeded { t, max_steps: options.max_steps },
                        stats: sol.stats,
                    });
                }
                let h = self.step.min(ts - t).min(options.max_step);
                system.rhs(t, &y, &mut k1);
                for i in 0..n {
                    y_stage[i] = y[i] + 0.5 * h * k1[i];
                }
                system.rhs(t + 0.5 * h, &y_stage, &mut k2);
                for i in 0..n {
                    y_stage[i] = y[i] + 0.5 * h * k2[i];
                }
                system.rhs(t + 0.5 * h, &y_stage, &mut k3);
                for i in 0..n {
                    y_stage[i] = y[i] + h * k3[i];
                }
                system.rhs(t + h, &y_stage, &mut k4);
                for i in 0..n {
                    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                }
                if !y.iter().all(|v| v.is_finite()) {
                    return Err(SolveFailure {
                        error: SolverError::NonFiniteState { t },
                        stats: sol.stats,
                    });
                }
                t += h;
                sol.stats.steps += 1;
                sol.stats.accepted += 1;
                sol.stats.rhs_evals += 4;
                steps_this_interval += 1;
            }
            sol.times.push(ts);
            sol.states.push(y.clone());
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn fourth_order_convergence() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0]);
        let exact = 1.0f64.exp();
        let opts = SolverOptions { max_steps: 1_000_000, ..SolverOptions::default() };
        let err_h = |h: f64| {
            let sol = Rk4::with_step(h).solve(&sys, 0.0, &[1.0], &[1.0], &opts).unwrap();
            (sol.state_at(0)[0] - exact).abs()
        };
        let e1 = err_h(0.1);
        let e2 = err_h(0.05);
        let ratio = e1 / e2;
        assert!((12.0..24.0).contains(&ratio), "expected ~16x error reduction, got {ratio}");
    }

    #[test]
    fn hits_sample_times_exactly() {
        let sys = FnSystem::new(1, |t, _y, d| d[0] = t);
        let sol = Rk4::with_step(0.3)
            .solve(&sys, 0.0, &[0.0], &[0.5, 1.0], &SolverOptions::default())
            .unwrap();
        assert!((sol.state_at(0)[0] - 0.125).abs() < 1e-12);
        assert!((sol.state_at(1)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeding_step_budget_reported() {
        let sys = FnSystem::new(1, |_t, _y, d| d[0] = 0.0);
        let opts = SolverOptions { max_steps: 10, ..SolverOptions::default() };
        let err = Rk4::with_step(1e-6).solve(&sys, 0.0, &[0.0], &[1.0], &opts).unwrap_err();
        assert!(matches!(err.error, SolverError::MaxStepsExceeded { .. }));
    }

    #[test]
    fn divergence_reported_as_non_finite() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = y[0] * y[0]);
        let opts = SolverOptions { max_steps: 1_000_000, ..SolverOptions::default() };
        let err = Rk4::with_step(0.05).solve(&sys, 0.0, &[3.0], &[10.0], &opts).unwrap_err();
        assert!(matches!(err.error, SolverError::NonFiniteState { .. }));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = Rk4::with_step(0.0);
    }
}
