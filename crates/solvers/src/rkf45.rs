//! The Runge–Kutta–Fehlberg 4(5) method.
//!
//! This is the non-stiff method of the fine-grained baseline simulator
//! (which pairs it with a first-order BDF under stiffness). Classic
//! Fehlberg: six stages, advance with the 4th-order solution, control with
//! the embedded 5th-order estimate. No dense output — sample times are hit
//! by clamping the step, which is exactly the behavioural difference from
//! [`crate::Dopri5`] the comparison experiments expose.

use crate::dopri5::NONFINITE_STRIKES;
use crate::system::check_inputs;
use crate::{
    initial_step_size, OdeSolver, OdeSystem, Solution, SolveFailure, SolverError, SolverOptions,
};
use paraspace_linalg::weighted_rms_norm;

const C2: f64 = 1.0 / 4.0;
const C3: f64 = 3.0 / 8.0;
const C4: f64 = 12.0 / 13.0;
const C6: f64 = 1.0 / 2.0;

const A21: f64 = 1.0 / 4.0;
const A31: f64 = 3.0 / 32.0;
const A32: f64 = 9.0 / 32.0;
const A41: f64 = 1932.0 / 2197.0;
const A42: f64 = -7200.0 / 2197.0;
const A43: f64 = 7296.0 / 2197.0;
const A51: f64 = 439.0 / 216.0;
const A52: f64 = -8.0;
const A53: f64 = 3680.0 / 513.0;
const A54: f64 = -845.0 / 4104.0;
const A61: f64 = -8.0 / 27.0;
const A62: f64 = 2.0;
const A63: f64 = -3544.0 / 2565.0;
const A64: f64 = 1859.0 / 4104.0;
const A65: f64 = -11.0 / 40.0;

// 4th-order weights (used to advance).
const B1: f64 = 25.0 / 216.0;
const B3: f64 = 1408.0 / 2565.0;
const B4: f64 = 2197.0 / 4104.0;
const B5: f64 = -1.0 / 5.0;

// Error weights e = b(5th) − b(4th).
const E1: f64 = 1.0 / 360.0;
const E3: f64 = -128.0 / 4275.0;
const E4: f64 = -2197.0 / 75240.0;
const E5: f64 = 1.0 / 50.0;
const E6: f64 = 2.0 / 55.0;

const SAFETY: f64 = 0.9;

/// The RKF45 solver.
///
/// # Example
///
/// ```
/// use paraspace_solvers::{FnSystem, OdeSolver, Rkf45, SolverOptions};
///
/// # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
/// let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
/// let sol = Rkf45::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
/// assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rkf45 {
    _private: (),
}

impl Rkf45 {
    /// Creates the solver.
    pub fn new() -> Self {
        Rkf45 { _private: () }
    }
}

impl OdeSolver for Rkf45 {
    fn name(&self) -> &'static str {
        "rkf45"
    }

    fn solve(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        sample_times: &[f64],
        options: &SolverOptions,
    ) -> Result<Solution, SolveFailure> {
        let n = system.dim();
        check_inputs(n, y0, t0, sample_times, options)?;
        let mut sol = Solution::with_capacity(sample_times.len());
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut k: Vec<Vec<f64>> = (0..6).map(|_| vec![0.0; n]).collect();
        let mut y_stage = vec![0.0; n];
        let mut y_new = vec![0.0; n];
        let mut err_vec = vec![0.0; n];
        let mut scale = vec![0.0; n];

        system.rhs(t, &y, &mut k[0]);
        sol.stats.rhs_evals += 1;
        let mut h = options
            .initial_step
            .unwrap_or_else(|| initial_step_size(&system, t, &y, &k[0], 1.0, 4, options));
        sol.stats.rhs_evals += usize::from(options.initial_step.is_none());
        let mut nonfinite_strikes = 0usize;

        for &ts in sample_times {
            if ts <= t {
                sol.times.push(ts);
                sol.states.push(y.clone());
                continue;
            }
            let mut steps_this_interval = 0usize;
            while t < ts {
                if let Some(budget) = options.step_budget {
                    if sol.stats.steps >= budget {
                        return Err(SolveFailure {
                            error: SolverError::StepBudgetExhausted { t, budget },
                            stats: sol.stats,
                        });
                    }
                }
                if steps_this_interval >= options.max_steps {
                    return Err(SolveFailure {
                        error: SolverError::MaxStepsExceeded { t, max_steps: options.max_steps },
                        stats: sol.stats,
                    });
                }
                let h_try = h.min(options.max_step).min(ts - t);
                if h_try <= f64::EPSILON * t.abs().max(1.0) {
                    return Err(SolveFailure {
                        error: SolverError::StepSizeUnderflow { t },
                        stats: sol.stats,
                    });
                }

                system.rhs(t, &y, &mut k[0]);
                for i in 0..n {
                    y_stage[i] = y[i] + h_try * A21 * k[0][i];
                }
                system.rhs(t + C2 * h_try, &y_stage, &mut k[1]);
                for i in 0..n {
                    y_stage[i] = y[i] + h_try * (A31 * k[0][i] + A32 * k[1][i]);
                }
                system.rhs(t + C3 * h_try, &y_stage, &mut k[2]);
                for i in 0..n {
                    y_stage[i] = y[i] + h_try * (A41 * k[0][i] + A42 * k[1][i] + A43 * k[2][i]);
                }
                system.rhs(t + C4 * h_try, &y_stage, &mut k[3]);
                for i in 0..n {
                    y_stage[i] = y[i]
                        + h_try * (A51 * k[0][i] + A52 * k[1][i] + A53 * k[2][i] + A54 * k[3][i]);
                }
                system.rhs(t + h_try, &y_stage, &mut k[4]);
                for i in 0..n {
                    y_stage[i] = y[i]
                        + h_try
                            * (A61 * k[0][i]
                                + A62 * k[1][i]
                                + A63 * k[2][i]
                                + A64 * k[3][i]
                                + A65 * k[4][i]);
                }
                system.rhs(t + C6 * h_try, &y_stage, &mut k[5]);
                sol.stats.rhs_evals += 6;
                sol.stats.steps += 1;
                steps_this_interval += 1;

                for i in 0..n {
                    y_new[i] =
                        y[i] + h_try * (B1 * k[0][i] + B3 * k[2][i] + B4 * k[3][i] + B5 * k[4][i]);
                    err_vec[i] = h_try
                        * (E1 * k[0][i]
                            + E3 * k[2][i]
                            + E4 * k[3][i]
                            + E5 * k[4][i]
                            + E6 * k[5][i]);
                }
                options.error_scale_pair(&y, &y_new, &mut scale);
                let err = weighted_rms_norm(&err_vec, &scale);

                if !err.is_finite() || !y_new.iter().all(|v| v.is_finite()) {
                    sol.stats.rejected += 1;
                    h = h_try * 0.1;
                    nonfinite_strikes += 1;
                    if nonfinite_strikes >= NONFINITE_STRIKES || h <= f64::MIN_POSITIVE * 1e4 {
                        return Err(SolveFailure {
                            error: SolverError::NonFiniteState { t },
                            stats: sol.stats,
                        });
                    }
                    continue;
                }
                nonfinite_strikes = 0;

                if err <= 1.0 {
                    sol.stats.accepted += 1;
                    t += h_try;
                    std::mem::swap(&mut y, &mut y_new);
                    let grow = if err == 0.0 { 4.0 } else { (SAFETY * err.powf(-0.2)).min(4.0) };
                    h = h_try * grow.max(0.1);
                } else {
                    sol.stats.rejected += 1;
                    h = h_try * (SAFETY * err.powf(-0.2)).clamp(0.1, 1.0);
                }
            }
            sol.times.push(ts);
            sol.states.push(y.clone());
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn decay_accuracy_within_tolerance_band() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -3.0 * y[0]);
        let sol =
            Rkf45::new().solve(&sys, 0.0, &[2.0], &[1.0, 2.0], &SolverOptions::default()).unwrap();
        assert!((sol.state_at(0)[0] - 2.0 * (-3.0f64).exp()).abs() < 5e-6);
        assert!((sol.state_at(1)[0] - 2.0 * (-6.0f64).exp()).abs() < 5e-6);
    }

    #[test]
    fn oscillator_phase_is_tracked() {
        let sys = FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -4.0 * y[0];
        });
        // y = cos(2t).
        let sol =
            Rkf45::new().solve(&sys, 0.0, &[1.0, 0.0], &[3.0], &SolverOptions::default()).unwrap();
        assert!((sol.state_at(0)[0] - 6.0f64.cos()).abs() < 1e-4);
    }

    #[test]
    fn step_clamps_to_sample_times() {
        // Samples closer together than the natural step still hit exactly.
        let sys = FnSystem::new(1, |_t, _y, d| d[0] = 1.0);
        let times: Vec<f64> = (1..50).map(|i| i as f64 * 0.01).collect();
        let sol = Rkf45::new().solve(&sys, 0.0, &[0.0], &times, &SolverOptions::default()).unwrap();
        for (i, &t) in times.iter().enumerate() {
            assert!((sol.state_at(i)[0] - t).abs() < 1e-12);
        }
    }

    #[test]
    fn takes_more_rhs_evals_than_dopri5_on_smooth_problem() {
        // No FSAL and no dense output: RKF45 pays for dense sampling where
        // DOPRI5 interpolates — the architectural difference the comparison
        // study leans on.
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -0.5 * y[0]);
        let times: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        let opts = SolverOptions::default();
        let rkf = Rkf45::new().solve(&sys, 0.0, &[1.0], &times, &opts).unwrap();
        let dp = crate::Dopri5::new().solve(&sys, 0.0, &[1.0], &times, &opts).unwrap();
        assert!(
            rkf.stats.rhs_evals > dp.stats.rhs_evals,
            "rkf {} vs dopri {}",
            rkf.stats.rhs_evals,
            dp.stats.rhs_evals
        );
    }

    #[test]
    fn stiff_problem_exhausts_budget() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1e7 * y[0]);
        let opts = SolverOptions { max_steps: 200, ..SolverOptions::default() };
        let result = Rkf45::new().solve(&sys, 0.0, &[1.0], &[1.0], &opts);
        assert!(matches!(result.unwrap_err().error, SolverError::MaxStepsExceeded { .. }));
    }
}
