// Index-based loops are used deliberately throughout the numerical
// kernels: they mirror the reference Fortran/C formulations and keep
// multi-array stride arithmetic explicit.
#![allow(clippy::needless_range_loop)]

//! Adaptive ODE solvers for biochemical-network simulation.
//!
//! This crate implements, from scratch, the numerical core of the
//! accelerated parameter-space-analysis engine and all of its published
//! comparison baselines:
//!
//! | solver | family | role |
//! |---|---|---|
//! | [`Dopri5`] | explicit Runge–Kutta 5(4), PI control, dense output, stiffness detection | the engine's non-stiff method |
//! | [`Radau5`] | implicit Radau IIA order 5, simplified Newton with one real and one complex LU per step | the engine's stiff method |
//! | [`Rkf45`] | explicit Runge–Kutta–Fehlberg 4(5) | the fine-grained baseline's non-stiff method |
//! | [`Rk4`] | classic fixed-step Runge–Kutta 4 | reference / teaching baseline |
//! | [`Bdf`] | variable-order (1–5) BDF in Nordsieck form with modified Newton | stiff multistep core |
//! | [`AdamsMoulton`] | variable-order (1–12) Adams–Moulton in Nordsieck form with functional iteration | non-stiff multistep core |
//! | [`Lsoda`] | dynamic Adams ↔ BDF switching | the CPU baseline "LSODA" |
//! | [`Vode`] | one-shot up-front method selection | the CPU baseline "VODE" |
//!
//! All solvers consume any [`OdeSystem`] and sample the solution at
//! caller-provided time points through each method's own dense output /
//! interpolant, so sampling never constrains step selection.
//!
//! # Example
//!
//! ```
//! use paraspace_solvers::{Dopri5, FnSystem, OdeSolver, SolverOptions};
//!
//! # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
//! // dy/dt = -y, y(0) = 1  ⇒  y(t) = e^{-t}.
//! let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
//! let sol = Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &SolverOptions::default())?;
//! assert!((sol.state_at(0)[0] - (-1.0f64).exp()).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

mod batch;
mod chaos;
mod dopri5;
mod dopri5_batch;
mod error;
mod multistep;
mod options;
mod radau5;
mod radau5_batch;
mod rk4;
mod rkf45;
mod scratch;
mod sens;
mod solution;
mod system;

pub use batch::{BatchOdeSystem, BatchState};
pub use chaos::{ChaosSystem, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use dopri5::Dopri5;
pub use dopri5_batch::{Dopri5Batch, LaneReport};
pub use error::{SolveFailure, SolverError};
pub use multistep::{AdamsMoulton, Bdf, Lsoda, MethodFamily, Vode};
pub use options::SolverOptions;
pub use radau5::Radau5;
pub use radau5_batch::Radau5Batch;
pub use rk4::Rk4;
pub use rkf45::Rkf45;
pub use scratch::SolverScratch;
pub use sens::{AugmentedSensSystem, Dopri5Sens, Radau5Sens, SensOdeSystem, SensSolution};
pub use solution::{Solution, StepStats};
pub use system::{FnSystem, OdeSolver, OdeSystem};

/// Suggests an initial step size for an adaptive solver of the given order,
/// following the classical Hairer–Nørsett–Wanner `hinit` algorithm.
///
/// Both explicit and implicit solvers in this crate use this when the caller
/// does not fix `h0` via [`SolverOptions::initial_step`].
pub(crate) fn initial_step_size<S: OdeSystem + ?Sized>(
    system: &S,
    t0: f64,
    y0: &[f64],
    f0: &[f64],
    direction: f64,
    order: usize,
    opts: &SolverOptions,
) -> f64 {
    let n = y0.len();
    let mut sc = vec![0.0; n];
    for i in 0..n {
        sc[i] = opts.abs_tol + opts.rel_tol * y0[i].abs();
    }
    let d0 = paraspace_linalg::weighted_rms_norm(y0, &sc);
    let d1 = paraspace_linalg::weighted_rms_norm(f0, &sc);
    let h0 = if d0 < 1e-5 || d1 < 1e-5 { 1e-6 } else { 0.01 * (d0 / d1) };
    let h0 = h0.min(opts.max_step);

    // One explicit Euler probe to estimate the second derivative.
    let mut y1 = vec![0.0; n];
    for i in 0..n {
        y1[i] = y0[i] + direction * h0 * f0[i];
    }
    let mut f1 = vec![0.0; n];
    system.rhs(t0 + direction * h0, &y1, &mut f1);
    let mut diff = vec![0.0; n];
    for i in 0..n {
        diff[i] = f1[i] - f0[i];
    }
    let d2 = paraspace_linalg::weighted_rms_norm(&diff, &sc) / h0;

    let dmax = d1.max(d2);
    let h1 = if dmax <= 1e-15 {
        (h0 * 1e-3).max(1e-6)
    } else {
        (0.01 / dmax).powf(1.0 / (order as f64 + 1.0))
    };
    (100.0 * h0).min(h1).min(opts.max_step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_step_is_positive_and_bounded() {
        let sys = FnSystem::new(1, |_t, y, d| d[0] = -1000.0 * y[0]);
        let opts = SolverOptions::default();
        let f0 = [-1000.0];
        let h = initial_step_size(&sys, 0.0, &[1.0], &f0, 1.0, 5, &opts);
        assert!(h > 0.0);
        assert!(h < 1e-2, "stiff system must start with a small step, got {h}");
    }

    #[test]
    fn initial_step_respects_max_step() {
        let sys = FnSystem::new(1, |_t, _y, d| d[0] = 1e-9);
        let opts = SolverOptions { max_step: 0.5, ..SolverOptions::default() };
        let f0 = [1e-9];
        let h = initial_step_size(&sys, 0.0, &[1.0], &f0, 1.0, 5, &opts);
        assert!(h <= 0.5);
    }
}
