//! Reusable solver workspaces ("scratch") for allocation-free integration.
//!
//! Every solver in this crate needs working storage whose size depends only
//! on the system dimension: Runge–Kutta stage vectors, Newton iteration
//! workspaces and LU factorizations, the Nordsieck history array. Allocating
//! that storage inside `solve` is fine for a one-off call, but the batch
//! engines integrate thousands of same-sized members back to back — there,
//! per-solve allocation (and, worse, per-*step* allocation) dominates small
//! systems and fragments the heap.
//!
//! [`SolverScratch`] owns one of each solver family's workspaces and is
//! handed to [`OdeSolver::solve_pooled`](crate::OdeSolver::solve_pooled).
//! Buffers are created on first use, grown on dimension change, and reused
//! verbatim otherwise, so a worker thread that processes a stream of
//! same-dimension simulations reaches a steady state with **zero heap
//! allocations per integration step** (solution output and the rare
//! re-factorization are the only remaining allocation sites).
//!
//! Pooling never changes results: a pooled solve is bitwise identical to a
//! fresh-workspace solve, because every buffer is fully (re)initialized
//! before use.
//!
//! # Example
//!
//! ```
//! use paraspace_solvers::{Dopri5, FnSystem, OdeSolver, SolverOptions, SolverScratch};
//!
//! # fn main() -> Result<(), paraspace_solvers::SolveFailure> {
//! let sys = FnSystem::new(1, |_t, y, d| d[0] = -y[0]);
//! let opts = SolverOptions::default();
//! let mut scratch = SolverScratch::new();
//! let fresh = Dopri5::new().solve(&sys, 0.0, &[1.0], &[1.0], &opts)?;
//! let pooled = Dopri5::new().solve_pooled(&sys, 0.0, &[1.0], &[1.0], &opts, &mut scratch)?;
//! assert_eq!(fresh.states, pooled.states); // bitwise identical
//! # Ok(())
//! # }
//! ```

use crate::dopri5::DopriScratch;
use crate::dopri5_batch::DopriBatchScratch;
use crate::multistep::core::NordsieckCore;
use crate::multistep::MethodFamily;
use crate::radau5::RadauWorkspace;
use crate::radau5_batch::RadauBatchScratch;

/// Pooled working storage for all solver families in this crate.
///
/// One instance per worker thread; see the module docs for the pooling
/// contract (bitwise identity with fresh-workspace solves).
#[derive(Default)]
pub struct SolverScratch {
    pub(crate) dopri: DopriScratch,
    pub(crate) dopri_batch: DopriBatchScratch,
    pub(crate) radau: Option<RadauWorkspace>,
    pub(crate) radau_batch: RadauBatchScratch,
    pub(crate) nordsieck: Option<NordsieckCore>,
}

impl SolverScratch {
    /// Creates an empty scratch; buffers materialize on first use.
    pub fn new() -> Self {
        SolverScratch::default()
    }

    /// The RADAU5 workspace for dimension `n`, reset for a new integration
    /// (reusing every buffer, including reclaimed LU storage, when the
    /// dimension matches).
    pub(crate) fn radau(&mut self, n: usize) -> &mut RadauWorkspace {
        match &mut self.radau {
            Some(ws) if ws.dim() == n => ws.reset(),
            slot => *slot = Some(RadauWorkspace::new(n)),
        }
        self.radau.as_mut().expect("workspace just ensured")
    }

    /// The Nordsieck core for dimension `n`, re-targeted to `family` /
    /// `max_order` (history columns grow monotonically and are reused).
    pub(crate) fn nordsieck(
        &mut self,
        family: MethodFamily,
        n: usize,
        max_order: usize,
    ) -> &mut NordsieckCore {
        match &mut self.nordsieck {
            Some(core) if core.dim() == n => core.reinit(family, max_order),
            slot => *slot = Some(NordsieckCore::new(family, n, max_order)),
        }
        self.nordsieck.as_mut().expect("core just ensured")
    }
}

impl std::fmt::Debug for SolverScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverScratch")
            .field("radau", &self.radau.as_ref().map(|w| w.dim()))
            .field("nordsieck", &self.nordsieck.as_ref().map(|c| c.dim()))
            .finish()
    }
}
