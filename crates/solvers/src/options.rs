//! Shared solver configuration.

/// Tolerances and step-control options shared by every solver.
///
/// The defaults mirror the published experimental setup: absolute tolerance
/// `εa = 10⁻¹²`, relative tolerance `εr = 10⁻⁶`, and a cap of `10⁴` steps
/// per sampling interval (the values used by COPASI and the comparison
/// study).
///
/// # Example
///
/// ```
/// use paraspace_solvers::SolverOptions;
///
/// let opts = SolverOptions { rel_tol: 1e-8, ..SolverOptions::default() };
/// assert_eq!(opts.abs_tol, 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Relative error tolerance `εr`.
    pub rel_tol: f64,
    /// Absolute error tolerance `εa`.
    pub abs_tol: f64,
    /// Initial step size; `None` selects automatically (Hairer's `hinit`).
    pub initial_step: Option<f64>,
    /// Upper bound on the step size.
    pub max_step: f64,
    /// Maximum number of integration steps per sampling interval.
    pub max_steps: usize,
    /// Check for stiffness every this many accepted steps (explicit
    /// solvers); `0` disables detection.
    pub stiffness_check_interval: usize,
    /// Total attempted-step budget for the whole integration; `None` means
    /// unlimited. Unlike [`max_steps`](SolverOptions::max_steps) (per
    /// sampling interval), this is a hard deterministic deadline across
    /// all intervals, checked in the explicit step loops (DOPRI5 scalar
    /// and lane-batched, RKF45) so one pathological member cannot stall a
    /// batch. Exceeding it fails with
    /// [`SolverError::StepBudgetExhausted`](crate::SolverError::StepBudgetExhausted).
    pub step_budget: Option<usize>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            rel_tol: 1e-6,
            abs_tol: 1e-12,
            initial_step: None,
            max_step: f64::INFINITY,
            max_steps: 10_000,
            stiffness_check_interval: 1000,
            step_budget: None,
        }
    }
}

impl SolverOptions {
    /// Options with the given tolerances and published defaults elsewhere.
    pub fn with_tolerances(rel_tol: f64, abs_tol: f64) -> Self {
        SolverOptions { rel_tol, abs_tol, ..SolverOptions::default() }
    }

    /// The error scale `scᵢ = εa + εr·|yᵢ|` written into `scale`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn error_scale(&self, y: &[f64], scale: &mut [f64]) {
        assert_eq!(y.len(), scale.len());
        for (s, &v) in scale.iter_mut().zip(y.iter()) {
            *s = self.abs_tol + self.rel_tol * v.abs();
        }
    }

    /// Error scale against the pairwise maximum of two states (used by
    /// one-step methods comparing `y` and `y_new`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn error_scale_pair(&self, y0: &[f64], y1: &[f64], scale: &mut [f64]) {
        assert_eq!(y0.len(), scale.len());
        assert_eq!(y1.len(), scale.len());
        for i in 0..scale.len() {
            scale[i] = self.abs_tol + self.rel_tol * y0[i].abs().max(y1[i].abs());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_published_setup() {
        let o = SolverOptions::default();
        assert_eq!(o.rel_tol, 1e-6);
        assert_eq!(o.abs_tol, 1e-12);
        assert_eq!(o.max_steps, 10_000);
    }

    #[test]
    fn error_scale_combines_tolerances() {
        let o = SolverOptions::with_tolerances(1e-3, 1e-6);
        let mut sc = [0.0; 2];
        o.error_scale(&[2.0, 0.0], &mut sc);
        assert!((sc[0] - 2.001e-3).abs() < 1e-12);
        assert_eq!(sc[1], 1e-6);
    }

    #[test]
    fn pairwise_scale_uses_larger_state() {
        let o = SolverOptions::with_tolerances(1.0, 0.0);
        let mut sc = [0.0; 1];
        o.error_scale_pair(&[1.0], &[5.0], &mut sc);
        assert_eq!(sc[0], 5.0);
    }
}
