//! Workspace-pooling guarantees, verified two ways:
//!
//! 1. **Bitwise identity** — `solve_pooled` must reproduce `solve` exactly
//!    (same trajectories, same step statistics), including when the scratch
//!    is reused across systems of different dimensions and solver families.
//! 2. **Zero per-step allocation** — with a counting global allocator, a
//!    pooled DOPRI5/RADAU5 integration that takes ~an order of magnitude
//!    more steps must not allocate more (DOPRI5: exactly equal; RADAU5: only
//!    the pivot vectors of genuine re-factorization events, which the test
//!    bounds by the measured LU count).
//!
//! Tests share one process-global allocator counter, so every test that
//! measures or mutates allocation state serializes on `TEST_LOCK`.

use paraspace_solvers::{
    AdamsMoulton, Bdf, Dopri5, FnSystem, Lsoda, OdeSolver, Radau5, SolverOptions, SolverScratch,
    Vode,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn count_allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over `repeats` runs of `f`. The solver's own
/// allocations are deterministic per solve, but the counter is
/// process-global and the libtest harness threads allocate concurrently
/// (output capture, result plumbing), occasionally landing inside a
/// counting window. That noise is strictly additive, so the minimum of a
/// few repeats recovers the solver's true count.
fn min_allocations(repeats: usize, mut f: impl FnMut()) -> usize {
    (0..repeats).map(|_| count_allocations(&mut f)).min().unwrap()
}

/// Forced stiff oscillation: step size stays bounded by the forcing, so the
/// step count scales with the integration window.
fn forced_stiff() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(1, |t, y, d| d[0] = -1e4 * (y[0] - t.cos()))
}

/// Mildly stiff variant every solver (including DOPRI5, whose stiffness
/// detector aborts on the full-strength version) integrates successfully.
fn forced_mild() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(1, |t, y, d| d[0] = -50.0 * (y[0] - t.cos()))
}

fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(2, |_t, y, d| {
        d[0] = y[1];
        d[1] = -y[0];
    })
}

fn sample_times(t_end: f64, count: usize) -> Vec<f64> {
    (1..=count).map(|i| t_end * i as f64 / count as f64).collect()
}

#[test]
fn pooled_solve_is_bitwise_identical_for_every_solver() {
    let _guard = lock();
    let solvers: Vec<Box<dyn OdeSolver>> = vec![
        Box::new(Dopri5::new()),
        Box::new(Radau5::new()),
        Box::new(AdamsMoulton::new()),
        Box::new(Bdf::new()),
        Box::new(Lsoda::new()),
        Box::new(Vode::new()),
    ];
    let sys = oscillator();
    let stiff = forced_mild();
    let times = sample_times(5.0, 7);
    let opts = SolverOptions { max_steps: 200_000, ..SolverOptions::default() };
    let mut scratch = SolverScratch::new();
    for solver in &solvers {
        // Non-stiff then stiff through the SAME scratch: exercises reuse
        // across dimension changes (2 -> 1) and solver families.
        for (system, y0) in
            [(&sys as &dyn paraspace_solvers::OdeSystem, &[1.0, 0.0][..]), (&stiff, &[0.5][..])]
        {
            let fresh = solver.solve(system, 0.0, y0, &times, &opts).unwrap();
            let pooled = solver.solve_pooled(system, 0.0, y0, &times, &opts, &mut scratch).unwrap();
            assert_eq!(fresh.times, pooled.times, "{}: sample times differ", solver.name());
            assert_eq!(
                fresh.states,
                pooled.states,
                "{}: pooled trajectory must be bitwise identical",
                solver.name()
            );
            assert_eq!(
                fresh.stats,
                pooled.stats,
                "{}: pooled step statistics must be identical",
                solver.name()
            );
        }
    }
}

#[test]
fn repeated_pooled_solves_stay_identical() {
    let _guard = lock();
    // The 10th pooled solve through one scratch must equal the 1st: reused
    // buffers carry no state between integrations.
    let sys = forced_mild();
    let times = sample_times(2.0, 5);
    let opts = SolverOptions::default();
    for solver in [&Dopri5::new() as &dyn OdeSolver, &Radau5::new()] {
        let mut scratch = SolverScratch::new();
        let first = solver.solve_pooled(&sys, 0.0, &[0.5], &times, &opts, &mut scratch).unwrap();
        for _ in 0..9 {
            let again =
                solver.solve_pooled(&sys, 0.0, &[0.5], &times, &opts, &mut scratch).unwrap();
            assert_eq!(first.states, again.states, "{}: drift across reuses", solver.name());
            assert_eq!(first.stats, again.stats, "{}", solver.name());
        }
    }
}

#[test]
fn dopri5_steady_state_allocates_nothing_per_step() {
    let _guard = lock();
    // Same problem, same sample count, ~10x the steps: if the per-step loop
    // is allocation-free, the counts must be EQUAL (all remaining
    // allocations are per-solve: output vectors, initial-step probe).
    let sys = oscillator();
    let opts = SolverOptions::default();
    let short = sample_times(10.0, 4);
    let long = sample_times(100.0, 4);
    let mut scratch = SolverScratch::new();
    let solver = Dopri5::new();
    // Warm the scratch to steady state.
    solver.solve_pooled(&sys, 0.0, &[1.0, 0.0], &long, &opts, &mut scratch).unwrap();

    let mut stats_short = None;
    let allocs_short = min_allocations(3, || {
        stats_short = Some(
            solver.solve_pooled(&sys, 0.0, &[1.0, 0.0], &short, &opts, &mut scratch).unwrap().stats,
        );
    });
    let mut stats_long = None;
    let allocs_long = min_allocations(3, || {
        stats_long = Some(
            solver.solve_pooled(&sys, 0.0, &[1.0, 0.0], &long, &opts, &mut scratch).unwrap().stats,
        );
    });
    let (stats_short, stats_long) = (stats_short.unwrap(), stats_long.unwrap());
    assert!(
        stats_long.steps >= 5 * stats_short.steps,
        "long run must take many more steps ({} vs {})",
        stats_long.steps,
        stats_short.steps
    );
    assert_eq!(
        allocs_long, allocs_short,
        "dopri5 allocations must not scale with step count \
         ({allocs_short} allocs / {} steps vs {allocs_long} allocs / {} steps)",
        stats_short.steps, stats_long.steps
    );
}

#[test]
fn radau5_steady_state_allocates_only_on_refactorization() {
    let _guard = lock();
    let sys = forced_stiff();
    let opts = SolverOptions::default();
    let short = sample_times(2.0, 4);
    let long = sample_times(200.0, 4);
    let mut scratch = SolverScratch::new();
    let solver = Radau5::new();
    solver.solve_pooled(&sys, 0.0, &[0.5], &long, &opts, &mut scratch).unwrap();

    let mut stats_short = None;
    let allocs_short = min_allocations(3, || {
        stats_short = Some(
            solver.solve_pooled(&sys, 0.0, &[0.5], &short, &opts, &mut scratch).unwrap().stats,
        );
    });
    let mut stats_long = None;
    let allocs_long = min_allocations(3, || {
        stats_long =
            Some(solver.solve_pooled(&sys, 0.0, &[0.5], &long, &opts, &mut scratch).unwrap().stats);
    });
    let (stats_short, stats_long) = (stats_short.unwrap(), stats_long.unwrap());
    assert!(
        stats_long.steps >= 5 * stats_short.steps,
        "long run must take many more steps ({} vs {})",
        stats_long.steps,
        stats_short.steps
    );
    // Iteration-matrix storage is reclaimed, so a re-factorization costs
    // only the LU pivot vectors: bound the allocation growth by the extra
    // factorizations instead of the ~10x extra steps.
    let extra_lu = stats_long.lu_decompositions.saturating_sub(stats_short.lu_decompositions);
    let budget = allocs_short + 4 * extra_lu;
    assert!(
        allocs_long <= budget,
        "radau5 allocations must scale with re-factorizations, not steps: \
         {allocs_long} allocs / {} steps (budget {budget}: {allocs_short} base + 4*{extra_lu} LU)",
        stats_long.steps
    );
}
