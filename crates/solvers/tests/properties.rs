//! Property-based tests of the solver suite: accuracy against analytic
//! solutions and cross-solver agreement over randomized problems.

use paraspace_solvers::{
    AdamsMoulton, Bdf, Dopri5, FnSystem, Lsoda, OdeSolver, Radau5, Rkf45, SolverOptions, Vode,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// Every solver integrates linear decay to within a tolerance band.
    #[test]
    fn all_solvers_handle_linear_decay(k in 0.05f64..20.0, t_end in 0.2f64..4.0) {
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -k * y[0]);
        let exact = (-k * t_end).exp();
        let opts = SolverOptions { max_steps: 500_000, ..SolverOptions::default() };
        let solvers: Vec<Box<dyn OdeSolver>> = vec![
            Box::new(Dopri5::new()),
            Box::new(Rkf45::new()),
            Box::new(AdamsMoulton::new()),
            Box::new(Radau5::new()),
            Box::new(Bdf::new()),
            Box::new(Lsoda::new()),
            Box::new(Vode::new()),
        ];
        for s in &solvers {
            let sol = s.solve(&sys, 0.0, &[1.0], &[t_end], &opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name()));
            let err = (sol.state_at(0)[0] - exact).abs();
            prop_assert!(err < 1e-4 * exact.max(1e-4), "{}: err {err} at k={k} T={t_end}", s.name());
        }
    }

    /// A two-species linear system with known eigen-decomposition: the
    /// explicit and implicit flagships agree with the analytic solution.
    #[test]
    fn coupled_linear_system_matches_matrix_exponential(
        a in 0.1f64..5.0, b in 0.1f64..5.0, t_end in 0.2f64..2.0
    ) {
        // y' = [[-a, b], [a, -b]] y has eigenvalues 0 and -(a+b):
        // y(t) = equilibrium + transient·e^{-(a+b)t}, equilibrium ∝ (b, a).
        let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
            d[0] = -a * y[0] + b * y[1];
            d[1] = a * y[0] - b * y[1];
        });
        let y0 = [1.0, 0.0];
        let total = y0[0] + y0[1];
        let eq0 = total * b / (a + b);
        let lam = a + b;
        let exact0 = eq0 + (y0[0] - eq0) * (-lam * t_end).exp();
        let opts = SolverOptions::default();
        for s in [&Dopri5::new() as &dyn OdeSolver, &Radau5::new() as &dyn OdeSolver] {
            let sol = s.solve(&sys, 0.0, &y0, &[t_end], &opts).expect("linear system");
            prop_assert!(
                (sol.state_at(0)[0] - exact0).abs() < 1e-5,
                "{}: {} vs {exact0}", s.name(), sol.state_at(0)[0]
            );
            // Conservation: rows sum to zero ⇒ total is invariant.
            let sum: f64 = sol.state_at(0).iter().sum();
            prop_assert!((sum - total).abs() < 1e-7);
        }
    }

    /// Sampling at many interior points returns exactly the requested
    /// times, in order, for all solvers with dense output.
    #[test]
    fn sample_times_are_returned_verbatim(n_samples in 1usize..40) {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let times: Vec<f64> = (1..=n_samples).map(|i| i as f64 * 0.1).collect();
        let opts = SolverOptions::default();
        for s in [
            &Dopri5::new() as &dyn OdeSolver,
            &Radau5::new(),
            &Lsoda::new(),
            &AdamsMoulton::new(),
        ] {
            let sol = s.solve(&sys, 0.0, &[1.0], &times, &opts).expect("decay");
            prop_assert_eq!(&sol.times, &times, "{}", s.name());
            // Monotone decay must be preserved by interpolation.
            for w in sol.states.windows(2) {
                prop_assert!(w[1][0] <= w[0][0] + 1e-9, "{} not monotone", s.name());
            }
        }
    }

    /// Tightening the relative tolerance never increases the error of the
    /// adaptive flagships on a smooth problem.
    #[test]
    fn tolerance_monotonicity(k in 0.2f64..3.0) {
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -k * y[0]);
        let exact = (-k * 2.0).exp();
        let mut last_err = f64::INFINITY;
        for rtol in [1e-3, 1e-6, 1e-9] {
            let opts = SolverOptions { max_steps: 500_000, ..SolverOptions::with_tolerances(rtol, rtol * 1e-6) };
            let sol = Dopri5::new().solve(&sys, 0.0, &[1.0], &[2.0], &opts).expect("decay");
            let err = (sol.state_at(0)[0] - exact).abs();
            // Allow a small grace factor: local-error control is not a
            // strict global-error guarantee.
            prop_assert!(err <= last_err * 10.0 + 1e-15, "err {err} vs prior {last_err} at rtol {rtol}");
            last_err = err.max(1e-16);
        }
    }
}
