//! The write-ahead campaign manifest.
//!
//! The manifest is the durability layer's *refusal mechanism*: it pins every
//! input that influences the campaign's bitwise output (model digest, job or
//! axis spec digest, engine name, thread count, lane width, recovery policy,
//! shard decomposition) before the first shard executes. On resume the
//! expected manifest is rebuilt from the live command line and compared
//! field-for-field against the on-disk copy; any difference aborts the
//! resume with [`JournalError::ManifestMismatch`] rather than silently
//! splicing shards from two different worlds into one result.
//!
//! The format is a line-oriented `key=value` text file with a version
//! header. Values are escaped so arbitrary strings (paths, engine specs)
//! round-trip; keys are sorted on write so the file itself is deterministic.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;

use crate::JournalError;

/// Magic first line of a manifest file; bump the version if the shard
/// record framing or payload conventions ever change incompatibly.
const HEADER: &str = "paraspace-campaign-manifest v1";

/// Write-ahead description of a campaign: everything that must match for a
/// resume to be sound.
///
/// Construct with [`CampaignManifest::new`], attach the world-defining
/// fields with [`with_field`](Self::with_field) /
/// [`with_digest`](Self::with_digest), then hand it to
/// [`Journal::open_or_create`](crate::Journal::open_or_create), which writes
/// it atomically on first open and verifies it on every subsequent open.
///
/// Two manifests are considered the same campaign iff the kind, shard
/// count, and *every* key/value pair agree — an on-disk manifest with an
/// extra or missing key is also a mismatch, so adding a new world-defining
/// field to a driver automatically invalidates older checkpoints instead of
/// resuming them under wrong assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignManifest {
    kind: String,
    shards: u64,
    fields: BTreeMap<String, String>,
}

impl CampaignManifest {
    /// Start a manifest for a campaign of `shards` deterministic shards.
    ///
    /// `kind` names the driver ("psa2d", "sobol", "pe", "cli-sweep", …);
    /// resuming a checkpoint directory with a different driver is refused.
    pub fn new(kind: impl Into<String>, shards: u64) -> Self {
        CampaignManifest { kind: kind.into(), shards, fields: BTreeMap::new() }
    }

    /// Pin a world-defining string field (engine name, threads, lane width,
    /// recovery-policy knobs, shard size…). Later writes to the same key
    /// overwrite earlier ones.
    #[must_use]
    pub fn with_field(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Pin a 64-bit digest (model digest, spec digest) as a hex field.
    #[must_use]
    pub fn with_digest(self, key: impl Into<String>, digest: u64) -> Self {
        self.with_field(key, format!("{digest:016x}"))
    }

    /// Driver kind recorded at creation.
    #[must_use]
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Total number of shards in the campaign's fixed decomposition.
    #[must_use]
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Look up a pinned field.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Render the manifest to its canonical text form (sorted keys).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("kind={}\n", escape(&self.kind)));
        out.push_str(&format!("shards={}\n", self.shards));
        for (k, v) in &self.fields {
            out.push_str(&format!("field.{}={}\n", escape(k), escape(v)));
        }
        out
    }

    /// Parse the canonical text form.
    pub fn from_text(text: &str) -> Result<Self, JournalError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            Some(h) => {
                return Err(JournalError::MalformedManifest {
                    message: format!("unrecognized header {h:?}"),
                })
            }
            None => return Err(JournalError::MalformedManifest { message: "empty file".into() }),
        }
        let mut kind = None;
        let mut shards = None;
        let mut fields = BTreeMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                JournalError::MalformedManifest { message: format!("line without '=': {line:?}") }
            })?;
            match key {
                "kind" => kind = Some(unescape(value)?),
                "shards" => {
                    shards =
                        Some(value.parse::<u64>().map_err(|e| JournalError::MalformedManifest {
                            message: format!("bad shard count {value:?}: {e}"),
                        })?)
                }
                _ => {
                    let name = key.strip_prefix("field.").ok_or_else(|| {
                        JournalError::MalformedManifest {
                            message: format!("unrecognized key {key:?}"),
                        }
                    })?;
                    fields.insert(unescape(name)?, unescape(value)?);
                }
            }
        }
        let kind =
            kind.ok_or_else(|| JournalError::MalformedManifest { message: "missing kind".into() })?;
        let shards = shards.ok_or_else(|| JournalError::MalformedManifest {
            message: "missing shard count".into(),
        })?;
        Ok(CampaignManifest { kind, shards, fields })
    }

    /// Atomically write the manifest to `path` (tempfile in the same
    /// directory, flush, fsync, rename) so a crash mid-write can never leave
    /// a half-manifest that a later resume would misread.
    pub fn write_atomic(&self, path: &Path) -> Result<(), JournalError> {
        let dir = path.parent().ok_or_else(|| {
            JournalError::Io(std::io::Error::other("manifest path has no parent directory"))
        })?;
        let tmp = dir.join(format!(".manifest.tmp.{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and parse a manifest from `path`.
    pub fn read(path: &Path) -> Result<Self, JournalError> {
        let text = fs::read_to_string(path)?;
        Self::from_text(&text)
    }

    /// Check that `self` (the on-disk manifest) describes the same campaign
    /// as `expected` (rebuilt by the resuming process). Reports the first
    /// differing field.
    pub fn verify_matches(&self, expected: &Self) -> Result<(), JournalError> {
        let mismatch = |field: &str, on_disk: String, want: String| {
            Err(JournalError::ManifestMismatch {
                field: field.to_string(),
                on_disk,
                expected: want,
            })
        };
        if self.kind != expected.kind {
            return mismatch("kind", self.kind.clone(), expected.kind.clone());
        }
        if self.shards != expected.shards {
            return mismatch("shards", self.shards.to_string(), expected.shards.to_string());
        }
        for (k, want) in &expected.fields {
            match self.fields.get(k) {
                Some(have) if have == want => {}
                Some(have) => return mismatch(k, have.clone(), want.clone()),
                None => return mismatch(k, "<absent>".into(), want.clone()),
            }
        }
        for k in self.fields.keys() {
            if !expected.fields.contains_key(k) {
                return mismatch(k, self.fields[k].clone(), "<absent>".into());
            }
        }
        Ok(())
    }
}

/// Escape `=`, newlines, and backslashes so arbitrary values survive the
/// line-oriented format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '=' => out.push_str("\\e"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, JournalError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => out.push('='),
            other => {
                return Err(JournalError::MalformedManifest {
                    message: format!("bad escape \\{other:?} in {s:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignManifest {
        CampaignManifest::new("psa2d", 17)
            .with_field("engine", "fine")
            .with_field("threads", "8")
            .with_field("path", "a=b\nweird\\value")
            .with_digest("model", 0xdead_beef_cafe_f00d)
    }

    #[test]
    fn text_round_trip_is_exact() {
        let m = sample();
        let parsed = CampaignManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        // Canonical form is stable (sorted keys) so re-rendering is identical.
        assert_eq!(parsed.to_text(), m.to_text());
    }

    #[test]
    fn verify_accepts_identical_and_names_first_difference() {
        let m = sample();
        m.verify_matches(&m.clone()).unwrap();

        let other = sample().with_field("engine", "coarse");
        let err = m.verify_matches(&other).unwrap_err();
        match err {
            JournalError::ManifestMismatch { field, on_disk, expected } => {
                assert_eq!(field, "engine");
                assert_eq!(on_disk, "fine");
                assert_eq!(expected, "coarse");
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn extra_or_missing_fields_are_mismatches() {
        let m = sample();
        let extra = sample().with_field("lane_width", "8");
        assert!(m.verify_matches(&extra).is_err());
        assert!(extra.verify_matches(&m).is_err());
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(CampaignManifest::from_text("").is_err());
        assert!(CampaignManifest::from_text("not a manifest\nkind=x\nshards=1\n").is_err());
        let no_shards = format!("{HEADER}\nkind=x\n");
        assert!(CampaignManifest::from_text(&no_shards).is_err());
        let bad_key = format!("{HEADER}\nkind=x\nshards=1\nbogus=1\n");
        assert!(CampaignManifest::from_text(&bad_key).is_err());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("manifest_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest");
        let m = sample();
        m.write_atomic(&path).unwrap();
        assert_eq!(CampaignManifest::read(&path).unwrap(), m);
        fs::remove_dir_all(&dir).ok();
    }
}
