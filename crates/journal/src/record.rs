//! Shared record framing for every append-only log in a checkpoint
//! directory: the main shard journal (`shards.log`), per-worker journal
//! segments (`segments/*.log`), and the coordinator's retry ledger
//! (`retries.log`).
//!
//! Framing (all integers little-endian):
//!
//! ```text
//! [u64 id][u32 payload_len][payload bytes][u64 fnv64(id ‖ len ‖ payload)]
//! ```
//!
//! The checksum covers the header *and* the payload, so a record torn
//! anywhere — mid-header, mid-payload, mid-checksum — fails verification.
//! Scanning stops at the first short or corrupt record; everything before
//! it is trusted, everything at or after it is not. Each record verifies
//! independently of its predecessors, which is what lets readers resume a
//! scan from a remembered byte offset (the coordinator tails live worker
//! segments this way).

use std::fs;
use std::io::Read;
use std::path::Path;

use crate::{fnv64, JournalError};

/// Per-record size ceiling (64 MiB): far above any real shard payload, low
/// enough that a corrupted length field can't drive a multi-gigabyte read.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Frame one record: header, payload, trailing checksum.
pub fn frame(id: u64, payload: &[u8]) -> Result<Vec<u8>, JournalError> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(JournalError::Io(std::io::Error::other(format!(
            "record {id} payload of {} bytes exceeds the {MAX_PAYLOAD}-byte record limit",
            payload.len()
        ))));
    }
    let mut record = Vec::with_capacity(8 + 4 + payload.len() + 8);
    record.extend_from_slice(&id.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(payload);
    let checksum = fnv64(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    Ok(record)
}

/// Scan `bytes` front to back, returning the intact `(id, payload)` records
/// in append order (duplicates preserved) and the byte offset one past the
/// last intact record. Bytes at or after that offset are torn or corrupt.
pub fn scan_bytes(bytes: &[u8]) -> (Vec<(u64, Vec<u8>)>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut good = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 12 {
            break; // empty, or torn header
        }
        let id = u64::from_le_bytes(rest[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(rest[8..12].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break; // corrupt length field
        }
        let len = len as usize;
        if rest.len() < 12 + len + 8 {
            break; // torn payload or checksum
        }
        let body = &rest[..12 + len];
        let stored = u64::from_le_bytes(rest[12 + len..12 + len + 8].try_into().unwrap());
        if fnv64(body) != stored {
            break; // corrupt record: distrust it and everything after
        }
        records.push((id, body[12..].to_vec()));
        pos += 12 + len + 8;
        good = pos as u64;
    }
    (records, good)
}

/// Read a whole log file; a missing file reads as empty (a log that was
/// never created holds no records).
pub fn read_log(path: &Path) -> Result<Vec<u8>, JournalError> {
    match fs::File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            Ok(buf)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_scan_round_trip_preserves_order_and_duplicates() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(3, b"three").unwrap());
        log.extend_from_slice(&frame(1, b"").unwrap());
        log.extend_from_slice(&frame(3, b"three again").unwrap());
        let (records, good) = scan_bytes(&log);
        assert_eq!(good as usize, log.len());
        assert_eq!(
            records,
            vec![(3, b"three".to_vec()), (1, Vec::new()), (3, b"three again".to_vec())]
        );
    }

    #[test]
    fn scan_from_any_record_boundary_is_valid() {
        // Records verify independently: scanning a suffix that starts on a
        // record boundary recovers exactly the records in that suffix.
        let first = frame(0, b"first").unwrap();
        let second = frame(1, b"second").unwrap();
        let mut log = first.clone();
        log.extend_from_slice(&second);
        let (tail, good) = scan_bytes(&log[first.len()..]);
        assert_eq!(tail, vec![(1, b"second".to_vec())]);
        assert_eq!(good as usize, second.len());
    }

    #[test]
    fn oversized_payload_is_refused_at_frame_time() {
        let too_big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(frame(0, &too_big).is_err());
    }
}
