//! The append-only shard journal.
//!
//! One record per completed shard, appended to `shards.log` inside the
//! checkpoint directory. Record framing (all integers little-endian):
//!
//! ```text
//! [u64 shard_id][u32 payload_len][payload bytes][u64 fnv64(shard_id ‖ len ‖ payload)]
//! ```
//!
//! The checksum covers the header *and* the payload, so a record that was
//! torn anywhere — mid-header, mid-payload, mid-checksum — fails
//! verification. On open the log is scanned front to back; the first
//! record that is short or fails its checksum marks the torn tail, and the
//! file is truncated to the last good byte. Everything behind the
//! truncation point is trusted (it was written before the crash and checks
//! out); everything at or after it is treated as never-executed and the
//! driver re-runs those shards. Duplicate shard ids are tolerated
//! first-wins: a crash between "commit" and "driver notices the commit"
//! can legitimately re-append a shard, and determinism makes the copies
//! byte-identical anyway.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record;
use crate::{CampaignManifest, JournalError};

/// File name of the campaign manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest";
/// File name of the append-only shard log inside a checkpoint directory.
pub const LOG_FILE: &str = "shards.log";

/// What [`Journal::open_or_create`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// True if an existing checkpoint was opened (manifest verified),
    /// false if a fresh campaign directory was initialized.
    pub resumed: bool,
    /// Number of intact shard records recovered from the log.
    pub committed: u64,
    /// Bytes of torn/corrupt tail truncated from the log, if any. A crash
    /// mid-append leaves a partial record; it is cut off and the shard
    /// re-executes.
    pub truncated_bytes: u64,
}

/// Append-only, checksummed shard journal bound to a checkpoint directory.
///
/// Created (or re-opened) via [`Journal::open_or_create`]; shards are
/// persisted with [`commit`](Self::commit) and queried with
/// [`get`](Self::get) / [`is_committed`](Self::is_committed).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: HashMap<u64, Vec<u8>>,
    shards: u64,
}

impl Journal {
    /// Open the checkpoint directory at `dir`, creating it (and writing
    /// `manifest` atomically) if this is a fresh campaign.
    ///
    /// On resume the on-disk manifest is verified against `expected`
    /// field-for-field; a mismatch returns
    /// [`JournalError::ManifestMismatch`] and leaves the checkpoint
    /// untouched. The shard log is scanned, a torn tail (crash mid-append)
    /// is truncated, and intact records are loaded into memory for
    /// [`get`](Self::get).
    pub fn open_or_create(
        dir: &Path,
        expected: &CampaignManifest,
    ) -> Result<(Self, OpenReport), JournalError> {
        fs::create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let log_path = dir.join(LOG_FILE);

        let resumed = manifest_path.exists();
        if resumed {
            let on_disk = CampaignManifest::read(&manifest_path)?;
            on_disk.verify_matches(expected)?;
        } else {
            expected.write_atomic(&manifest_path)?;
        }

        let (records, good_len, total_len) = scan_log(&log_path)?;
        let truncated = total_len - good_len;
        if truncated > 0 {
            let f = OpenOptions::new().write(true).open(&log_path)?;
            f.set_len(good_len)?;
            f.sync_all()?;
        }

        let file = OpenOptions::new().create(true).append(true).open(&log_path)?;
        let committed = records.len() as u64;
        let journal = Journal { file, path: log_path, records, shards: expected.shards() };
        Ok((journal, OpenReport { resumed, committed, truncated_bytes: truncated }))
    }

    /// Total shard count declared by the manifest.
    #[must_use]
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Number of shards currently committed.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.records.len() as u64
    }

    /// True once every declared shard is committed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.committed() == self.shards
    }

    /// True if `shard` already has a committed record (skip it on resume).
    #[must_use]
    pub fn is_committed(&self, shard: u64) -> bool {
        self.records.contains_key(&shard)
    }

    /// Committed payload for `shard`, if any.
    #[must_use]
    pub fn get(&self, shard: u64) -> Option<&[u8]> {
        self.records.get(&shard).map(Vec::as_slice)
    }

    /// Append a shard record and flush it to the OS.
    ///
    /// Re-committing an already-committed shard is a no-op (first wins):
    /// shards are deterministic, so a duplicate would be byte-identical.
    /// Durability note: `commit` flushes but does not `fsync`; a record
    /// lost to a power failure is indistinguishable from the shard never
    /// having run, and simply re-executes on resume. Call
    /// [`sync`](Self::sync) at checkpoint boundaries (cancellation,
    /// completion) to force bytes to stable storage.
    pub fn commit(&mut self, shard: u64, payload: &[u8]) -> Result<(), JournalError> {
        if self.records.contains_key(&shard) {
            return Ok(());
        }
        let record = record::frame(shard, payload)?;
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.records.insert(shard, payload.to_vec());
        Ok(())
    }

    /// Force all committed records to stable storage (`fsync`).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Path of the underlying shard log (for diagnostics and tests).
    #[must_use]
    pub fn log_path(&self) -> &Path {
        &self.path
    }
}

/// Scan the shard log, returning the intact records (first-wins on
/// duplicate shard ids), the byte offset of the end of the last intact
/// record, and the file's total length.
#[allow(clippy::type_complexity)]
fn scan_log(path: &Path) -> Result<(HashMap<u64, Vec<u8>>, u64, u64), JournalError> {
    let bytes = record::read_log(path)?;
    let total = bytes.len() as u64;
    let (ordered, good) = record::scan_bytes(&bytes);
    let mut records = HashMap::new();
    for (shard, payload) in ordered {
        records.entry(shard).or_insert(payload);
    }
    Ok((records, good, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paraspace_journal_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn manifest(shards: u64) -> CampaignManifest {
        CampaignManifest::new("test", shards).with_field("engine", "cpu")
    }

    #[test]
    fn fresh_create_commit_reopen() {
        let dir = tmp_dir("fresh");
        let m = manifest(3);
        let (mut j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert_eq!(rep, OpenReport { resumed: false, committed: 0, truncated_bytes: 0 });
        j.commit(0, b"alpha").unwrap();
        j.commit(2, b"gamma").unwrap();
        j.sync().unwrap();
        drop(j);

        let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert!(rep.resumed);
        assert_eq!(rep.committed, 2);
        assert_eq!(rep.truncated_bytes, 0);
        assert_eq!(j.get(0), Some(&b"alpha"[..]));
        assert!(j.get(1).is_none());
        assert_eq!(j.get(2), Some(&b"gamma"[..]));
        assert!(!j.is_complete());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_commit_is_first_wins_noop() {
        let dir = tmp_dir("dup");
        let m = manifest(1);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        j.commit(0, b"first").unwrap();
        let len_after_first = fs::metadata(j.log_path()).unwrap().len();
        j.commit(0, b"second").unwrap();
        assert_eq!(fs::metadata(j.log_path()).unwrap().len(), len_after_first);
        assert_eq!(j.get(0), Some(&b"first"[..]));
        assert!(j.is_complete());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let m = manifest(4);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        j.commit(0, b"keep me").unwrap();
        j.commit(1, b"also keep").unwrap();
        j.commit(2, b"about to be torn").unwrap();
        j.sync().unwrap();
        let log = j.log_path().to_path_buf();
        drop(j);

        // Simulate a crash mid-append of shard 2: cut the file inside the
        // last record (drop its checksum plus a few payload bytes).
        let full = fs::metadata(&log).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(full - 11).unwrap();
        drop(f);

        let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert!(rep.resumed);
        assert_eq!(rep.committed, 2);
        assert!(rep.truncated_bytes > 0);
        assert_eq!(j.get(0), Some(&b"keep me"[..]));
        assert_eq!(j.get(1), Some(&b"also keep"[..]));
        assert!(j.get(2).is_none(), "torn record must not be trusted");
        // The file itself was repaired: reopening again reports no truncation.
        drop(j);
        let (_, rep2) = Journal::open_or_create(&dir, &m).unwrap();
        assert_eq!(rep2.truncated_bytes, 0);
        assert_eq!(rep2.committed, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_invalidates_itself_and_the_tail() {
        let dir = tmp_dir("corrupt");
        let m = manifest(3);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        j.commit(0, b"good").unwrap();
        let end_of_first = fs::metadata(j.log_path()).unwrap().len();
        j.commit(1, b"to be flipped").unwrap();
        j.commit(2, b"behind the corruption").unwrap();
        let log = j.log_path().to_path_buf();
        drop(j);

        // Flip one payload byte inside record 1.
        let mut bytes = fs::read(&log).unwrap();
        let idx = end_of_first as usize + 12 + 3;
        bytes[idx] ^= 0xff;
        fs::write(&log, &bytes).unwrap();

        let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert_eq!(rep.committed, 1, "only the record before the corruption survives");
        assert!(rep.truncated_bytes > 0);
        assert_eq!(j.get(0), Some(&b"good"[..]));
        assert!(j.get(1).is_none());
        assert!(j.get(2).is_none(), "records after a corrupt one are re-executed, not trusted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_cut_at_every_byte_boundary_recovers_a_clean_prefix() {
        // Exhaustive torn-tail sweep: whatever byte the crash lands on, the
        // scan must recover exactly the records wholly before the cut.
        let dir = tmp_dir("sweep");
        let m = manifest(3);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        let payloads: [&[u8]; 3] = [b"r0", b"record one", b"the third record"];
        let mut boundaries = vec![0u64];
        for (i, p) in payloads.iter().enumerate() {
            j.commit(i as u64, p).unwrap();
            boundaries.push(fs::metadata(j.log_path()).unwrap().len());
        }
        let log = j.log_path().to_path_buf();
        let pristine = fs::read(&log).unwrap();
        drop(j);

        for cut in 0..=pristine.len() as u64 {
            fs::write(&log, &pristine).unwrap();
            let f = OpenOptions::new().write(true).open(&log).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let expected_records = boundaries.iter().filter(|&&b| b <= cut && b > 0).count() as u64;
            let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
            assert_eq!(rep.committed, expected_records, "cut at byte {cut}");
            for (i, p) in payloads.iter().enumerate() {
                let committed = boundaries[i + 1] <= cut;
                assert_eq!(j.get(i as u64), committed.then_some(*p), "cut at byte {cut}");
            }
            drop(j);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_manifest_refuses_resume() {
        let dir = tmp_dir("mismatch");
        let m = manifest(2);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        j.commit(0, b"x").unwrap();
        drop(j);

        let other_engine = CampaignManifest::new("test", 2).with_field("engine", "fine");
        match Journal::open_or_create(&dir, &other_engine) {
            Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "engine"),
            other => panic!("expected manifest mismatch, got {other:?}"),
        }
        let other_shards = manifest(5);
        assert!(matches!(
            Journal::open_or_create(&dir, &other_shards),
            Err(JournalError::ManifestMismatch { .. })
        ));
        // The original manifest still resumes fine.
        let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert!(rep.resumed);
        assert_eq!(j.get(0), Some(&b"x"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payloads_and_large_ids_round_trip() {
        let dir = tmp_dir("edge");
        let m = manifest(u64::MAX);
        let (mut j, _) = Journal::open_or_create(&dir, &m).unwrap();
        j.commit(u64::MAX - 1, b"").unwrap();
        drop(j);
        let (j, rep) = Journal::open_or_create(&dir, &m).unwrap();
        assert_eq!(rep.committed, 1);
        assert_eq!(j.get(u64::MAX - 1), Some(&b""[..]));
        fs::remove_dir_all(&dir).ok();
    }
}
