//! Lease-based multi-process coordination over a shared checkpoint
//! directory.
//!
//! The shard journal makes a shard the deterministic, order-free unit of
//! work; this module promotes it to a *distribution contract*. A
//! **coordinator** owns the campaign manifest and the main `shards.log`;
//! N **workers** (threads or separate processes) share the checkpoint
//! directory and coordinate exclusively through files — no sockets, no
//! shared memory — so a worker can be SIGKILLed at any instruction and
//! leave nothing worse than a stale file behind:
//!
//! * `leases/shard_<id>.lease` — an exclusive claim created with
//!   `O_CREAT|O_EXCL` (atomic on every platform the repo targets). The
//!   file names the claiming worker and the grant time. A worker that
//!   finishes a shard atomically renames its lease to
//!   `leases/shard_<id>.done`, closing the window in which a completed
//!   but unmerged shard could be claimed again.
//! * `leases/hb_<worker>` — the worker's heartbeat, rewritten via
//!   tempfile+rename on a cadence well under the lease TTL. A lease whose
//!   worker's heartbeat is older than the TTL is **expired**: the worker
//!   is presumed dead (SIGKILL, hang, stall) and the shard is eligible
//!   for reassignment.
//! * `leases/blame_<worker>` — an optional note (tempfile+rename) saying
//!   *why* the worker should be presumed dead. Transports record blame on
//!   connection loss or worker-reported quarantine so the coordinator's
//!   expiry scan can ledger a transport-failure taxonomy instead of the
//!   generic `heartbeat-expired`.
//! * `segments/<worker>.log` — the worker's private append-only journal
//!   segment, framed and checksummed exactly like `shards.log`. Only the
//!   owning worker writes (and on open truncates the torn tail of) its
//!   segment; the coordinator tails segments read-only and merges intact
//!   records into the main journal by shard id, first-wins.
//! * `retries.log` — the coordinator's append-only retry ledger: one
//!   checksummed record per worker death or quarantine decision, so the
//!   backoff and poison state survives a coordinator restart.
//!
//! Exactly-once is by construction, not by locking: a shard may *execute*
//! more than once (the lease of a dead — or merely slow — worker expires
//! and another worker re-runs it), but engines are bitwise deterministic,
//! so every copy of the record is byte-identical and the first-wins merge
//! into `shards.log` commits exactly one of them.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::codec::{Dec, Enc};
use crate::record;
use crate::JournalError;

/// Subdirectory holding lease, done-marker, and heartbeat files.
pub const LEASES_DIR: &str = "leases";
/// Subdirectory holding per-worker journal segments.
pub const SEGMENTS_DIR: &str = "segments";
/// The coordinator's append-only retry/quarantine ledger.
pub const RETRY_LOG: &str = "retries.log";

/// Milliseconds since the UNIX epoch — the shared clock for heartbeat
/// deadlines. Wall-clock is acceptable because every timestamp that gets
/// *compared* is written on the coordinator's machine: local workers share
/// its filesystem (and clock), and for networked workers the transport
/// server stamps heartbeats and lease grants on RPC receipt, so remote
/// clocks never enter the expiry arithmetic.
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_millis() as u64
}

/// Timing and tolerance knobs for the lease protocol.
///
/// None of these are world-defining: they change *when* work happens,
/// never *what bytes* a shard produces. They are nonetheless journaled in
/// the campaign manifest (`lease_ttl`, `retry_base`) once a campaign is
/// dispatched, because every participant — coordinator, local workers,
/// networked workers — must agree on what "silence past TTL" means; a
/// resume with different timing would judge liveness by different rules
/// than the run it continues, so `resume` refuses mismatched timing the
/// same way it refuses a mismatched model digest.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// A lease is expired once its worker's heartbeat (or, if newer, the
    /// lease grant itself) is older than this.
    pub ttl_ms: u64,
    /// First reassignment delay after a worker death on a shard.
    pub backoff_base_ms: u64,
    /// Ceiling on the exponential reassignment delay.
    pub backoff_cap_ms: u64,
    /// A shard that has killed this many *distinct* workers is quarantined
    /// as a poisoned outcome instead of being reassigned forever.
    pub max_worker_deaths: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            ttl_ms: 2_000,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            max_worker_deaths: 3,
        }
    }
}

impl LeaseConfig {
    /// Reassignment delay after the `deaths`-th death on a shard:
    /// `base · 2^(deaths−1)`, capped.
    #[must_use]
    pub fn backoff_ms(&self, deaths: u32) -> u64 {
        let shift = deaths.saturating_sub(1).min(20);
        self.backoff_base_ms.saturating_mul(1u64 << shift).min(self.backoff_cap_ms)
    }
}

fn validate_worker_id(worker: &str) -> Result<(), JournalError> {
    let ok = !worker.is_empty()
        && worker.len() <= 64
        && worker.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if ok {
        Ok(())
    } else {
        Err(JournalError::Io(std::io::Error::other(format!(
            "invalid worker id {worker:?}: use 1-64 ASCII letters, digits, '-' or '_'"
        ))))
    }
}

/// A granted, still-held lease on one shard.
#[derive(Debug)]
pub struct Lease {
    /// The claimed shard.
    pub shard: u64,
    /// The worker holding the claim.
    pub worker: String,
    /// Grant time (UNIX ms) — the heartbeat deadline baseline.
    pub granted_at_ms: u64,
}

/// What a lease file says about its holder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// The shard the lease covers.
    pub shard: u64,
    /// Claiming worker (empty if the lease file itself was torn).
    pub worker: String,
    /// Grant time in UNIX ms (0 if the lease file was torn).
    pub granted_at_ms: u64,
}

/// Path layout and file-level operations of the lease protocol, rooted at
/// a checkpoint directory. Cheap to construct; both coordinator and
/// workers hold one.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    root: PathBuf,
}

impl LeaseDir {
    /// The lease layout under checkpoint directory `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LeaseDir { root: root.into() }
    }

    /// Create the `leases/` and `segments/` subdirectories (idempotent).
    pub fn ensure(&self) -> Result<(), JournalError> {
        fs::create_dir_all(self.root.join(LEASES_DIR))?;
        fs::create_dir_all(self.root.join(SEGMENTS_DIR))?;
        Ok(())
    }

    /// The checkpoint directory this layout is rooted at.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn lease_path(&self, shard: u64) -> PathBuf {
        self.root.join(LEASES_DIR).join(format!("shard_{shard}.lease"))
    }

    fn done_path(&self, shard: u64) -> PathBuf {
        self.root.join(LEASES_DIR).join(format!("shard_{shard}.done"))
    }

    fn heartbeat_path(&self, worker: &str) -> PathBuf {
        self.root.join(LEASES_DIR).join(format!("hb_{worker}"))
    }

    fn blame_path(&self, worker: &str) -> PathBuf {
        self.root.join(LEASES_DIR).join(format!("blame_{worker}"))
    }

    /// Path of `worker`'s journal segment.
    #[must_use]
    pub fn segment_path(&self, worker: &str) -> PathBuf {
        self.root.join(SEGMENTS_DIR).join(format!("{worker}.log"))
    }

    /// Atomically claim `shard` for `worker`. Returns `Ok(None)` if some
    /// other claim (lease or done marker) already exists — losing the race
    /// is not an error.
    pub fn try_claim(&self, shard: u64, worker: &str) -> Result<Option<Lease>, JournalError> {
        validate_worker_id(worker)?;
        if self.done_path(shard).exists() {
            return Ok(None);
        }
        let granted_at_ms = now_ms();
        let mut f =
            match OpenOptions::new().write(true).create_new(true).open(self.lease_path(shard)) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(None),
                Err(e) => return Err(e.into()),
            };
        let mut enc = Enc::new();
        enc.put_str(worker).put_u64(granted_at_ms);
        f.write_all(&enc.finish())?;
        f.flush()?;
        Ok(Some(Lease { shard, worker: worker.to_string(), granted_at_ms }))
    }

    /// Mark a claimed shard complete: atomically rename the lease to a done
    /// marker, after the shard's record reached the worker's segment.
    /// Returns `false` if the lease is gone or no longer ours — the
    /// coordinator expired it (this worker looked dead) and the shard was
    /// or will be re-executed elsewhere. Either way this worker's record is
    /// already in its segment, and determinism makes duplicates
    /// byte-identical, so a lost lease costs nothing but the wasted work.
    pub fn complete(&self, lease: &Lease) -> Result<bool, JournalError> {
        // Verify the lease on disk is still the one we were granted: after
        // an expiry + reassignment the path may hold another worker's claim,
        // which a blind rename would clobber.
        let on_disk = match fs::read(self.lease_path(lease.shard)) {
            Ok(bytes) => parse_lease(lease.shard, &bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        if on_disk.worker != lease.worker || on_disk.granted_at_ms != lease.granted_at_ms {
            return Ok(false);
        }
        match fs::rename(self.lease_path(lease.shard), self.done_path(lease.shard)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Delete the lease for `lease.shard` only if it is still the exact
    /// lease we were granted (worker: hand a shard back on clean
    /// cancellation without clobbering a reassigned claim). Returns `true`
    /// if this call removed our lease.
    pub fn release_if_owner(&self, lease: &Lease) -> Result<bool, JournalError> {
        let on_disk = match fs::read(self.lease_path(lease.shard)) {
            Ok(bytes) => parse_lease(lease.shard, &bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        if on_disk.worker != lease.worker || on_disk.granted_at_ms != lease.granted_at_ms {
            return Ok(false);
        }
        match fs::remove_file(self.lease_path(lease.shard)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Delete the lease file for `shard` (coordinator: reassign an expired
    /// lease once its backoff elapses). Missing file is fine.
    pub fn release(&self, shard: u64) -> Result<(), JournalError> {
        match fs::remove_file(self.lease_path(shard)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Delete the done marker for `shard` (coordinator: after the shard is
    /// merged into the main journal). Missing file is fine.
    pub fn clear_done(&self, shard: u64) -> Result<(), JournalError> {
        match fs::remove_file(self.done_path(shard)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// All live lease files, ascending by shard id. A lease file that is
    /// unreadable or torn reports an empty worker and grant time 0 — it
    /// will look expired and be reassigned, which is the safe direction.
    pub fn list_leases(&self) -> Result<Vec<LeaseInfo>, JournalError> {
        let mut out = Vec::new();
        for entry in read_dir_tolerant(&self.root.join(LEASES_DIR))? {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(shard) = parse_marker(name, "shard_", ".lease") else { continue };
            let info = match fs::read(entry.path()) {
                Ok(bytes) => parse_lease(shard, &bytes),
                Err(_) => LeaseInfo { shard, worker: String::new(), granted_at_ms: 0 },
            };
            out.push(info);
        }
        out.sort_by_key(|l| l.shard);
        Ok(out)
    }

    /// Shard ids with a done marker (completed but not yet merged).
    pub fn list_done(&self) -> Result<Vec<u64>, JournalError> {
        let mut out = Vec::new();
        for entry in read_dir_tolerant(&self.root.join(LEASES_DIR))? {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(shard) = parse_marker(name, "shard_", ".done") {
                out.push(shard);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// True if `shard` currently has a lease or done marker — i.e. is not
    /// claimable.
    pub fn is_claimed(&self, shard: u64) -> bool {
        self.lease_path(shard).exists() || self.done_path(shard).exists()
    }

    /// True if `shard` has a done marker (completed but not yet merged).
    #[must_use]
    pub fn is_done(&self, shard: u64) -> bool {
        self.done_path(shard).exists()
    }

    /// The live lease on `shard`, if any. A torn lease file reads as an
    /// empty worker with grant time 0, same as [`LeaseDir::list_leases`].
    pub fn lease_info(&self, shard: u64) -> Result<Option<LeaseInfo>, JournalError> {
        match fs::read(self.lease_path(shard)) {
            Ok(bytes) => Ok(Some(parse_lease(shard, &bytes))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Record *why* `worker` should be presumed dead (atomic
    /// tempfile+rename; the latest note wins). Transports write blame notes
    /// — `transport: connection lost`, a worker-reported quarantine reason —
    /// so the coordinator's expiry scan can attach a failure taxonomy to
    /// the death instead of the generic `heartbeat-expired`.
    pub fn blame(&self, worker: &str, reason: &str) -> Result<(), JournalError> {
        validate_worker_id(worker)?;
        let path = self.blame_path(worker);
        let tmp = self.root.join(LEASES_DIR).join(format!("blame_{worker}.tmp"));
        let mut f = File::create(&tmp)?;
        f.write_all(reason.as_bytes())?;
        f.flush()?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// The blame note for `worker`, if one was recorded.
    pub fn read_blame(&self, worker: &str) -> Result<Option<String>, JournalError> {
        match fs::read(self.blame_path(worker)) {
            Ok(bytes) => Ok(Some(String::from_utf8_lossy(&bytes).into_owned())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Remove `worker`'s blame note (after its death is ledgered, so a
    /// later incarnation of the same worker id starts clean).
    pub fn clear_blame(&self, worker: &str) -> Result<(), JournalError> {
        match fs::remove_file(self.blame_path(worker)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Write `worker`'s heartbeat (atomic tempfile+rename, so a reader
    /// never observes a torn heartbeat).
    pub fn beat(&self, worker: &str, counter: u64) -> Result<(), JournalError> {
        validate_worker_id(worker)?;
        let path = self.heartbeat_path(worker);
        let tmp = self.root.join(LEASES_DIR).join(format!("hb_{worker}.tmp"));
        let mut enc = Enc::new();
        enc.put_u64(counter).put_u64(now_ms());
        let mut f = File::create(&tmp)?;
        f.write_all(&enc.finish())?;
        f.flush()?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// The UNIX-ms timestamp of `worker`'s last heartbeat, if any.
    pub fn last_heartbeat_ms(&self, worker: &str) -> Result<Option<u64>, JournalError> {
        let bytes = match fs::read(self.heartbeat_path(worker)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut dec = Dec::new(&bytes);
        let _counter = dec.u64()?;
        Ok(Some(dec.u64()?))
    }
}

fn parse_lease(shard: u64, bytes: &[u8]) -> LeaseInfo {
    let mut dec = Dec::new(bytes);
    match (|| -> Result<(String, u64), JournalError> {
        let worker = dec.str()?.to_string();
        let granted = dec.u64()?;
        Ok((worker, granted))
    })() {
        Ok((worker, granted_at_ms)) => LeaseInfo { shard, worker, granted_at_ms },
        Err(_) => LeaseInfo { shard, worker: String::new(), granted_at_ms: 0 },
    }
}

fn parse_marker(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn read_dir_tolerant(dir: &Path) -> Result<Vec<fs::DirEntry>, JournalError> {
    match fs::read_dir(dir) {
        Ok(entries) => Ok(entries.filter_map(Result::ok).collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// A worker's private append-only journal segment (writer side).
///
/// Same framing and torn-tail semantics as `shards.log`, but with a strict
/// single-writer ownership rule: only the owning worker may append to or
/// truncate its segment. Opening the segment truncates any torn tail left
/// by a previous incarnation of the same worker id — safe because the
/// coordinator's reader only ever advances past *verified* records, so the
/// truncated bytes were never merged.
#[derive(Debug)]
pub struct Segment {
    file: File,
    path: PathBuf,
}

impl Segment {
    /// Open (or create) `worker`'s segment, truncating a torn tail.
    /// Returns the segment and the number of torn bytes cut off.
    pub fn open(dir: &LeaseDir, worker: &str) -> Result<(Self, u64), JournalError> {
        validate_worker_id(worker)?;
        let path = dir.segment_path(worker);
        let bytes = record::read_log(&path)?;
        let (_, good) = record::scan_bytes(&bytes);
        let torn = bytes.len() as u64 - good;
        if torn > 0 {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((Segment { file, path }, torn))
    }

    /// Append one shard record and flush it to the OS.
    pub fn append(&mut self, shard: u64, payload: &[u8]) -> Result<(), JournalError> {
        let record = record::frame(shard, payload)?;
        self.file.write_all(&record)?;
        self.file.flush()?;
        Ok(())
    }

    /// Chaos hook: append only the first `cut` bytes of the framed record —
    /// a deterministic torn write, as if the worker died mid-append.
    pub fn append_torn(
        &mut self,
        shard: u64,
        payload: &[u8],
        cut: usize,
    ) -> Result<(), JournalError> {
        let record = record::frame(shard, payload)?;
        let cut = cut.min(record.len().saturating_sub(1)).max(1);
        self.file.write_all(&record[..cut])?;
        self.file.flush()?;
        Ok(())
    }

    /// Path of the segment file (diagnostics and tests).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read-only incremental tail over one worker segment (coordinator side).
///
/// Never truncates: a torn tail in a *live* segment is usually just a
/// record whose flush hasn't completed yet, so the reader stops before it
/// and re-scans from the same offset on the next poll.
#[derive(Debug)]
pub struct SegmentReader {
    path: PathBuf,
    offset: u64,
}

impl SegmentReader {
    /// A reader over the segment file at `path`, starting at byte 0.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SegmentReader { path: path.into(), offset: 0 }
    }

    /// Verified records appended since the last poll, in append order.
    /// Advances only past records that verified; a missing file or torn
    /// tail yields what is intact and waits.
    pub fn poll(&mut self) -> Result<Vec<(u64, Vec<u8>)>, JournalError> {
        let bytes = record::read_log(&self.path)?;
        if (bytes.len() as u64) < self.offset {
            // The owner truncated a torn tail below our offset; that can
            // only cut unverified bytes, so rewinding to the new end is safe.
            self.offset = bytes.len() as u64;
        }
        let (records, good) = record::scan_bytes(&bytes[self.offset as usize..]);
        self.offset += good;
        Ok(records)
    }
}

/// Reason a retry-ledger record was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryEvent {
    /// A worker holding the shard's lease missed its heartbeat deadline.
    WorkerDeath,
    /// The shard exceeded [`LeaseConfig::max_worker_deaths`] and was
    /// committed as a poisoned outcome.
    Quarantine,
}

/// Accumulated ledger state for one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryState {
    /// Total recorded deaths on this shard.
    pub deaths: u32,
    /// The distinct workers that died holding this shard's lease.
    pub workers: BTreeSet<String>,
    /// Earliest UNIX-ms time the shard may be reassigned.
    pub not_before_ms: u64,
    /// True once the shard was quarantined.
    pub quarantined: bool,
    /// Failure taxonomy, newest last (e.g. `heartbeat-expired`, `stalled`).
    pub reasons: Vec<String>,
}

/// The coordinator's append-only retry/quarantine ledger.
///
/// Single-writer (the coordinator), checksummed with the shared record
/// framing, torn tail truncated on open. Rebuilding the in-memory state on
/// open is what lets backoff schedules and quarantine decisions survive a
/// coordinator crash.
#[derive(Debug)]
pub struct RetryLedger {
    file: File,
    state: BTreeMap<u64, RetryState>,
}

impl RetryLedger {
    /// Open (or create) the ledger under checkpoint directory `root` and
    /// replay it into memory.
    pub fn open(root: &Path) -> Result<Self, JournalError> {
        let path = root.join(RETRY_LOG);
        let bytes = record::read_log(&path)?;
        let (records, good) = record::scan_bytes(&bytes);
        if (bytes.len() as u64) > good {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good)?;
            f.sync_all()?;
        }
        let mut state: BTreeMap<u64, RetryState> = BTreeMap::new();
        for (shard, payload) in &records {
            let entry = state.entry(*shard).or_default();
            apply_ledger_record(entry, payload)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(RetryLedger { file, state })
    }

    /// Record a worker death on `shard` and schedule its reassignment.
    pub fn record_death(
        &mut self,
        shard: u64,
        worker: &str,
        reason: &str,
        at_ms: u64,
        not_before_ms: u64,
    ) -> Result<(), JournalError> {
        let mut enc = Enc::new();
        enc.put_u32(TAG_DEATH)
            .put_str(worker)
            .put_str(reason)
            .put_u64(at_ms)
            .put_u64(not_before_ms);
        let payload = enc.finish();
        self.append(shard, &payload)?;
        apply_ledger_record(self.state.entry(shard).or_default(), &payload)
    }

    /// Record the quarantine decision for `shard`.
    pub fn record_quarantine(
        &mut self,
        shard: u64,
        reason: &str,
        at_ms: u64,
    ) -> Result<(), JournalError> {
        let mut enc = Enc::new();
        enc.put_u32(TAG_QUARANTINE).put_str("").put_str(reason).put_u64(at_ms).put_u64(0);
        let payload = enc.finish();
        self.append(shard, &payload)?;
        apply_ledger_record(self.state.entry(shard).or_default(), &payload)
    }

    fn append(&mut self, shard: u64, payload: &[u8]) -> Result<(), JournalError> {
        let record = record::frame(shard, payload)?;
        self.file.write_all(&record)?;
        self.file.flush()?;
        Ok(())
    }

    /// Ledger state for `shard`, if any event was recorded.
    #[must_use]
    pub fn state(&self, shard: u64) -> Option<&RetryState> {
        self.state.get(&shard)
    }

    /// Number of distinct workers that died holding `shard`.
    #[must_use]
    pub fn distinct_deaths(&self, shard: u64) -> u32 {
        self.state.get(&shard).map_or(0, |s| s.workers.len() as u32)
    }

    /// True if `worker`'s death on `shard` is already recorded (keeps a
    /// coordinator restart from double-counting a still-stale lease).
    #[must_use]
    pub fn has_death(&self, shard: u64, worker: &str) -> bool {
        self.state.get(&shard).is_some_and(|s| s.workers.contains(worker))
    }

    /// All shards with ledger state.
    pub fn states(&self) -> impl Iterator<Item = (u64, &RetryState)> {
        self.state.iter().map(|(&s, st)| (s, st))
    }
}

const TAG_DEATH: u32 = 0;
const TAG_QUARANTINE: u32 = 1;

fn apply_ledger_record(entry: &mut RetryState, payload: &[u8]) -> Result<(), JournalError> {
    let mut dec = Dec::new(payload);
    let tag = dec.u32()?;
    let worker = dec.str()?.to_string();
    let reason = dec.str()?.to_string();
    let _at_ms = dec.u64()?;
    let not_before_ms = dec.u64()?;
    dec.expect_exhausted()?;
    match tag {
        TAG_DEATH => {
            entry.deaths += 1;
            entry.workers.insert(worker);
            entry.not_before_ms = entry.not_before_ms.max(not_before_ms);
            entry.reasons.push(reason);
        }
        TAG_QUARANTINE => {
            entry.quarantined = true;
            entry.reasons.push(reason);
        }
        other => {
            return Err(JournalError::MalformedPayload {
                message: format!("unknown retry-ledger tag {other}"),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paraspace_lease_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_is_exclusive_and_complete_renames_to_done() {
        let dir = tmp_dir("claim");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        let lease = leases.try_claim(7, "w0").unwrap().expect("first claim wins");
        assert!(leases.try_claim(7, "w1").unwrap().is_none(), "second claim must lose");
        assert!(leases.is_claimed(7));
        let listed = leases.list_leases().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].worker, "w0");
        assert_eq!(listed[0].shard, 7);
        assert!(listed[0].granted_at_ms > 0);

        assert!(leases.complete(&lease).unwrap());
        assert!(leases.list_leases().unwrap().is_empty());
        assert_eq!(leases.list_done().unwrap(), vec![7]);
        // Done marker still blocks claims until the coordinator merges.
        assert!(leases.try_claim(7, "w1").unwrap().is_none());
        leases.clear_done(7).unwrap();
        assert!(leases.try_claim(7, "w1").unwrap().is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_lease_release_lets_another_worker_claim_and_complete_reports_loss() {
        let dir = tmp_dir("expire");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        let stale = leases.try_claim(3, "dead").unwrap().unwrap();
        leases.release(3).unwrap(); // coordinator expired it
        let fresh = leases.try_claim(3, "alive").unwrap().expect("reassignment claim");
        // The presumed-dead worker finishes anyway: its complete() must not
        // steal or corrupt the new claim.
        assert!(!leases.complete(&stale).unwrap(), "lost lease reports false");
        assert!(leases.complete(&fresh).unwrap());
        assert_eq!(leases.list_done().unwrap(), vec![3]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heartbeats_round_trip_and_missing_reads_as_none() {
        let dir = tmp_dir("hb");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        assert_eq!(leases.last_heartbeat_ms("w0").unwrap(), None);
        let before = now_ms();
        leases.beat("w0", 1).unwrap();
        let at = leases.last_heartbeat_ms("w0").unwrap().unwrap();
        assert!(at >= before && at <= now_ms() + 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blame_notes_round_trip_and_clear() {
        let dir = tmp_dir("blame");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        assert_eq!(leases.read_blame("w0").unwrap(), None);
        leases.blame("w0", "transport: connection lost (read timeout)").unwrap();
        leases.blame("w0", "transport: worker quarantined shard").unwrap();
        assert_eq!(
            leases.read_blame("w0").unwrap().as_deref(),
            Some("transport: worker quarantined shard"),
            "latest note wins"
        );
        leases.clear_blame("w0").unwrap();
        leases.clear_blame("w0").unwrap(); // idempotent
        assert_eq!(leases.read_blame("w0").unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_info_reads_one_shard_without_listing() {
        let dir = tmp_dir("info");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        assert_eq!(leases.lease_info(2).unwrap(), None);
        let lease = leases.try_claim(2, "w3").unwrap().unwrap();
        let info = leases.lease_info(2).unwrap().unwrap();
        assert_eq!(info.worker, "w3");
        assert_eq!(info.granted_at_ms, lease.granted_at_ms);
        assert!(!leases.is_done(2));
        leases.complete(&lease).unwrap();
        assert!(leases.is_done(2));
        assert_eq!(leases.lease_info(2).unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_ids_with_path_characters_are_refused() {
        let dir = tmp_dir("ids");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        for bad in ["", "a/b", "..", "a b", "x\u{e9}"] {
            assert!(leases.try_claim(0, bad).is_err(), "{bad:?} must be refused");
            assert!(leases.beat(bad, 0).is_err());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_owner_truncates_torn_tail_but_reader_never_does() {
        let dir = tmp_dir("segment");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        let (mut seg, torn) = Segment::open(&leases, "w0").unwrap();
        assert_eq!(torn, 0);
        seg.append(0, b"alpha").unwrap();
        seg.append(1, b"beta").unwrap();
        seg.append_torn(2, b"gamma", 9).unwrap(); // deterministic torn write
        let path = seg.path().to_path_buf();
        drop(seg);

        // Reader: sees the two intact records, leaves the torn tail alone.
        let mut reader = SegmentReader::new(&path);
        assert_eq!(reader.poll().unwrap(), vec![(0, b"alpha".to_vec()), (1, b"beta".to_vec())]);
        assert_eq!(reader.poll().unwrap(), Vec::new());
        let len_with_torn = fs::metadata(&path).unwrap().len();

        // Owner re-opens (worker restart): torn tail is truncated.
        let (mut seg, torn) = Segment::open(&leases, "w0").unwrap();
        assert!(torn > 0);
        assert!(fs::metadata(&path).unwrap().len() < len_with_torn);
        // The record completes for real this time; the reader picks it up
        // from its remembered offset.
        seg.append(2, b"gamma").unwrap();
        assert_eq!(reader.poll().unwrap(), vec![(2, b"gamma".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_reader_tolerates_missing_file_then_catches_up() {
        let dir = tmp_dir("latecomer");
        let leases = LeaseDir::new(&dir);
        leases.ensure().unwrap();
        let mut reader = SegmentReader::new(leases.segment_path("w9"));
        assert_eq!(reader.poll().unwrap(), Vec::new());
        let (mut seg, _) = Segment::open(&leases, "w9").unwrap();
        seg.append(5, b"late").unwrap();
        assert_eq!(reader.poll().unwrap(), vec![(5, b"late".to_vec())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_ledger_replays_backoff_and_quarantine_across_reopen() {
        let dir = tmp_dir("ledger");
        let cfg = LeaseConfig::default();
        {
            let mut ledger = RetryLedger::open(&dir).unwrap();
            ledger
                .record_death(4, "w0", "heartbeat-expired", 1_000, 1_000 + cfg.backoff_ms(1))
                .unwrap();
            ledger
                .record_death(4, "w1", "heartbeat-expired", 2_000, 2_000 + cfg.backoff_ms(2))
                .unwrap();
            ledger.record_death(4, "w1", "stalled", 3_000, 3_000 + cfg.backoff_ms(3)).unwrap();
            assert_eq!(ledger.distinct_deaths(4), 2, "same worker twice counts once");
            assert!(ledger.has_death(4, "w0"));
            assert!(!ledger.has_death(4, "w7"));
        }
        let mut ledger = RetryLedger::open(&dir).unwrap();
        let st = ledger.state(4).unwrap().clone();
        assert_eq!(st.deaths, 3);
        assert_eq!(st.workers.len(), 2);
        assert_eq!(st.not_before_ms, 3_000 + cfg.backoff_ms(3));
        assert!(!st.quarantined);
        assert_eq!(st.reasons, vec!["heartbeat-expired", "heartbeat-expired", "stalled"]);

        ledger.record_quarantine(4, "3 deaths by 2 workers", 4_000).unwrap();
        drop(ledger);
        let ledger = RetryLedger::open(&dir).unwrap();
        assert!(ledger.state(4).unwrap().quarantined);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_ledger_truncates_its_own_torn_tail() {
        let dir = tmp_dir("ledger_torn");
        {
            let mut ledger = RetryLedger::open(&dir).unwrap();
            ledger.record_death(0, "w0", "x", 1, 2).unwrap();
            ledger.record_death(1, "w0", "y", 3, 4).unwrap();
        }
        let path = dir.join(RETRY_LOG);
        let full = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let ledger = RetryLedger::open(&dir).unwrap();
        assert!(ledger.state(0).is_some());
        assert!(ledger.state(1).is_none(), "torn record must not be trusted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let cfg = LeaseConfig {
            ttl_ms: 100,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            max_worker_deaths: 3,
        };
        assert_eq!(cfg.backoff_ms(1), 100);
        assert_eq!(cfg.backoff_ms(2), 200);
        assert_eq!(cfg.backoff_ms(3), 400);
        assert_eq!(cfg.backoff_ms(4), 800);
        assert_eq!(cfg.backoff_ms(5), 1_000, "capped");
        assert_eq!(cfg.backoff_ms(60), 1_000, "shift saturates, no overflow");
    }
}
