//! Crash-safe campaign durability: a write-ahead manifest plus an
//! append-only shard journal.
//!
//! The paper's headline workloads — PSA-2D maps, Sobol sensitivity tables,
//! parameter-estimation runs — are hour-scale campaigns of millions of
//! *independent* member simulations. Independence is what makes them
//! checkpointable at near-zero cost: a campaign decomposes into
//! deterministic numbered **shards** (one engine batch each), and the only
//! state worth persisting is the set of completed shard results. This crate
//! provides exactly that, and nothing engine-specific:
//!
//! * [`CampaignManifest`] — the write-ahead description of the campaign
//!   (model digest, job/axis spec digest, engine and thread/width
//!   configuration, recovery policy, shard decomposition), written
//!   atomically via tempfile+rename **before** any shard executes, so a
//!   resume can refuse to continue into a mismatched world;
//! * [`Journal`] — an append-only shard log with per-record checksums.
//!   Records are framed and FNV-64-checksummed; on open, a torn tail
//!   (partial record from a crash mid-append) or a corrupted record is
//!   detected, reported, and **truncated** — never trusted — so the
//!   affected shard simply re-executes;
//! * [`codec`] — little-endian payload encode/decode helpers so campaign
//!   drivers persist f64 results **bit-exactly** (resume must reproduce
//!   the uninterrupted run byte for byte, which rules out decimal
//!   round-trips);
//! * [`lease`] — the multi-process distribution contract layered on the
//!   same checkpoint directory: atomic shard leases, worker heartbeats,
//!   per-worker journal segments sharing the record framing of
//!   `shards.log`, and the coordinator's retry/quarantine ledger;
//! * [`record`] — the checksummed record framing shared by every
//!   append-only log, exposed publicly so transports can stream segment
//!   records that are byte-identical to file-journaled ones.
//!
//! The durability contract is *re-execution, not redo logging*: a commit
//! that never reached the disk is equivalent to the shard never having
//! run, because shards are deterministic and idempotent. [`Journal::commit`]
//! therefore writes and flushes each record but leaves `fsync` to the
//! explicit [`Journal::sync`] checkpoints (end of campaign, cooperative
//! cancellation), keeping the steady-state overhead to one buffered write
//! per shard.
//!
//! # Example
//!
//! ```
//! use paraspace_journal::{CampaignManifest, Journal};
//!
//! let dir = std::env::temp_dir().join(format!("journal_doc_{}", std::process::id()));
//! let manifest = CampaignManifest::new("doc-campaign", 4)
//!     .with_field("engine", "fine")
//!     .with_digest("model", 0xfeed);
//! let (mut journal, report) = Journal::open_or_create(&dir, &manifest).unwrap();
//! assert!(!report.resumed);
//! journal.commit(0, b"shard zero result").unwrap();
//!
//! // A later process resumes: shard 0 is already committed.
//! let (mut journal, report) = Journal::open_or_create(&dir, &manifest).unwrap();
//! assert!(report.resumed);
//! assert_eq!(journal.get(0), Some(&b"shard zero result"[..]));
//! assert!(journal.get(1).is_none());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

mod manifest;
mod shards;

pub mod codec;
pub mod lease;
pub mod record;

pub use manifest::CampaignManifest;
pub use shards::{Journal, OpenReport, LOG_FILE, MANIFEST_FILE};

use std::fmt;

/// The 64-bit FNV-1a hash — the record checksum and the digest primitive
/// campaign drivers use to fingerprint models and job specs.
///
/// Not cryptographic: the journal defends against crashes and bit rot, not
/// adversaries. What matters is that the digest is cheap, dependency-free,
/// and stable across platforms and runs.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Durability-layer failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The on-disk manifest does not parse as a campaign manifest.
    MalformedManifest {
        /// What was wrong.
        message: String,
    },
    /// The on-disk manifest describes a different campaign than the one
    /// being resumed — continuing would silently mix two worlds.
    ManifestMismatch {
        /// The manifest key that differs.
        field: String,
        /// Value recorded when the campaign started.
        on_disk: String,
        /// Value the resuming process expects.
        expected: String,
    },
    /// A payload failed to decode (journal written by an incompatible
    /// version, or a caller bug).
    MalformedPayload {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::MalformedManifest { message } => {
                write!(f, "malformed campaign manifest: {message}")
            }
            JournalError::ManifestMismatch { field, on_disk, expected } => write!(
                f,
                "checkpoint belongs to a different campaign: {field} was {on_disk:?} \
                 but this run expects {expected:?}"
            ),
            JournalError::MalformedPayload { message } => {
                write!(f, "malformed shard payload: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn error_display_names_the_mismatched_field() {
        let e = JournalError::ManifestMismatch {
            field: "engine".into(),
            on_disk: "fine".into(),
            expected: "coarse".into(),
        };
        let text = e.to_string();
        assert!(text.contains("engine") && text.contains("fine") && text.contains("coarse"));
    }
}
