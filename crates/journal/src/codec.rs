//! Deterministic little-endian payload encoding.
//!
//! Shard payloads must round-trip *bit-exactly*: the whole durability
//! guarantee is that a resumed campaign reassembles byte-identical results,
//! and a single f64 that went through a decimal print/parse cycle breaks
//! it. [`Enc`]/[`Dec`] therefore serialize floats as their raw IEEE-754
//! bits and integers in fixed-width little-endian form — no locale, no
//! formatting, no platform variance.
//!
//! The journal crate stays engine-agnostic: drivers in `analysis` and the
//! CLI define their own payload layouts on top of these primitives.

use crate::JournalError;

/// Append-only payload encoder.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Enc::default()
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append a length-prefixed slice of `f64` bit patterns.
    pub fn put_f64_slice(&mut self, v: &[f64]) -> &mut Self {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
        self
    }

    /// Finish and take the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based payload decoder; every read is bounds-checked and a short
/// or oversized field yields [`JournalError::MalformedPayload`] instead of
/// a panic, so a hostile or version-skewed payload can't crash a resume.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            JournalError::MalformedPayload {
                message: format!(
                    "payload truncated: wanted {n} bytes at offset {} of {}",
                    self.pos,
                    self.bytes.len()
                ),
            }
        })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], JournalError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| JournalError::MalformedPayload {
            message: format!("byte-string length {len} does not fit in memory"),
        })?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, JournalError> {
        std::str::from_utf8(self.bytes()?).map_err(|e| JournalError::MalformedPayload {
            message: format!("invalid UTF-8 in payload string: {e}"),
        })
    }

    /// Read a length-prefixed slice of `f64` bit patterns.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, JournalError> {
        let len = self.u64()?;
        // Bound by the remaining bytes so a corrupt length can't OOM us.
        let remaining = (self.bytes.len() - self.pos) / 8;
        let len = usize::try_from(len).ok().filter(|&l| l <= remaining).ok_or_else(|| {
            JournalError::MalformedPayload {
                message: format!("f64 slice length {len} exceeds remaining payload"),
            }
        })?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// True once every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Error unless the payload was consumed exactly — catches layout skew
    /// between the writer and reader early.
    pub fn expect_exhausted(&self) -> Result<(), JournalError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(JournalError::MalformedPayload {
                message: format!(
                    "{} trailing bytes after decoding payload",
                    self.bytes.len() - self.pos
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let values = [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -3.25e-300];
        let mut enc = Enc::new();
        enc.put_u64(42).put_u32(7).put_str("shard name").put_f64_slice(&values);
        enc.put_f64(f64::NEG_INFINITY);
        let bytes = enc.finish();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u64().unwrap(), 42);
        assert_eq!(dec.u32().unwrap(), 7);
        assert_eq!(dec.str().unwrap(), "shard name");
        let decoded = dec.f64_vec().unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in decoded.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip, NaN included");
        }
        assert_eq!(dec.f64().unwrap(), f64::NEG_INFINITY);
        dec.expect_exhausted().unwrap();
    }

    #[test]
    fn truncated_and_oversized_payloads_error_not_panic() {
        let mut enc = Enc::new();
        enc.put_u64(1).put_str("hello");
        let bytes = enc.finish();

        // Cut at every byte: decoding must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            let ok = dec.u64().and_then(|_| dec.str().map(|_| ()));
            assert!(ok.is_err(), "cut at {cut} must be a decode error");
        }

        // A length field claiming more data than exists.
        let mut lying = Enc::new();
        lying.put_u64(u64::MAX);
        let lying = lying.finish();
        assert!(Dec::new(&lying).bytes().is_err());
        assert!(Dec::new(&lying).f64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut enc = Enc::new();
        enc.put_u32(1).put_u32(2);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        dec.u32().unwrap();
        assert!(dec.expect_exhausted().is_err());
        dec.u32().unwrap();
        dec.expect_exhausted().unwrap();
    }
}
