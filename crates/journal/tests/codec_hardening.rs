//! Adversarial property tests for the payload codec and the checksummed
//! record framing: truncation at every byte offset must decode to an
//! error (never a panic, never a silent success), and any single flipped
//! bit in a log file must be caught by the fnv64 record checksum so that
//! readers trust only the intact prefix.

use proptest::prelude::*;

use paraspace_journal::codec::{Dec, Enc};
use paraspace_journal::lease::{LeaseDir, Segment, SegmentReader};
use paraspace_journal::{CampaignManifest, Journal};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "paraspace_codec_{tag}_{}_{:x}",
        std::process::id(),
        rand_suffix()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    N.fetch_add(1, Ordering::Relaxed)
}

/// Decode the exact layout `encode_payload` writes; errors must surface as
/// `Err`, not panics.
fn decode_payload(
    bytes: &[u8],
) -> Result<(u64, String, Vec<f64>, u32), paraspace_journal::JournalError> {
    let mut dec = Dec::new(bytes);
    let id = dec.u64()?;
    let label = dec.str()?.to_owned();
    let series = dec.f64_vec()?;
    let flags = dec.u32()?;
    dec.expect_exhausted()?;
    Ok((id, label, series, flags))
}

fn encode_payload(id: u64, label: &str, series: &[f64], flags: u32) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(id).put_str(label).put_f64_slice(series).put_u32(flags);
    enc.finish()
}

proptest! {
    /// Every strict prefix of a well-formed payload is a decode error;
    /// the full payload round-trips bit-exactly.
    #[test]
    fn truncation_at_every_offset_is_rejected(
        id in 0u64..u64::MAX,
        label_seed in 0u64..u64::MAX,
        label_len in 0usize..24,
        series_bits in prop::collection::vec(0u64..u64::MAX, 0..12),
        flags in 0u32..u32::MAX,
    ) {
        // Label bytes derived from the seed; full-bit-pattern f64s (NaNs,
        // infinities, subnormals included) from raw u64 bits.
        let label: String = (0..label_len)
            .map(|i| char::from(b'a' + ((label_seed >> (i % 8)) % 26) as u8))
            .collect();
        let series: Vec<f64> = series_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let bytes = encode_payload(id, &label, &series, flags);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_payload(&bytes[..cut]).is_err(),
                "decode of a {cut}-byte prefix (of {}) must fail", bytes.len()
            );
        }
        let (rid, rlabel, rseries, rflags) = decode_payload(&bytes).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(rlabel, label);
        prop_assert_eq!(rseries.len(), series.len());
        for (a, b) in rseries.iter().zip(series.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(rflags, flags);
    }

    /// Flip one bit anywhere in a worker journal segment: the reader must
    /// return exactly the records that precede the damaged one — the
    /// checksum catches the flip, and nothing corrupt is ever surfaced.
    #[test]
    fn flipped_bit_in_segment_truncates_trust_at_the_damaged_record(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255u8, 0..64), 1..8),
        flip_seed in 0u64..u64::MAX,
    ) {
        let root = temp_dir("segment_flip");
        let dir = LeaseDir::new(&root);
        dir.ensure().unwrap();
        let (mut seg, _) = Segment::open(&dir, "w0").unwrap();
        let mut lens = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            seg.append(i as u64, p).unwrap();
            // Frame overhead: 8 (id) + 4 (len) + payload + 8 (fnv64).
            lens.push(8 + 4 + p.len() + 8);
        }
        let path = seg.path().to_path_buf();
        drop(seg);

        let mut log = std::fs::read(&path).unwrap();
        let total: usize = lens.iter().sum();
        prop_assert_eq!(log.len(), total);
        let bit = (flip_seed % (total as u64 * 8)) as usize;
        log[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &log).unwrap();

        // Which record does the flipped byte land in?
        let mut damaged = 0usize;
        let mut offset = 0usize;
        for (i, len) in lens.iter().enumerate() {
            if bit / 8 < offset + len {
                damaged = i;
                break;
            }
            offset += len;
        }

        let polled = SegmentReader::new(&path).poll().unwrap();
        prop_assert_eq!(polled.len(), damaged, "trust must end at the damaged record");
        for (i, (id, payload)) in polled.iter().enumerate() {
            prop_assert_eq!(*id, i as u64);
            prop_assert_eq!(payload, &payloads[i]);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    /// The main shard journal self-heals on reopen: a flipped bit in the
    /// tail is truncated by the owner and only the intact prefix stays
    /// committed.
    #[test]
    fn flipped_bit_in_shard_journal_is_truncated_on_reopen(
        flip_seed in 0u64..u64::MAX,
    ) {
        let root = temp_dir("journal_flip");
        let manifest = CampaignManifest::new("codec-hardening", 4);
        let log_path = {
            let (mut journal, _) = Journal::open_or_create(&root, &manifest).unwrap();
            for shard in 0..4u64 {
                journal.commit(shard, format!("payload-{shard}").as_bytes()).unwrap();
            }
            journal.sync().unwrap();
            journal.log_path().to_path_buf()
        };
        let mut log = std::fs::read(&log_path).unwrap();
        let bit = (flip_seed % (log.len() as u64 * 8)) as usize;
        log[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&log_path, &log).unwrap();

        let (journal, report) = Journal::open_or_create(&root, &manifest).unwrap();
        prop_assert!(report.truncated_bytes > 0, "the corrupt tail must be cut");
        // Shards were committed in order 0..4, so only an intact prefix of
        // that order survives, each byte-exact.
        let committed = journal.committed();
        prop_assert!(committed < 4);
        for shard in 0..committed {
            let expected = format!("payload-{shard}").into_bytes();
            prop_assert_eq!(journal.get(shard).unwrap(), &expected[..]);
        }
        for shard in committed..4 {
            prop_assert!(journal.get(shard).is_none());
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
