//! SBML-subset import/export.
//!
//! Mainstream Systems Biology tools exchange models as SBML; the GPU
//! simulator family natively uses the BioSimWare directory layout. This
//! module provides the conversion tool shipped alongside the original
//! simulator: a reader for the *mass-action subset* of SBML (species with
//! initial concentrations, reactions with reactant/product
//! `speciesReference`s, and a kinetic constant taken from the first
//! `localParameter`/`parameter` of each reaction's `kineticLaw`) and a
//! matching writer.
//!
//! The XML handling is a small built-in scanner — elements, attributes,
//! comments, CDATA — sufficient for machine-produced SBML files; it is not
//! a general-purpose XML parser.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), paraspace_rbm::RbmError> {
//! let doc = r#"<?xml version="1.0"?>
//! <sbml><model id="decay">
//!   <listOfSpecies>
//!     <species id="A" initialConcentration="2.0"/>
//!   </listOfSpecies>
//!   <listOfReactions>
//!     <reaction id="r1">
//!       <listOfReactants><speciesReference species="A"/></listOfReactants>
//!       <kineticLaw><listOfLocalParameters>
//!         <localParameter id="k1" value="0.25"/>
//!       </listOfLocalParameters></kineticLaw>
//!     </reaction>
//!   </listOfReactions>
//! </model></sbml>"#;
//! let model = paraspace_rbm::sbml::from_str(doc)?;
//! assert_eq!(model.n_species(), 1);
//! assert_eq!(model.rate_constants(), vec![0.25]);
//! # Ok(())
//! # }
//! ```

use crate::{RbmError, Reaction, ReactionBasedModel, SpeciesId};
use std::collections::HashMap;

/// A scanned XML element event.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Open { name: String, attrs: HashMap<String, String>, self_closing: bool },
    Close { name: String },
}

fn parse_err(context: &str, message: impl Into<String>) -> RbmError {
    RbmError::Parse { context: context.to_string(), message: message.into() }
}

/// Scans `doc` into a flat element-event stream, skipping text content,
/// comments, processing instructions, DOCTYPE, and CDATA.
fn scan(doc: &str) -> Result<Vec<Event>, RbmError> {
    let bytes = doc.as_bytes();
    let mut events = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        if doc[i..].starts_with("<!--") {
            match doc[i..].find("-->") {
                Some(end) => i += end + 3,
                None => return Err(parse_err("sbml", "unterminated comment")),
            }
            continue;
        }
        if doc[i..].starts_with("<![CDATA[") {
            match doc[i..].find("]]>") {
                Some(end) => i += end + 3,
                None => return Err(parse_err("sbml", "unterminated CDATA section")),
            }
            continue;
        }
        if doc[i..].starts_with("<?") || doc[i..].starts_with("<!") {
            match doc[i..].find('>') {
                Some(end) => i += end + 1,
                None => return Err(parse_err("sbml", "unterminated declaration")),
            }
            continue;
        }
        let end = doc[i..].find('>').ok_or_else(|| parse_err("sbml", "unterminated tag"))?;
        let inner = &doc[i + 1..i + end];
        i += end + 1;
        if let Some(name) = inner.strip_prefix('/') {
            events.push(Event::Close { name: local_name(name.trim()).to_string() });
            continue;
        }
        let self_closing = inner.ends_with('/');
        let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
        let (name, rest) = match inner.find(char::is_whitespace) {
            Some(p) => (&inner[..p], &inner[p..]),
            None => (inner, ""),
        };
        let attrs = parse_attrs(rest)?;
        events.push(Event::Open { name: local_name(name).to_string(), attrs, self_closing });
    }
    Ok(events)
}

/// Strips a namespace prefix (`sbml:species` → `species`).
fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

fn parse_attrs(mut s: &str) -> Result<HashMap<String, String>, RbmError> {
    let mut attrs = HashMap::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(attrs);
        }
        let eq = s
            .find('=')
            .ok_or_else(|| parse_err("sbml", format!("attribute without value near {s:?}")))?;
        let key = local_name(s[..eq].trim()).to_string();
        s = s[eq + 1..].trim_start();
        let quote = s
            .chars()
            .next()
            .filter(|&c| c == '"' || c == '\'')
            .ok_or_else(|| parse_err("sbml", "attribute value must be quoted"))?;
        let rest = &s[1..];
        let close =
            rest.find(quote).ok_or_else(|| parse_err("sbml", "unterminated attribute value"))?;
        attrs.insert(key, rest[..close].to_string());
        s = &rest[close + 1..];
    }
}

#[derive(Debug, Default)]
struct PendingReaction {
    reactants: Vec<(String, u32)>,
    products: Vec<(String, u32)>,
    rate: Option<f64>,
    id: String,
}

/// Parses the mass-action SBML subset from a string.
///
/// # Errors
///
/// [`RbmError::Parse`] for malformed XML, unknown species references,
/// missing kinetic constants, or non-numeric values.
pub fn from_str(doc: &str) -> Result<ReactionBasedModel, RbmError> {
    let events = scan(doc)?;
    let mut model = ReactionBasedModel::new();
    let mut species_ids: HashMap<String, SpeciesId> = HashMap::new();

    #[derive(PartialEq, Clone, Copy)]
    enum Side {
        None,
        Reactants,
        Products,
    }
    let mut side = Side::None;
    let mut pending: Option<PendingReaction> = None;
    let mut in_kinetic_law = false;

    let finalize = |model: &mut ReactionBasedModel,
                    species_ids: &HashMap<String, SpeciesId>,
                    p: PendingReaction|
     -> Result<(), RbmError> {
        let rate = p.rate.ok_or_else(|| {
            parse_err(&p.id, "reaction has no kinetic constant (localParameter/parameter)")
        })?;
        let map_side = |refs: &[(String, u32)]| -> Result<Vec<(SpeciesId, u32)>, RbmError> {
            refs.iter()
                .map(|(name, c)| {
                    species_ids
                        .get(name)
                        .map(|&id| (id, *c))
                        .ok_or_else(|| parse_err(&p.id, format!("unknown species {name:?}")))
                })
                .collect()
        };
        let reactants = map_side(&p.reactants)?;
        let products = map_side(&p.products)?;
        model.add_reaction(Reaction::mass_action(&reactants, &products, rate))?;
        Ok(())
    };

    for ev in events {
        match ev {
            Event::Open { name, attrs, self_closing } => match name.as_str() {
                "species" => {
                    let id = attrs
                        .get("id")
                        .or_else(|| attrs.get("name"))
                        .ok_or_else(|| parse_err("species", "missing id"))?
                        .clone();
                    let conc = attrs
                        .get("initialConcentration")
                        .or_else(|| attrs.get("initialAmount"))
                        .map(|v| {
                            v.parse::<f64>()
                                .map_err(|_| parse_err(&id, format!("bad concentration {v:?}")))
                        })
                        .transpose()?
                        .unwrap_or(0.0);
                    let sid = model.add_species_checked(id.clone(), conc)?;
                    species_ids.insert(id, sid);
                }
                "reaction" => {
                    let id = attrs.get("id").cloned().unwrap_or_else(|| "reaction".to_string());
                    pending = Some(PendingReaction { id, ..PendingReaction::default() });
                    if self_closing {
                        return Err(parse_err("reaction", "reaction element must have children"));
                    }
                }
                "listOfReactants" => side = Side::Reactants,
                "listOfProducts" => side = Side::Products,
                "kineticLaw" => in_kinetic_law = !self_closing,
                "speciesReference" => {
                    let sp = attrs
                        .get("species")
                        .ok_or_else(|| parse_err("speciesReference", "missing species attribute"))?
                        .clone();
                    let stoich = attrs
                        .get("stoichiometry")
                        .map(|v| {
                            v.parse::<f64>()
                                .map_err(|_| parse_err(&sp, format!("bad stoichiometry {v:?}")))
                        })
                        .transpose()?
                        .unwrap_or(1.0) as u32;
                    if let Some(p) = pending.as_mut() {
                        match side {
                            Side::Reactants => p.reactants.push((sp, stoich)),
                            Side::Products => p.products.push((sp, stoich)),
                            Side::None => {
                                return Err(parse_err(
                                    &sp,
                                    "speciesReference outside reactant/product list",
                                ))
                            }
                        }
                    }
                }
                "localParameter" | "parameter" if in_kinetic_law => {
                    if let Some(p) = pending.as_mut() {
                        if p.rate.is_none() {
                            let v = attrs.get("value").ok_or_else(|| {
                                parse_err(&p.id, "kinetic parameter missing value")
                            })?;
                            p.rate = Some(v.parse::<f64>().map_err(|_| {
                                parse_err(&p.id, format!("bad kinetic constant {v:?}"))
                            })?);
                        }
                    }
                }
                _ => {}
            },
            Event::Close { name } => match name.as_str() {
                "reaction" => {
                    if let Some(p) = pending.take() {
                        finalize(&mut model, &species_ids, p)?;
                    }
                }
                "listOfReactants" | "listOfProducts" => side = Side::None,
                "kineticLaw" => in_kinetic_law = false,
                _ => {}
            },
        }
    }
    Ok(model)
}

/// Serializes a model as mass-action SBML (subset), suitable for reading
/// back with [`from_str`] and for exchange with SBML-based tools.
pub fn to_string(model: &ReactionBasedModel) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<sbml xmlns=\"http://www.sbml.org/sbml/level3/version2/core\" level=\"3\" version=\"2\">\n");
    out.push_str("  <model id=\"paraspace_model\">\n    <listOfSpecies>\n");
    for s in model.species() {
        out.push_str(&format!(
            "      <species id=\"{}\" initialConcentration=\"{:e}\"/>\n",
            s.name, s.initial_concentration
        ));
    }
    out.push_str("    </listOfSpecies>\n    <listOfReactions>\n");
    for (i, r) in model.reactions().iter().enumerate() {
        out.push_str(&format!("      <reaction id=\"R{i}\">\n"));
        let write_side = |out: &mut String, tag: &str, side: &[(usize, u32)]| {
            if side.is_empty() {
                return;
            }
            out.push_str(&format!("        <{tag}>\n"));
            for &(s, c) in side {
                out.push_str(&format!(
                    "          <speciesReference species=\"{}\" stoichiometry=\"{c}\"/>\n",
                    model.species()[s].name
                ));
            }
            out.push_str(&format!("        </{tag}>\n"));
        };
        write_side(&mut out, "listOfReactants", r.reactants());
        write_side(&mut out, "listOfProducts", r.products());
        out.push_str(&format!(
            "        <kineticLaw>\n          <listOfLocalParameters>\n            <localParameter id=\"k{i}\" value=\"{:e}\"/>\n          </listOfLocalParameters>\n        </kineticLaw>\n      </reaction>\n",
            r.rate_constant()
        ));
    }
    out.push_str("    </listOfReactions>\n  </model>\n</sbml>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbgen::SbGen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ENZYME: &str = r#"<?xml version="1.0"?>
<sbml level="3"><model id="enzyme">
  <listOfSpecies>
    <species id="E" initialConcentration="0.1"/>
    <species id="S" initialConcentration="1.0"/>
    <species id="ES" initialConcentration="0"/>
    <species id="P" initialAmount="0"/>
  </listOfSpecies>
  <listOfReactions>
    <reaction id="binding">
      <listOfReactants>
        <speciesReference species="E"/>
        <speciesReference species="S"/>
      </listOfReactants>
      <listOfProducts><speciesReference species="ES"/></listOfProducts>
      <kineticLaw><listOfLocalParameters>
        <localParameter id="kon" value="10.0"/>
      </listOfLocalParameters></kineticLaw>
    </reaction>
    <reaction id="catalysis">
      <listOfReactants><speciesReference species="ES"/></listOfReactants>
      <listOfProducts>
        <speciesReference species="E"/>
        <speciesReference species="P"/>
      </listOfProducts>
      <kineticLaw><listOfLocalParameters>
        <localParameter id="kcat" value="2.0"/>
      </listOfLocalParameters></kineticLaw>
    </reaction>
  </listOfReactions>
</model></sbml>"#;

    #[test]
    fn parses_enzyme_model() {
        let m = from_str(ENZYME).unwrap();
        assert_eq!(m.n_species(), 4);
        assert_eq!(m.n_reactions(), 2);
        assert_eq!(m.rate_constants(), vec![10.0, 2.0]);
        let e = m.species_by_name("E").unwrap();
        assert_eq!(m.reactions()[0].reactants()[0].0, e.index());
        assert_eq!(m.initial_state(), vec![0.1, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn stoichiometry_attribute_respected() {
        let doc = r#"<sbml><model>
          <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
          <listOfReactions><reaction id="dimerize">
            <listOfReactants><speciesReference species="A" stoichiometry="2"/></listOfReactants>
            <kineticLaw><localParameter id="k" value="3"/></kineticLaw>
          </reaction></listOfReactions>
        </model></sbml>"#;
        let m = from_str(doc).unwrap();
        assert_eq!(m.reactions()[0].reactants(), &[(0, 2)]);
    }

    #[test]
    fn missing_kinetic_constant_is_error() {
        let doc = r#"<sbml><model>
          <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
          <listOfReactions><reaction id="r">
            <listOfReactants><speciesReference species="A"/></listOfReactants>
            <kineticLaw></kineticLaw>
          </reaction></listOfReactions>
        </model></sbml>"#;
        let err = from_str(doc).unwrap_err();
        assert!(err.to_string().contains("kinetic constant"));
    }

    #[test]
    fn unknown_species_reference_is_error() {
        let doc = r#"<sbml><model>
          <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
          <listOfReactions><reaction id="r">
            <listOfReactants><speciesReference species="Zed"/></listOfReactants>
            <kineticLaw><localParameter id="k" value="1"/></kineticLaw>
          </reaction></listOfReactions>
        </model></sbml>"#;
        let err = from_str(doc).unwrap_err();
        assert!(err.to_string().contains("Zed"));
    }

    #[test]
    fn comments_and_cdata_are_skipped() {
        let doc = r#"<sbml><!-- a comment with <tags> inside -->
          <model><![CDATA[ <junk> ]]>
          <listOfSpecies><species id="A" initialConcentration="1"/></listOfSpecies>
          <listOfReactions><reaction id="r">
            <listOfReactants><speciesReference species="A"/></listOfReactants>
            <kineticLaw><localParameter id="k" value="1"/></kineticLaw>
          </reaction></listOfReactions>
          </model></sbml>"#;
        assert!(from_str(doc).is_ok());
    }

    #[test]
    fn namespaced_tags_are_recognized() {
        let doc = r#"<sbml:sbml><sbml:model>
          <sbml:listOfSpecies><sbml:species id="A" initialConcentration="1"/></sbml:listOfSpecies>
          <sbml:listOfReactions><sbml:reaction id="r">
            <sbml:listOfReactants><sbml:speciesReference species="A"/></sbml:listOfReactants>
            <sbml:kineticLaw><sbml:localParameter id="k" value="4"/></sbml:kineticLaw>
          </sbml:reaction></sbml:listOfReactions>
          </sbml:model></sbml:sbml>"#;
        let m = from_str(doc).unwrap();
        assert_eq!(m.rate_constants(), vec![4.0]);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut rng = StdRng::seed_from_u64(33);
        let model = SbGen::new(9, 14).generate(&mut rng);
        let doc = to_string(&model);
        let back = from_str(&doc).unwrap();
        assert_eq!(back.n_species(), model.n_species());
        assert_eq!(back.n_reactions(), model.n_reactions());
        for (a, b) in model.reactions().iter().zip(back.reactions()) {
            assert_eq!(a.reactants(), b.reactants());
            assert_eq!(a.products(), b.products());
            assert!((a.rate_constant() - b.rate_constant()).abs() < 1e-18);
        }
    }

    #[test]
    fn unterminated_tag_is_parse_error() {
        assert!(from_str("<sbml><model").is_err());
        assert!(from_str("<!-- never closed").is_err());
    }

    #[test]
    fn single_quoted_attributes_accepted() {
        let doc = "<sbml><model><listOfSpecies><species id='A' initialConcentration='2'/></listOfSpecies></model></sbml>";
        let m = from_str(doc).unwrap();
        assert_eq!(m.initial_state(), vec![2.0]);
    }
}
