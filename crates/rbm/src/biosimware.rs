//! BioSimWare-style on-disk model format.
//!
//! The GPU simulator family (cupSODA, LASSIE, and the engine reproduced
//! here) exchanges models as a *directory* of plain-text files rather than a
//! single document:
//!
//! | file | contents |
//! |---|---|
//! | `alphabet` | the `N` species names, whitespace-separated, one line |
//! | `left_side` | `M × N` reactant stoichiometric matrix `A`, one reaction per line |
//! | `right_side` | `M × N` product stoichiometric matrix `B`, one reaction per line |
//! | `c_vector` | the `M` kinetic constants, one per line |
//! | `M_0` | the `N` initial concentrations, whitespace-separated, one line |
//! | `t_vector` | *(optional)* sampling time points, one per line |
//! | `c_matrix` | *(optional)* one rate-constant row per parameterization |
//! | `MX_0` | *(optional)* one initial-state row per parameterization |
//!
//! [`write_dir`] and [`read_dir`] round-trip a [`ReactionBasedModel`];
//! [`read_parameterizations`] and [`read_time_points`] load the optional
//! batch files.
//!
//! # Example
//!
//! ```
//! use paraspace_rbm::{biosimware, Reaction, ReactionBasedModel};
//!
//! # fn main() -> Result<(), paraspace_rbm::RbmError> {
//! let mut m = ReactionBasedModel::new();
//! let a = m.add_species("A", 1.0);
//! let b = m.add_species("B", 0.0);
//! m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 0.5))?;
//!
//! let dir = std::env::temp_dir().join("paraspace_doctest_bsw");
//! biosimware::write_dir(&m, &dir)?;
//! let back = biosimware::read_dir(&dir)?;
//! assert_eq!(back.n_species(), 2);
//! assert_eq!(back.rate_constants(), vec![0.5]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use crate::{Parameterization, RbmError, Reaction, ReactionBasedModel, SpeciesId};
use std::fs;
use std::path::Path;

/// Writes `model` to `dir` in the BioSimWare directory layout, creating the
/// directory if needed.
///
/// # Errors
///
/// Propagates filesystem errors as [`RbmError::Io`].
pub fn write_dir(model: &ReactionBasedModel, dir: &Path) -> Result<(), RbmError> {
    fs::create_dir_all(dir)?;
    let names: Vec<&str> = model.species().iter().map(|s| s.name.as_str()).collect();
    fs::write(dir.join("alphabet"), names.join("\t") + "\n")?;

    let n = model.n_species();
    let mut left = String::new();
    let mut right = String::new();
    let mut cvec = String::new();
    for r in model.reactions() {
        left.push_str(&side_row(r.reactants(), n));
        right.push_str(&side_row(r.products(), n));
        cvec.push_str(&format!("{:e}\n", r.rate_constant()));
    }
    fs::write(dir.join("left_side"), left)?;
    fs::write(dir.join("right_side"), right)?;
    fs::write(dir.join("c_vector"), cvec)?;

    let m0: Vec<String> = model.initial_state().iter().map(|x| format!("{x:e}")).collect();
    fs::write(dir.join("M_0"), m0.join("\t") + "\n")?;
    Ok(())
}

/// Writes sampling time points as a `t_vector` file in `dir`.
///
/// # Errors
///
/// Propagates filesystem errors as [`RbmError::Io`].
pub fn write_time_points(time_points: &[f64], dir: &Path) -> Result<(), RbmError> {
    fs::create_dir_all(dir)?;
    let body: String = time_points.iter().map(|t| format!("{t:e}\n")).collect();
    fs::write(dir.join("t_vector"), body)?;
    Ok(())
}

/// Writes a batch of parameterizations as `c_matrix` / `MX_0` files.
///
/// Members lacking an override inherit the model's baked values, so the
/// written rows are always fully resolved.
///
/// # Errors
///
/// [`RbmError::ParameterizationMismatch`] for badly sized overrides, plus
/// filesystem errors.
pub fn write_parameterizations(
    model: &ReactionBasedModel,
    batch: &[Parameterization],
    dir: &Path,
) -> Result<(), RbmError> {
    fs::create_dir_all(dir)?;
    let mut cmat = String::new();
    let mut mx0 = String::new();
    for p in batch {
        let (x0, k) = p.resolve(model)?;
        cmat.push_str(&(k.iter().map(|v| format!("{v:e}")).collect::<Vec<_>>().join("\t") + "\n"));
        mx0.push_str(&(x0.iter().map(|v| format!("{v:e}")).collect::<Vec<_>>().join("\t") + "\n"));
    }
    fs::write(dir.join("c_matrix"), cmat)?;
    fs::write(dir.join("MX_0"), mx0)?;
    Ok(())
}

/// Reads a model from a BioSimWare directory.
///
/// # Errors
///
/// [`RbmError::Io`] for missing files and [`RbmError::Parse`] for malformed
/// contents (ragged matrices, non-numeric entries, row-count mismatches).
pub fn read_dir(dir: &Path) -> Result<ReactionBasedModel, RbmError> {
    let alphabet = fs::read_to_string(dir.join("alphabet"))?;
    let names: Vec<&str> = alphabet.split_whitespace().collect();
    let n = names.len();
    if n == 0 {
        return Err(parse_err("alphabet", "no species names found"));
    }

    let m0 = parse_row(&fs::read_to_string(dir.join("M_0"))?, "M_0")?;
    if m0.len() != n {
        return Err(parse_err(
            "M_0",
            &format!("expected {n} initial concentrations, found {}", m0.len()),
        ));
    }

    let left = parse_matrix(&fs::read_to_string(dir.join("left_side"))?, n, "left_side")?;
    let right = parse_matrix(&fs::read_to_string(dir.join("right_side"))?, n, "right_side")?;
    if left.len() != right.len() {
        return Err(parse_err(
            "right_side",
            &format!("{} rows but left_side has {}", right.len(), left.len()),
        ));
    }
    let cvec = parse_column(&fs::read_to_string(dir.join("c_vector"))?, "c_vector")?;
    if cvec.len() != left.len() {
        return Err(parse_err(
            "c_vector",
            &format!("{} constants but {} reactions", cvec.len(), left.len()),
        ));
    }

    let mut model = ReactionBasedModel::new();
    for (name, &x0) in names.iter().zip(m0.iter()) {
        model.add_species_checked(*name, x0)?;
    }
    for ((lrow, rrow), &k) in left.iter().zip(right.iter()).zip(cvec.iter()) {
        let reactants = row_to_side(lrow);
        let products = row_to_side(rrow);
        model.add_reaction(Reaction::mass_action(&reactants, &products, k))?;
    }
    Ok(model)
}

/// Reads the optional `t_vector` file.
///
/// # Errors
///
/// [`RbmError::Io`] if absent, [`RbmError::Parse`] if malformed.
pub fn read_time_points(dir: &Path) -> Result<Vec<f64>, RbmError> {
    parse_column(&fs::read_to_string(dir.join("t_vector"))?, "t_vector")
}

/// Reads the optional `c_matrix` / `MX_0` pair into a parameterization
/// batch. Either file may be absent; present files must agree on row count.
///
/// # Errors
///
/// [`RbmError::Parse`] for size mismatches against the model or between the
/// two files.
pub fn read_parameterizations(
    model: &ReactionBasedModel,
    dir: &Path,
) -> Result<Vec<Parameterization>, RbmError> {
    let cmat = match fs::read_to_string(dir.join("c_matrix")) {
        Ok(s) => Some(parse_matrix(&s, model.n_reactions(), "c_matrix")?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    let mx0 = match fs::read_to_string(dir.join("MX_0")) {
        Ok(s) => Some(parse_matrix(&s, model.n_species(), "MX_0")?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    let rows = match (&cmat, &mx0) {
        (Some(c), Some(x)) => {
            if c.len() != x.len() {
                return Err(parse_err(
                    "MX_0",
                    &format!("{} rows but c_matrix has {}", x.len(), c.len()),
                ));
            }
            c.len()
        }
        (Some(c), None) => c.len(),
        (None, Some(x)) => x.len(),
        (None, None) => 0,
    };
    Ok((0..rows)
        .map(|i| Parameterization {
            rate_constants: cmat.as_ref().map(|c| c[i].clone()),
            initial_state: mx0.as_ref().map(|x| x[i].clone()),
        })
        .collect())
}

fn side_row(side: &[(usize, u32)], n: usize) -> String {
    let mut row = vec![0u32; n];
    for &(s, c) in side {
        row[s] = c;
    }
    row.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("\t") + "\n"
}

fn row_to_side(row: &[f64]) -> Vec<(SpeciesId, u32)> {
    row.iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0.0)
        .map(|(s, &c)| (SpeciesId::from_index(s), c as u32))
        .collect()
}

fn parse_err(context: &str, message: &str) -> RbmError {
    RbmError::Parse { context: context.to_string(), message: message.to_string() }
}

fn parse_row(text: &str, context: &str) -> Result<Vec<f64>, RbmError> {
    text.split_whitespace()
        .map(|tok| {
            tok.parse::<f64>().map_err(|_| parse_err(context, &format!("bad number {tok:?}")))
        })
        .collect()
}

fn parse_column(text: &str, context: &str) -> Result<Vec<f64>, RbmError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| l.parse::<f64>().map_err(|_| parse_err(context, &format!("bad number {l:?}"))))
        .collect()
}

fn parse_matrix(text: &str, cols: usize, context: &str) -> Result<Vec<Vec<f64>>, RbmError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = parse_row(line, context)?;
        if row.len() != cols {
            return Err(parse_err(
                context,
                &format!("row {i} has {} entries, expected {cols}", row.len()),
            ));
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbgen::SbGen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("paraspace_bsw_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_preserves_model() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = SbGen::new(12, 17).generate(&mut rng);
        let dir = tmpdir("roundtrip");
        write_dir(&model, &dir).unwrap();
        let back = read_dir(&dir).unwrap();
        assert_eq!(back.n_species(), model.n_species());
        assert_eq!(back.n_reactions(), model.n_reactions());
        for (a, b) in model.species().iter().zip(back.species()) {
            assert_eq!(a.name, b.name);
            assert!((a.initial_concentration - b.initial_concentration).abs() < 1e-15);
        }
        for (a, b) in model.reactions().iter().zip(back.reactions()) {
            assert_eq!(a.reactants(), b.reactants());
            assert_eq!(a.products(), b.products());
            assert!((a.rate_constant() - b.rate_constant()).abs() < 1e-20);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_points_roundtrip() {
        let dir = tmpdir("tvec");
        write_time_points(&[0.0, 0.5, 1.0, 10.0], &dir).unwrap();
        assert_eq!(read_time_points(&dir).unwrap(), vec![0.0, 0.5, 1.0, 10.0]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parameterization_batch_roundtrip() {
        let mut rng = StdRng::seed_from_u64(22);
        let model = SbGen::new(5, 4).generate(&mut rng);
        let batch = crate::perturbed_batch(&model, 6, &mut rng);
        let dir = tmpdir("batch");
        write_parameterizations(&model, &batch, &dir).unwrap();
        let back = read_parameterizations(&model, &dir).unwrap();
        assert_eq!(back.len(), 6);
        for (orig, got) in batch.iter().zip(&back) {
            let (x0_a, k_a) = orig.resolve(&model).unwrap();
            let (x0_b, k_b) = got.resolve(&model).unwrap();
            for (p, q) in k_a.iter().zip(&k_b) {
                assert!((p - q).abs() < 1e-12 * p.abs().max(1e-300));
            }
            assert_eq!(x0_a.len(), x0_b.len());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = read_dir(Path::new("/nonexistent/paraspace")).unwrap_err();
        assert!(matches!(err, RbmError::Io { .. }));
    }

    #[test]
    fn ragged_matrix_is_parse_error() {
        let dir = tmpdir("ragged");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("alphabet"), "A\tB\n").unwrap();
        fs::write(dir.join("M_0"), "1.0\t0.0\n").unwrap();
        fs::write(dir.join("left_side"), "1\t0\n1\n").unwrap();
        fs::write(dir.join("right_side"), "0\t1\n0\t1\n").unwrap();
        fs::write(dir.join("c_vector"), "1.0\n2.0\n").unwrap();
        let err = read_dir(&dir).unwrap_err();
        assert!(matches!(err, RbmError::Parse { .. }), "got {err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_constant_count_is_parse_error() {
        let dir = tmpdir("cvec");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("alphabet"), "A\n").unwrap();
        fs::write(dir.join("M_0"), "1.0\n").unwrap();
        fs::write(dir.join("left_side"), "1\n").unwrap();
        fs::write(dir.join("right_side"), "0\n").unwrap();
        fs::write(dir.join("c_vector"), "1.0\n2.0\n").unwrap();
        let err = read_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("c_vector"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_numeric_entry_is_parse_error() {
        let dir = tmpdir("nan");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("alphabet"), "A\n").unwrap();
        fs::write(dir.join("M_0"), "banana\n").unwrap();
        let err = read_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("banana"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_parameterization_dir_yields_empty_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SbGen::new(3, 3).generate(&mut rng);
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(read_parameterizations(&model, &dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_batch_rows_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SbGen::new(2, 2).generate(&mut rng);
        let dir = tmpdir("mismatch");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("c_matrix"), "1.0\t2.0\n3.0\t4.0\n").unwrap();
        fs::write(dir.join("MX_0"), "1.0\t1.0\n").unwrap();
        assert!(read_parameterizations(&model, &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
